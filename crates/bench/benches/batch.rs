//! Batch-inference throughput: `batch::detect_all` over a synthetic
//! corpus of ≥ 100 files, single worker vs. the machine's available
//! parallelism. On a multi-core runner the N-thread configuration
//! should process ≥ 2× the files/second of the 1-thread one (workers
//! share nothing but the atomic work index); on a single core both
//! configurations collapse to the same serial path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strudel::batch::{detect_all, BatchConfig, BatchInput};
use strudel::{Strudel, StrudelCellConfig, StrudelLineConfig};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_ml::ForestConfig;

fn fitted_model() -> Strudel {
    let train = saus(&GeneratorConfig {
        n_files: 20,
        seed: 5,
        scale: 0.3,
    });
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig::fast(20, 0),
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig::fast(20, 1),
        ..StrudelCellConfig::default()
    };
    Strudel::fit(&train.files, &config)
}

/// 120 in-memory files rendered from a held-out synthetic corpus.
fn batch_inputs() -> Vec<BatchInput> {
    let corpus = saus(&GeneratorConfig {
        n_files: 120,
        seed: 77,
        scale: 0.25,
    });
    corpus
        .files
        .iter()
        .enumerate()
        .map(|(i, f)| BatchInput::text(format!("saus-{i:04}"), f.table.to_delimited(',')))
        .collect()
}

fn batch_throughput(c: &mut Criterion) {
    let model = fitted_model();
    let inputs = batch_inputs();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(inputs.len() as u64));
    for n_threads in [1, available] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_threads}threads")),
            &n_threads,
            |b, &n_threads| {
                b.iter(|| {
                    detect_all(
                        &model,
                        &inputs,
                        &BatchConfig {
                            n_threads,
                            ..BatchConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
