//! Packed-container costs: pack and unpack throughput, container size
//! against the plain byte stream it replaces, and the random-access
//! payoff — extracting one column against decoding the whole container.
//!
//! The workload is a deterministic stacked-table verbose file (titles,
//! headers, data, derived totals, source notes, repeated), sized so the
//! streaming classifier inside the writer seals several block groups —
//! random access has real blocks to skip.
//!
//! Timed three ways, min-over-iterations after a warm-up (see
//! `benches/parse.rs` for why the min, not the mean, is the estimator):
//!
//! * **pack** — `pack_bytes` end to end: streaming classification plus
//!   container assembly. Classification dominates; the MB/s here is the
//!   pipeline's, not the encoder's.
//! * **unpack** — `unpack_bytes`: full byte-identical reconstruction,
//!   every block checksummed. No model involved.
//! * **random access** — open + extract one column of one table,
//!   against open + full unpack of the same container. Their ratio is
//!   the `random_access_speedup` headline; the column path must read
//!   exactly one block.
//!
//! The container trades bytes for addressability: `pack_ratio`
//! (container bytes over original bytes) is recorded and gated as a
//! ceiling, not a win — the directory and per-block checksums cost a
//! few percent.
//!
//! Besides the Criterion display output, the bench writes a
//! machine-readable summary to `BENCH_pack.json` (override with
//! `BENCH_PACK_OUT`). `BENCH_SMOKE=1` shrinks the workload and the
//! iteration counts for CI smoke runs. `scripts/bench_pack.sh` gates
//! `random_access_speedup` against the committed baseline and
//! `pack_ratio` against a ceiling.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use strudel::{StreamConfig, Strudel, StrudelCellConfig, StrudelLineConfig};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_ml::ForestConfig;
use strudel_pack::{pack_bytes, unpack_bytes, PackReader};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Stacked verbose sections: title, blank, header, data rows with a
/// leading label column, a derived total, blank, source note. The shape
/// the detector is trained on, repeated until `target_bytes`.
fn stacked_verbose(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(41);
    let mut s = String::with_capacity(target_bytes + 1024);
    let mut section = 0u64;
    while s.len() < target_bytes {
        s.push_str(&format!("Table {}. Outcomes by area,,,\n", 100 + section));
        s.push_str(",,,\n");
        s.push_str(",Rate 1,Rate 2,Share\n");
        let n_rows = 12 + (section % 20) as usize;
        let (mut t1, mut t2) = (0u64, 0u64);
        for r in 0..n_rows {
            let a = rng.gen_range(0..90_000u64);
            let b = rng.gen_range(0..9_000u64);
            let pct = rng.gen_range(0..1000) as f64 / 10.0;
            t1 += a;
            t2 += b;
            s.push_str(&format!("Area {section}-{r},{a},{b},{pct:.1}\n"));
        }
        s.push_str(&format!("Total,{t1},{t2},100.0\n"));
        s.push_str(",,,\n");
        s.push_str("Source: synthetic statistical abstract generator,,,\n");
        section += 1;
    }
    s
}

/// Fit a small but real model; the fit is outside all timed regions.
fn fit_model() -> Strudel {
    let corpus = saus(&GeneratorConfig {
        n_files: 12,
        seed: 1,
        scale: 0.3,
    });
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig::fast(15, 1),
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig::fast(15, 2),
        ..StrudelCellConfig::default()
    };
    Strudel::fit(&corpus.files, &config)
}

/// Serial, with a window small enough that the writer seals several
/// block groups per run (the default 64Ki-row window would swallow the
/// whole workload into one group, hiding the multi-group read path).
fn serial_config() -> StreamConfig {
    StreamConfig {
        n_threads: 1,
        window_rows: 2048,
        window_bytes: 1 << 20,
        ..StreamConfig::default()
    }
}

/// Mean/min wall-clock seconds of `iters` runs of `f`, after one
/// untimed warm-up run.
fn time<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    f();
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        total += s;
        min = min.min(s);
    }
    (total / iters as f64, min)
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct Summary {
    bytes: usize,
    container_bytes: usize,
    n_groups: u64,
    n_tables: usize,
    n_blocks: usize,
    pack_mean_s: f64,
    pack_min_s: f64,
    unpack_mean_s: f64,
    unpack_min_s: f64,
    column_mean_s: f64,
    column_min_s: f64,
    full_mean_s: f64,
    full_min_s: f64,
    column_name: String,
    iters: usize,
}

impl Summary {
    /// Container bytes over original bytes: above 1.0 the directory and
    /// checksums cost more than columnar layout saves.
    fn pack_ratio(&self) -> f64 {
        self.container_bytes as f64 / self.bytes as f64
    }

    /// The headline: open-and-full-unpack time over open-and-extract-
    /// one-column time on the same container.
    fn random_access_speedup(&self) -> f64 {
        self.full_min_s / self.column_min_s
    }

    fn pack_mb_s(&self) -> f64 {
        self.bytes as f64 / self.pack_min_s / 1e6
    }

    fn unpack_mb_s(&self) -> f64 {
        self.bytes as f64 / self.unpack_min_s / 1e6
    }
}

fn measure(model: &Strudel, text: &str, iters: usize) -> Summary {
    let packed =
        pack_bytes(model, text.as_bytes(), serial_config()).expect("workload packs cleanly");
    let container = packed.bytes.clone();
    assert_eq!(
        unpack_bytes(&container).expect("workload unpacks"),
        text.as_bytes(),
        "round-trip must be byte-identical before being timed"
    );

    // A middle table's first column: far enough into the container that
    // O(1) directory addressing, not block order, is what's measured.
    let reader = PackReader::open(&container).expect("container opens");
    let n_tables = reader.tables().len();
    assert!(n_tables > 0, "workload must contain detected tables");
    let table = n_tables / 2;
    let column_name = reader.tables()[table].columns[0].clone();
    drop(reader);

    let (pack_mean, pack_min) = time(iters, || {
        black_box(pack_bytes(model, text.as_bytes(), serial_config()).expect("packs"));
    });
    let (unpack_mean, unpack_min) = time(iters, || {
        black_box(unpack_bytes(&container).expect("unpacks"));
    });
    let (column_mean, column_min) = time(iters, || {
        let mut r = PackReader::open(&container).expect("opens");
        black_box(r.extract_column(table, 0).expect("column extracts"));
        assert_eq!(r.blocks_read(), 1, "column extraction must read one block");
    });
    let (full_mean, full_min) = time(iters, || {
        let mut r = PackReader::open(&container).expect("opens");
        black_box(r.unpack().expect("unpacks"));
    });

    Summary {
        bytes: text.len(),
        container_bytes: container.len(),
        n_groups: packed.n_groups,
        n_tables: packed.n_tables,
        n_blocks: packed.n_blocks,
        pack_mean_s: pack_mean,
        pack_min_s: pack_min,
        unpack_mean_s: unpack_mean,
        unpack_min_s: unpack_min,
        column_mean_s: column_mean,
        column_min_s: column_min,
        full_mean_s: full_mean,
        full_min_s: full_min,
        column_name,
        iters,
    }
}

fn write_json(path: &str, s: &Summary) {
    let json = format!(
        "{{\n  \"bench\": \"pack\",\n  \"smoke\": {},\n  \
         \"host_cpus\": {},\n  \
         \"input_bytes\": {},\n  \"container_bytes\": {},\n  \
         \"n_groups\": {},\n  \"n_tables\": {},\n  \"n_blocks\": {},\n  \
         \"pack\": {{\"mean_s\": {:.6}, \"min_s\": {:.6}, \"mb_s\": {:.2}}},\n  \
         \"unpack\": {{\"mean_s\": {:.6}, \"min_s\": {:.6}, \"mb_s\": {:.2}}},\n  \
         \"random_access\": {{\"column\": \"{}\", \"column_mean_s\": {:.6}, \
         \"column_min_s\": {:.6}, \"full_mean_s\": {:.6}, \"full_min_s\": {:.6}}},\n  \
         \"iters\": {},\n  \
         \"pack_ratio\": {:.4},\n  \
         \"random_access_speedup\": {:.3}\n}}\n",
        smoke(),
        host_cpus(),
        s.bytes,
        s.container_bytes,
        s.n_groups,
        s.n_tables,
        s.n_blocks,
        s.pack_mean_s,
        s.pack_min_s,
        s.pack_mb_s(),
        s.unpack_mean_s,
        s.unpack_min_s,
        s.unpack_mb_s(),
        s.column_name,
        s.column_mean_s,
        s.column_min_s,
        s.full_mean_s,
        s.full_min_s,
        s.iters,
        s.pack_ratio(),
        s.random_access_speedup()
    );
    std::fs::write(path, json).expect("write bench summary");
    println!("wrote {path}");
}

fn summary(model: &Strudel, text: &str) {
    let iters = if smoke() { 3 } else { 7 };
    let s = measure(model, text, iters);
    println!(
        "pack: {:.2} MB/s ({:.4}s min), unpack: {:.2} MB/s ({:.4}s min), ratio {:.4}",
        s.pack_mb_s(),
        s.pack_min_s,
        s.unpack_mb_s(),
        s.unpack_min_s,
        s.pack_ratio()
    );
    println!(
        "random access ({} tables, {} blocks): column {:.6}s min vs full {:.6}s min, {:.2}x",
        s.n_tables,
        s.n_blocks,
        s.column_min_s,
        s.full_min_s,
        s.random_access_speedup()
    );
    let out = std::env::var("BENCH_PACK_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pack.json").into());
    write_json(&out, &s);
}

fn pack_costs(c: &mut Criterion) {
    let target = if smoke() { 96 << 10 } else { 1 << 20 };
    let text = stacked_verbose(target);
    let model = fit_model();
    let container = pack_bytes(&model, text.as_bytes(), serial_config())
        .expect("workload packs cleanly")
        .bytes;
    let table = PackReader::open(&container).expect("opens").tables().len() / 2;

    let mut group = c.benchmark_group("pack");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("pack"), &text, |b, text| {
        b.iter(|| {
            black_box(pack_bytes(&model, text.as_bytes(), serial_config()).expect("packs"));
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("unpack"),
        &container,
        |b, container| {
            b.iter(|| {
                black_box(unpack_bytes(container).expect("unpacks"));
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("extract_column"),
        &container,
        |b, container| {
            b.iter(|| {
                let mut r = PackReader::open(container).expect("opens");
                black_box(r.extract_column(table, 0).expect("extracts"));
            })
        },
    );
    group.finish();

    summary(&model, &text);
}

criterion_group!(benches, pack_costs);
criterion_main!(benches);
