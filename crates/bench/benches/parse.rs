//! Parse-stage throughput: the zero-copy block scanner vs the retained
//! legacy char-walker.
//!
//! Three synthetic workloads, generated deterministically so runs are
//! comparable:
//!
//! * **verbose_mixed** — a SAUS-style verbose file: preamble notes, a
//!   header, wide data rows that are mostly unquoted with occasional
//!   quoted cells, and trailing footnotes. The representative workload
//!   and the acceptance number.
//! * **quoted_heavy** — every cell quoted, ~1 in 8 containing a
//!   doubled quote. Exercises the copy-on-write unescape path.
//! * **numeric_wide** — dense unquoted numeric cells, maximal
//!   delimiter density. The best case for SWAR classification.
//!
//! Each workload is timed three ways:
//!
//! * **scan** — `scan_records` plus resolution of every field value
//!   (borrowed `Cow` for clean fields, unescaped allocation only for
//!   dirty ones). This is how the rewritten pipeline consumes the parse
//!   stage — dialect scoring and table construction read `RecordsRef`
//!   directly — and it is the headline comparison.
//! * **legacy** — `parse_legacy`, the retained per-char walker that
//!   materialises `Vec<Vec<String>>`.
//! * **owned** — `parse`, the compatibility adapter (block scan +
//!   full owned materialisation). Apples-to-apples with legacy's output
//!   shape; reported so the adapter's allocation cost stays visible.
//!
//! Besides the Criterion display output, the bench writes a
//! machine-readable summary to `BENCH_parse.json` (override with
//! `BENCH_PARSE_OUT`). `BENCH_SMOKE=1` shrinks the workloads and the
//! iteration counts for CI smoke runs. `scripts/bench_parse.sh` gates
//! on the headline `speedup_scan_vs_legacy` against the committed
//! baseline.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use strudel_dialect::legacy::parse_legacy;
use strudel_dialect::{parse, scan_records, Dialect};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct Workload {
    name: &'static str,
    text: String,
}

/// SAUS-style verbose file: notes, header, wide mostly-unquoted rows
/// with occasional quoted cells (some containing delimiters or doubled
/// quotes), footnotes.
fn verbose_mixed(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut s = String::with_capacity(target_bytes + 256);
    s.push_str("Table 642. Employment by Sector and Region\n");
    s.push_str("[In thousands of persons. See headnote for coverage]\n\n");
    s.push_str("sector,region,year,employed,unemployed,share_pct,note\n");
    let mut row = 0u64;
    while s.len() < target_bytes {
        let sector = ["Mining", "Utilities", "Construction", "Retail trade"][rng.gen_range(0..4)];
        let year = 1990 + (row % 30);
        let a = rng.gen_range(0..900_000);
        let b = rng.gen_range(0..90_000);
        let pct = rng.gen_range(0..1000) as f64 / 10.0;
        let note = match rng.gen_range(0..10) {
            0 => "\"includes part-time, seasonal\"".to_string(),
            1 => "\"revised \"\"flash\"\" estimate\"".to_string(),
            _ => "na".to_string(),
        };
        s.push_str(&format!(
            "{sector},Region {},{year},{a},{b},{pct:.1},{note}\r\n",
            rng.gen_range(1..10)
        ));
        row += 1;
    }
    s.push_str("\nNote: Totals may not add due to rounding.\n");
    s.push_str("Source: synthetic statistical abstract generator.\n");
    s
}

/// Every cell quoted; roughly one in eight carries a doubled quote, so
/// the scanner's copy-on-write unescape path stays hot.
fn quoted_heavy(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(12);
    let mut s = String::with_capacity(target_bytes + 256);
    while s.len() < target_bytes {
        for col in 0..6 {
            if col > 0 {
                s.push(',');
            }
            s.push('"');
            if rng.gen_range(0..8) == 0 {
                s.push_str("said \"\"ok\"\" twice");
            } else {
                s.push_str(&format!("cell value {}", rng.gen_range(0..100_000)));
            }
            s.push('"');
        }
        s.push('\n');
    }
    s
}

/// Dense unquoted numeric cells: short fields, maximal delimiter
/// density per byte.
fn numeric_wide(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut s = String::with_capacity(target_bytes + 256);
    while s.len() < target_bytes {
        for col in 0..20 {
            if col > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}", rng.gen_range(0..10_000)));
        }
        s.push('\n');
    }
    s
}

fn workloads() -> Vec<Workload> {
    let target = if smoke() { 1 << 20 } else { 8 << 20 };
    vec![
        Workload {
            name: "verbose_mixed",
            text: verbose_mixed(target),
        },
        Workload {
            name: "quoted_heavy",
            text: quoted_heavy(target),
        },
        Workload {
            name: "numeric_wide",
            text: numeric_wide(target),
        },
    ]
}

/// Mean/min wall-clock seconds of `iters` runs of `f`.
fn time<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        total += s;
        min = min.min(s);
    }
    (total / iters as f64, min)
}

struct Measurement {
    workload: &'static str,
    bytes: usize,
    scan_mean_s: f64,
    scan_min_s: f64,
    owned_mean_s: f64,
    legacy_mean_s: f64,
    legacy_min_s: f64,
    iters: usize,
}

impl Measurement {
    /// The headline ratio: zero-copy scan (with every field resolved)
    /// vs the legacy materialising walker.
    fn speedup(&self) -> f64 {
        self.legacy_mean_s / self.scan_mean_s
    }

    /// Secondary ratio: owned-adapter `parse` vs legacy — same output
    /// shape, so the allocation cost is identical on both sides.
    fn owned_speedup(&self) -> f64 {
        self.legacy_mean_s / self.owned_mean_s
    }

    fn scan_mb_s(&self) -> f64 {
        self.bytes as f64 / self.scan_mean_s / 1e6
    }

    fn legacy_mb_s(&self) -> f64 {
        self.bytes as f64 / self.legacy_mean_s / 1e6
    }
}

/// Scan and touch every resolved field value — the consumption pattern
/// of dialect scoring. Clean fields resolve to borrowed slices; dirty
/// ones pay their unescape allocation.
fn scan_and_resolve(text: &str, dialect: &Dialect) -> usize {
    let records = scan_records(text, dialect);
    let mut total = 0usize;
    for rec in records.iter() {
        for cell in rec.iter() {
            total += cell.len();
        }
    }
    total
}

fn measure(w: &Workload, iters: usize, dialect: &Dialect) -> Measurement {
    let (scan_mean, scan_min) = time(iters, || {
        black_box(scan_and_resolve(&w.text, dialect));
    });
    let (owned_mean, _) = time(iters, || {
        black_box(parse(&w.text, dialect));
    });
    let (legacy_mean, legacy_min) = time(iters, || {
        black_box(parse_legacy(&w.text, dialect));
    });
    Measurement {
        workload: w.name,
        bytes: w.text.len(),
        scan_mean_s: scan_mean,
        scan_min_s: scan_min,
        owned_mean_s: owned_mean,
        legacy_mean_s: legacy_mean,
        legacy_min_s: legacy_min,
        iters,
    }
}

fn write_json(path: &str, results: &[Measurement], headline: f64) {
    let mut entries = String::new();
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{}\", \"bytes\": {}, \
             \"scan_mean_s\": {:.6}, \"scan_min_s\": {:.6}, \
             \"owned_mean_s\": {:.6}, \
             \"legacy_mean_s\": {:.6}, \"legacy_min_s\": {:.6}, \
             \"scan_mb_s\": {:.1}, \"legacy_mb_s\": {:.1}, \
             \"speedup\": {:.3}, \"owned_speedup\": {:.3}, \"iters\": {}}}",
            m.workload,
            m.bytes,
            m.scan_mean_s,
            m.scan_min_s,
            m.owned_mean_s,
            m.legacy_mean_s,
            m.legacy_min_s,
            m.scan_mb_s(),
            m.legacy_mb_s(),
            m.speedup(),
            m.owned_speedup(),
            m.iters
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parse\",\n  \"smoke\": {},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"speedup_scan_vs_legacy\": {:.3}\n}}\n",
        smoke(),
        entries,
        headline
    );
    std::fs::write(path, json).expect("write bench summary");
    println!("wrote {path}");
}

/// The JSON-producing comparison: every workload through the zero-copy
/// scan (with field resolution), the legacy walker, and the owned
/// adapter. The headline number is the verbose_mixed scan-vs-legacy
/// speedup.
fn summary() {
    let iters = if smoke() { 3 } else { 7 };
    let dialect = Dialect::rfc4180();
    let results: Vec<Measurement> = workloads()
        .iter()
        .map(|w| measure(w, iters, &dialect))
        .collect();
    for m in &results {
        println!(
            "{}: scan {:.1} MB/s ({:.4}s), legacy {:.1} MB/s ({:.4}s), {:.2}x \
             (owned adapter {:.4}s, {:.2}x)",
            m.workload,
            m.scan_mb_s(),
            m.scan_mean_s,
            m.legacy_mb_s(),
            m.legacy_mean_s,
            m.speedup(),
            m.owned_mean_s,
            m.owned_speedup(),
        );
    }
    let headline = results
        .iter()
        .find(|m| m.workload == "verbose_mixed")
        .expect("verbose_mixed workload present")
        .speedup();
    // Default to the workspace root (cargo bench runs with the package
    // directory as cwd), so the artifact lands next to BENCH_train.json.
    let out = std::env::var("BENCH_PARSE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parse.json").into());
    write_json(&out, &results, headline);
}

fn parse_throughput(c: &mut Criterion) {
    let dialect = Dialect::rfc4180();
    let loads = workloads();

    let mut group = c.benchmark_group("parse");
    group.sample_size(10);
    for w in &loads {
        for path in ["scan", "owned", "legacy"] {
            let label = format!("{}/{}", w.name, path);
            group.bench_with_input(BenchmarkId::from_parameter(label), &w.text, |b, text| {
                b.iter(|| match path {
                    "scan" => {
                        black_box(scan_and_resolve(text, &dialect));
                    }
                    "owned" => {
                        black_box(parse(text, &dialect));
                    }
                    _ => {
                        black_box(parse_legacy(text, &dialect));
                    }
                })
            });
        }
    }
    group.finish();

    summary();
}

criterion_group!(benches, parse_throughput);
criterion_main!(benches);
