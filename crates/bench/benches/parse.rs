//! Parse-stage throughput: the zero-copy block scanner vs the retained
//! legacy char-walker.
//!
//! Three synthetic workloads, generated deterministically so runs are
//! comparable:
//!
//! * **verbose_mixed** — a SAUS-style verbose file: preamble notes, a
//!   header, wide data rows that are mostly unquoted with occasional
//!   quoted cells, and trailing footnotes. The representative workload
//!   and the acceptance number.
//! * **quoted_heavy** — every cell quoted, ~1 in 8 containing a
//!   doubled quote. Exercises the copy-on-write unescape path.
//! * **numeric_wide** — dense unquoted numeric cells, maximal
//!   delimiter density. The best case for SWAR classification.
//!
//! Each workload is timed three ways:
//!
//! * **scan** — `scan_records` plus resolution of every field value
//!   (borrowed `Cow` for clean fields, unescaped allocation only for
//!   dirty ones). This is how the rewritten pipeline consumes the parse
//!   stage — dialect scoring and table construction read `RecordsRef`
//!   directly — and it is the headline comparison.
//! * **legacy** — `parse_legacy`, the retained per-char walker that
//!   materialises `Vec<Vec<String>>`.
//! * **owned** — `parse`, the compatibility adapter (block scan +
//!   full owned materialisation). Apples-to-apples with legacy's output
//!   shape; reported so the adapter's allocation cost stays visible.
//!
//! Two further sections measure the chunk-parallel scanner and the
//! end-to-end pipeline:
//!
//! * **parallel_scan** — `try_scan_records_threaded` at 1/2/4/8 worker
//!   threads per workload, with speedups reported against the 1-thread
//!   (serial) scan *on this host*. The summary records `host_cpus`; on
//!   a single-core host the multi-thread numbers honestly show the
//!   chunking overhead instead of a fabricated speedup.
//! * **classify** — the full detection pipeline on a fitted model, two
//!   ways: the retained owned path (detect dialect, parse to owned
//!   `Table`, classify) vs the borrowed path (`try_detect_structure`:
//!   chunked scan, classification over borrowed cells, owned
//!   materialisation deferred to the end). Their ratio is the
//!   `pipeline_speedup` headline.
//!
//! Besides the Criterion display output, the bench writes a
//! machine-readable summary to `BENCH_parse.json` (override with
//! `BENCH_PARSE_OUT`). Every headline ratio is computed from the
//! min-over-iterations of each side, after a warm-up run — see [`time`]
//! for why the mean is the wrong estimator on shared hosts. Means are
//! still recorded alongside. `BENCH_SMOKE=1` shrinks the workloads and
//! the iteration counts for CI smoke runs. `scripts/bench_parse.sh`
//! gates on the headlines `speedup_scan_vs_legacy` and
//! `pipeline_speedup` against the committed baseline, and (on hosts
//! with ≥ 4 CPUs) on the 4-thread parallel-scan speedup.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use strudel::{Limits, Strudel, StrudelCellConfig, StrudelLineConfig};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_dialect::legacy::parse_legacy;
use strudel_dialect::{
    detect_dialect, parse, scan_records, try_scan_records_threaded, Deadline, Dialect,
};
use strudel_ml::ForestConfig;
use strudel_table::Table;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

struct Workload {
    name: &'static str,
    text: String,
}

/// SAUS-style verbose file: notes, header, wide mostly-unquoted rows
/// with occasional quoted cells (some containing delimiters or doubled
/// quotes), footnotes.
fn verbose_mixed(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut s = String::with_capacity(target_bytes + 256);
    s.push_str("Table 642. Employment by Sector and Region\n");
    s.push_str("[In thousands of persons. See headnote for coverage]\n\n");
    s.push_str("sector,region,year,employed,unemployed,share_pct,note\n");
    let mut row = 0u64;
    while s.len() < target_bytes {
        let sector = ["Mining", "Utilities", "Construction", "Retail trade"][rng.gen_range(0..4)];
        let year = 1990 + (row % 30);
        let a = rng.gen_range(0..900_000);
        let b = rng.gen_range(0..90_000);
        let pct = rng.gen_range(0..1000) as f64 / 10.0;
        let note = match rng.gen_range(0..10) {
            0 => "\"includes part-time, seasonal\"".to_string(),
            1 => "\"revised \"\"flash\"\" estimate\"".to_string(),
            _ => "na".to_string(),
        };
        s.push_str(&format!(
            "{sector},Region {},{year},{a},{b},{pct:.1},{note}\r\n",
            rng.gen_range(1..10)
        ));
        row += 1;
    }
    s.push_str("\nNote: Totals may not add due to rounding.\n");
    s.push_str("Source: synthetic statistical abstract generator.\n");
    s
}

/// Every cell quoted; roughly one in eight carries a doubled quote, so
/// the scanner's copy-on-write unescape path stays hot.
fn quoted_heavy(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(12);
    let mut s = String::with_capacity(target_bytes + 256);
    while s.len() < target_bytes {
        for col in 0..6 {
            if col > 0 {
                s.push(',');
            }
            s.push('"');
            if rng.gen_range(0..8) == 0 {
                s.push_str("said \"\"ok\"\" twice");
            } else {
                s.push_str(&format!("cell value {}", rng.gen_range(0..100_000)));
            }
            s.push('"');
        }
        s.push('\n');
    }
    s
}

/// Dense unquoted numeric cells: short fields, maximal delimiter
/// density per byte.
fn numeric_wide(target_bytes: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(13);
    let mut s = String::with_capacity(target_bytes + 256);
    while s.len() < target_bytes {
        for col in 0..20 {
            if col > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}", rng.gen_range(0..10_000)));
        }
        s.push('\n');
    }
    s
}

fn workloads() -> Vec<Workload> {
    let target = if smoke() { 1 << 20 } else { 8 << 20 };
    vec![
        Workload {
            name: "verbose_mixed",
            text: verbose_mixed(target),
        },
        Workload {
            name: "quoted_heavy",
            text: quoted_heavy(target),
        },
        Workload {
            name: "numeric_wide",
            text: numeric_wide(target),
        },
    ]
}

/// Mean/min wall-clock seconds of `iters` runs of `f`, after one
/// untimed warm-up run (page cache, allocator pools). The headline
/// ratios below are computed from the *min*: on shared or single-core
/// hosts the mean absorbs scheduler noise that hits a 30 ms scan much
/// harder in relative terms than a 140 ms walk, producing phantom
/// regressions; the min of several runs is the stable estimator of
/// what the code path actually costs.
fn time<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    f();
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        total += s;
        min = min.min(s);
    }
    (total / iters as f64, min)
}

struct Measurement {
    workload: &'static str,
    bytes: usize,
    scan_mean_s: f64,
    scan_min_s: f64,
    owned_mean_s: f64,
    owned_min_s: f64,
    legacy_mean_s: f64,
    legacy_min_s: f64,
    iters: usize,
}

impl Measurement {
    /// The headline ratio: zero-copy scan (with every field resolved)
    /// vs the legacy materialising walker, min-over-iterations on both
    /// sides (see [`time`]).
    fn speedup(&self) -> f64 {
        self.legacy_min_s / self.scan_min_s
    }

    /// Secondary ratio: owned-adapter `parse` vs legacy — same output
    /// shape, so the allocation cost is identical on both sides.
    fn owned_speedup(&self) -> f64 {
        self.legacy_min_s / self.owned_min_s
    }

    fn scan_mb_s(&self) -> f64 {
        self.bytes as f64 / self.scan_min_s / 1e6
    }

    fn legacy_mb_s(&self) -> f64 {
        self.bytes as f64 / self.legacy_min_s / 1e6
    }
}

/// Scan and touch every resolved field value — the consumption pattern
/// of dialect scoring. Clean fields resolve to borrowed slices; dirty
/// ones pay their unescape allocation.
fn scan_and_resolve(text: &str, dialect: &Dialect) -> usize {
    let records = scan_records(text, dialect);
    let mut total = 0usize;
    for rec in records.iter() {
        for cell in rec.iter() {
            total += cell.len();
        }
    }
    total
}

fn measure(w: &Workload, iters: usize, dialect: &Dialect) -> Measurement {
    let (scan_mean, scan_min) = time(iters, || {
        black_box(scan_and_resolve(&w.text, dialect));
    });
    let (owned_mean, owned_min) = time(iters, || {
        black_box(parse(&w.text, dialect));
    });
    let (legacy_mean, legacy_min) = time(iters, || {
        black_box(parse_legacy(&w.text, dialect));
    });
    Measurement {
        workload: w.name,
        bytes: w.text.len(),
        scan_mean_s: scan_mean,
        scan_min_s: scan_min,
        owned_mean_s: owned_mean,
        owned_min_s: owned_min,
        legacy_mean_s: legacy_mean,
        legacy_min_s: legacy_min,
        iters,
    }
}

/// Thread counts of the parallel-scan sweep. 1 is the serial baseline
/// (`try_scan_records_threaded` falls back below 2 workers).
const SCAN_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One (workload, thread-count) cell of the parallel-scan sweep.
struct ParallelMeasurement {
    workload: &'static str,
    threads: usize,
    mean_s: f64,
    min_s: f64,
}

/// Chunk-parallel scan plus the same touch-every-field resolution loop
/// as [`scan_and_resolve`], so the thread sweep is comparable with the
/// serial `scan` numbers above.
fn scan_threaded_and_resolve(text: &str, dialect: &Dialect, n_threads: usize) -> usize {
    let records = try_scan_records_threaded(
        text,
        dialect,
        &Limits::unbounded(),
        Deadline::none(),
        n_threads,
    )
    .expect("unbounded scan succeeds");
    let mut total = 0usize;
    for rec in records.iter() {
        for cell in rec.iter() {
            total += cell.len();
        }
    }
    total
}

fn measure_parallel(w: &Workload, iters: usize, dialect: &Dialect) -> Vec<ParallelMeasurement> {
    SCAN_THREADS
        .iter()
        .map(|&threads| {
            let (mean, min) = time(iters, || {
                black_box(scan_threaded_and_resolve(&w.text, dialect, threads));
            });
            ParallelMeasurement {
                workload: w.name,
                threads,
                mean_s: mean,
                min_s: min,
            }
        })
        .collect()
}

/// End-to-end pipeline comparison on a fitted model.
struct ClassifyMeasurement {
    bytes: usize,
    owned_mean_s: f64,
    owned_min_s: f64,
    borrowed_mean_s: f64,
    borrowed_min_s: f64,
    iters: usize,
}

impl ClassifyMeasurement {
    /// The end-to-end headline: owned-path detection time over
    /// borrowed-path detection time, min-over-iterations on both sides.
    fn pipeline_speedup(&self) -> f64 {
        self.owned_min_s / self.borrowed_min_s
    }
}

/// Fit a small but real model for the end-to-end comparison. The fit is
/// outside all timed regions; only detection is measured.
fn fit_model() -> Strudel {
    let corpus = saus(&GeneratorConfig {
        n_files: 8,
        seed: 3,
        scale: 1.0,
    });
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig::fast(10, 0),
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig::fast(10, 0),
        ..StrudelCellConfig::default()
    };
    Strudel::fit(&corpus.files, &config)
}

/// The pre-refactor pipeline shape: detect the dialect, parse to a
/// fully owned `Table` up front, then classify the owned grid.
fn detect_owned_path(model: &Strudel, text: &str) -> usize {
    let dialect = detect_dialect(text);
    let table = Table::from_rows(parse(text, &dialect));
    model.detect_structure_of_table(table, dialect).lines.len()
}

/// The borrowed path: `try_detect_structure` scans in chunks, extracts
/// features over borrowed field spans, and materialises owned cells
/// only for the final `Structure`.
fn detect_borrowed_path(model: &Strudel, text: &str) -> usize {
    model
        .try_detect_structure(text, &Limits::unbounded())
        .expect("unbounded detection succeeds")
        .lines
        .len()
}

fn measure_classify(model: &Strudel, text: &str, iters: usize) -> ClassifyMeasurement {
    let owned_lines = detect_owned_path(model, text);
    let borrowed_lines = detect_borrowed_path(model, text);
    assert_eq!(
        owned_lines, borrowed_lines,
        "owned and borrowed pipelines must agree before being compared"
    );
    let (owned_mean, owned_min) = time(iters, || {
        black_box(detect_owned_path(model, text));
    });
    let (borrowed_mean, borrowed_min) = time(iters, || {
        black_box(detect_borrowed_path(model, text));
    });
    ClassifyMeasurement {
        bytes: text.len(),
        owned_mean_s: owned_mean,
        owned_min_s: owned_min,
        borrowed_mean_s: borrowed_mean,
        borrowed_min_s: borrowed_min,
        iters,
    }
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn write_json(
    path: &str,
    results: &[Measurement],
    parallel: &[ParallelMeasurement],
    classify: &ClassifyMeasurement,
    headline: f64,
    parallel_4t: f64,
) {
    let mut entries = String::new();
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"workload\": \"{}\", \"bytes\": {}, \
             \"scan_mean_s\": {:.6}, \"scan_min_s\": {:.6}, \
             \"owned_mean_s\": {:.6}, \
             \"legacy_mean_s\": {:.6}, \"legacy_min_s\": {:.6}, \
             \"scan_mb_s\": {:.1}, \"legacy_mb_s\": {:.1}, \
             \"speedup\": {:.3}, \"owned_speedup\": {:.3}, \"iters\": {}}}",
            m.workload,
            m.bytes,
            m.scan_mean_s,
            m.scan_min_s,
            m.owned_mean_s,
            m.legacy_mean_s,
            m.legacy_min_s,
            m.scan_mb_s(),
            m.legacy_mb_s(),
            m.speedup(),
            m.owned_speedup(),
            m.iters
        ));
    }
    let mut parallel_entries = String::new();
    for (i, p) in parallel.iter().enumerate() {
        if i > 0 {
            parallel_entries.push_str(",\n");
        }
        let serial = parallel
            .iter()
            .find(|q| q.workload == p.workload && q.threads == 1)
            .expect("1-thread baseline present");
        parallel_entries.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \
             \"mean_s\": {:.6}, \"min_s\": {:.6}, \
             \"speedup_vs_serial\": {:.3}}}",
            p.workload,
            p.threads,
            p.mean_s,
            p.min_s,
            serial.min_s / p.min_s
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parse\",\n  \"smoke\": {},\n  \
         \"host_cpus\": {},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"parallel_scan\": [\n{}\n  ],\n  \
         \"classify\": {{\"bytes\": {}, \"owned_mean_s\": {:.6}, \
         \"owned_min_s\": {:.6}, \"borrowed_mean_s\": {:.6}, \
         \"borrowed_min_s\": {:.6}, \"iters\": {}}},\n  \
         \"speedup_scan_vs_legacy\": {:.3},\n  \
         \"parallel_scan_speedup_4t\": {:.3},\n  \
         \"pipeline_speedup\": {:.3}\n}}\n",
        smoke(),
        host_cpus(),
        entries,
        parallel_entries,
        classify.bytes,
        classify.owned_mean_s,
        classify.owned_min_s,
        classify.borrowed_mean_s,
        classify.borrowed_min_s,
        classify.iters,
        headline,
        parallel_4t,
        classify.pipeline_speedup()
    );
    std::fs::write(path, json).expect("write bench summary");
    println!("wrote {path}");
}

/// The JSON-producing comparison: every workload through the zero-copy
/// scan (with field resolution), the legacy walker, and the owned
/// adapter. The headline number is the verbose_mixed scan-vs-legacy
/// speedup.
fn summary() {
    let iters = if smoke() { 3 } else { 7 };
    let dialect = Dialect::rfc4180();
    let loads = workloads();
    let results: Vec<Measurement> = loads.iter().map(|w| measure(w, iters, &dialect)).collect();
    for m in &results {
        println!(
            "{}: scan {:.1} MB/s ({:.4}s min), legacy {:.1} MB/s ({:.4}s min), {:.2}x \
             (owned adapter {:.4}s min, {:.2}x)",
            m.workload,
            m.scan_mb_s(),
            m.scan_min_s,
            m.legacy_mb_s(),
            m.legacy_min_s,
            m.speedup(),
            m.owned_min_s,
            m.owned_speedup(),
        );
    }

    let parallel: Vec<ParallelMeasurement> = loads
        .iter()
        .flat_map(|w| measure_parallel(w, iters, &dialect))
        .collect();
    println!("host_cpus: {}", host_cpus());
    for p in &parallel {
        let serial = parallel
            .iter()
            .find(|q| q.workload == p.workload && q.threads == 1)
            .expect("1-thread baseline present");
        println!(
            "parallel_scan {} @{} threads: {:.4}s min ({:.2}x vs serial)",
            p.workload,
            p.threads,
            p.min_s,
            serial.min_s / p.min_s
        );
    }
    let parallel_4t = {
        let serial = parallel
            .iter()
            .find(|p| p.workload == "verbose_mixed" && p.threads == 1)
            .expect("verbose_mixed serial scan present");
        let four = parallel
            .iter()
            .find(|p| p.workload == "verbose_mixed" && p.threads == 4)
            .expect("verbose_mixed 4-thread scan present");
        serial.min_s / four.min_s
    };

    // End-to-end classification runs on a smaller verbose file than the
    // parse workloads: feature extraction and forest walks cost far
    // more per byte than scanning does.
    let model = fit_model();
    let classify_text = verbose_mixed(if smoke() { 128 << 10 } else { 1 << 20 });
    let classify = measure_classify(&model, &classify_text, if smoke() { 3 } else { 7 });
    println!(
        "classify: owned {:.4}s min, borrowed {:.4}s min, pipeline_speedup {:.2}x",
        classify.owned_min_s,
        classify.borrowed_min_s,
        classify.pipeline_speedup()
    );

    let headline = results
        .iter()
        .find(|m| m.workload == "verbose_mixed")
        .expect("verbose_mixed workload present")
        .speedup();
    // Default to the workspace root (cargo bench runs with the package
    // directory as cwd), so the artifact lands next to BENCH_train.json.
    let out = std::env::var("BENCH_PARSE_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parse.json").into());
    write_json(&out, &results, &parallel, &classify, headline, parallel_4t);
}

fn parse_throughput(c: &mut Criterion) {
    let dialect = Dialect::rfc4180();
    let loads = workloads();

    let mut group = c.benchmark_group("parse");
    group.sample_size(10);
    for w in &loads {
        for path in ["scan", "owned", "legacy"] {
            let label = format!("{}/{}", w.name, path);
            group.bench_with_input(BenchmarkId::from_parameter(label), &w.text, |b, text| {
                b.iter(|| match path {
                    "scan" => {
                        black_box(scan_and_resolve(text, &dialect));
                    }
                    "owned" => {
                        black_box(parse(text, &dialect));
                    }
                    _ => {
                        black_box(parse_legacy(text, &dialect));
                    }
                })
            });
        }
    }
    group.finish();

    // The thread sweep as Criterion entries, on the representative
    // workload only — the JSON summary covers all workloads.
    let verbose = loads
        .iter()
        .find(|w| w.name == "verbose_mixed")
        .expect("verbose_mixed workload present");
    let mut pgroup = c.benchmark_group("parallel_scan");
    pgroup.sample_size(10);
    for &threads in &SCAN_THREADS {
        pgroup.bench_with_input(
            BenchmarkId::from_parameter(format!("verbose_mixed/{threads}t")),
            &verbose.text,
            |b, text| {
                b.iter(|| {
                    black_box(scan_threaded_and_resolve(text, &dialect, threads));
                })
            },
        );
    }
    pgroup.finish();

    summary();
}

criterion_group!(benches, parse_throughput);
criterion_main!(benches);
