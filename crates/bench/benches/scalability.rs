//! §6.3.4 scalability: end-to-end structure-detection runtime vs file
//! size. The paper reports that the overall runtime — dialect detection,
//! feature creation, and class prediction — is linear in the file size
//! (≈256 s for a 10 MB file on a 2019 laptop, dominated by feature
//! creation). This bench measures the same pipeline on generated
//! Mendeley-style files of growing size; Criterion's throughput report
//! shows whether bytes/second stays flat (linear scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use strudel::{Strudel, StrudelCellConfig, StrudelLineConfig};
use strudel_datagen::{mendeley, saus, GeneratorConfig};
use strudel_ml::ForestConfig;

fn fitted_model() -> Strudel {
    let train = saus(&GeneratorConfig {
        n_files: 20,
        seed: 5,
        scale: 0.3,
    });
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig::fast(20, 0),
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig::fast(20, 1),
        ..StrudelCellConfig::default()
    };
    Strudel::fit(&train.files, &config)
}

fn text_of_size(rows_scale: f64) -> String {
    let corpus = mendeley(&GeneratorConfig {
        n_files: 1,
        seed: 11,
        scale: rows_scale,
    });
    corpus.files[0].table.to_delimited(',')
}

fn scalability(c: &mut Criterion) {
    let model = fitted_model();
    let mut group = c.benchmark_group("pipeline_scalability");
    group.sample_size(10);
    for scale in [0.03, 0.1, 0.3, 1.0, 3.0] {
        let text = text_of_size(scale);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}B", text.len())),
            &text,
            |b, text| b.iter(|| model.detect_structure(text)),
        );
    }
    group.finish();
}

criterion_group!(benches, scalability);
criterion_main!(benches);
