//! Per-stage micro-benchmarks of the Strudel pipeline: dialect
//! detection, CSV parsing, Algorithm 1 (block sizes), Algorithm 2
//! (derived-cell detection), line and cell feature extraction, and
//! random-forest training/prediction. These quantify the paper's remark
//! that "most of the time is spent on creating the feature vectors".

use criterion::{criterion_group, criterion_main, Criterion};
use strudel::{
    block_sizes, detect_derived_cells, extract_cell_features, extract_line_features,
    CellFeatureConfig, DerivedConfig, LineFeatureConfig, StrudelLine, StrudelLineConfig,
};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_dialect::{detect_dialect, read_table};
use strudel_ml::{Classifier, ForestConfig, RandomForest};
use strudel_table::ElementClass;

fn stages(c: &mut Criterion) {
    let corpus = saus(&GeneratorConfig {
        n_files: 8,
        seed: 3,
        scale: 1.0,
    });
    let file = &corpus.files[0];
    let text = file.table.to_delimited(',');

    c.bench_function("dialect_detection", |b| b.iter(|| detect_dialect(&text)));
    c.bench_function("csv_parse_and_table", |b| b.iter(|| read_table(&text)));
    c.bench_function("algorithm1_block_sizes", |b| {
        b.iter(|| block_sizes(&file.table))
    });
    c.bench_function("algorithm2_derived_cells", |b| {
        b.iter(|| detect_derived_cells(&file.table, &DerivedConfig::default()))
    });
    c.bench_function("line_feature_extraction", |b| {
        b.iter(|| extract_line_features(&file.table, &LineFeatureConfig::default()))
    });

    let uniform = vec![vec![1.0 / 6.0; ElementClass::COUNT]; file.table.n_rows()];
    c.bench_function("cell_feature_extraction", |b| {
        b.iter(|| extract_cell_features(&file.table, &uniform, &CellFeatureConfig::default()))
    });

    let dataset = StrudelLine::build_dataset(&corpus.files, &LineFeatureConfig::default());
    c.bench_function("random_forest_fit_30trees", |b| {
        b.iter(|| RandomForest::fit(&dataset, &ForestConfig::fast(30, 0)))
    });
    let forest = RandomForest::fit(&dataset, &ForestConfig::fast(30, 0));
    c.bench_function("random_forest_predict_file", |b| {
        b.iter(|| {
            (0..dataset.n_samples())
                .map(|i| forest.predict(dataset.row(i)))
                .sum::<usize>()
        })
    });

    let line_model = StrudelLine::fit(
        &corpus.files,
        &StrudelLineConfig {
            forest: ForestConfig::fast(30, 0),
            ..StrudelLineConfig::default()
        },
    );
    c.bench_function("strudel_line_predict_file", |b| {
        b.iter(|| line_model.predict(&file.table))
    });
}

criterion_group!(benches, stages);
criterion_main!(benches);
