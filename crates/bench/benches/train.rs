//! Forest-training throughput: the pre-sorted columnar splitter vs the
//! retained reference splitter, single-threaded and across all cores.
//!
//! Three workloads:
//!
//! * **blob / bagged CART** — a dense synthetic blob (8 000 × 30,
//!   6 classes, 20 % label noise, continuous feature values) trained
//!   with `TreeConfig::default()` (all features per node). This is the
//!   acceptance workload: the reference splitter re-sorts every feature
//!   at every node and allocates per-threshold count vectors, while the
//!   columnar splitter partitions pre-sorted index arrays in O(F·n) per
//!   level with allocation-free scans, so deep noisy trees expose the
//!   asymptotic gap.
//! * **blob / sqrt forest** — the same blob with
//!   `MaxFeatures::Sqrt`, the product configuration shape. Subsampled
//!   features shrink the win (partitioning maintains all F columns but
//!   only √F are scanned per node), reported honestly as a secondary
//!   number.
//! * **line dataset** — the real `Strudel^L` line-classification
//!   dataset extracted from a generated SAUS-style corpus (14
//!   duplicate-heavy features).
//!
//! Besides the Criterion display output, the bench writes a
//! machine-readable summary to `BENCH_train.json` (override with
//! `BENCH_TRAIN_OUT`). `BENCH_SMOKE=1` shrinks the workloads and the
//! iteration counts for CI smoke runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use strudel::{LineFeatureConfig, StrudelLine};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_ml::{Dataset, ForestConfig, MaxFeatures, RandomForest, TreeConfig};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// The real line-classification dataset of a generated corpus.
fn line_dataset(n_files: usize) -> Dataset {
    let corpus = saus(&GeneratorConfig {
        n_files,
        seed: 5,
        scale: 0.3,
    });
    StrudelLine::build_dataset(&corpus.files, &LineFeatureConfig::default())
}

/// A dense synthetic dataset: `n` samples, `d` continuous features
/// whose class centres overlap between neighbouring classes, plus 20 %
/// uniform label noise. The noise keeps class counts mixed deep into
/// the tree, so trees grow to realistic depth instead of separating in
/// a few levels.
fn blob_dataset(n: usize, d: usize) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(41);
    let n_classes = 6;
    let noise_pct = 20;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let class = rng.gen_range(0..n_classes);
        let row: Vec<f64> = (0..d)
            .map(|j| {
                let centre = ((class + j) % n_classes) as f64;
                centre + rng.gen_range(0..1_000_000) as f64 * 2e-6
            })
            .collect();
        rows.push(row);
        y.push(if rng.gen_range(0..100) < noise_pct {
            rng.gen_range(0..n_classes)
        } else {
            class
        });
    }
    Dataset::from_rows(&rows, &y, n_classes)
}

/// Bagged CART: every feature considered at every node
/// (`TreeConfig::default()`), bootstrap sampling. The acceptance
/// configuration for the columnar-vs-reference comparison.
fn cart_config(n_trees: usize, n_threads: usize) -> ForestConfig {
    ForestConfig {
        n_trees,
        tree: TreeConfig::default(),
        bootstrap: true,
        seed: 7,
        n_threads,
    }
}

/// The product-shaped configuration: `MaxFeatures::Sqrt` per node.
fn sqrt_config(n_trees: usize, n_threads: usize) -> ForestConfig {
    ForestConfig {
        tree: TreeConfig {
            max_features: MaxFeatures::Sqrt,
            ..TreeConfig::default()
        },
        ..cart_config(n_trees, n_threads)
    }
}

/// Mean/min wall-clock seconds of `iters` runs of `f`.
fn time<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64) {
    let mut total = 0.0;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let s = t.elapsed().as_secs_f64();
        total += s;
        min = min.min(s);
    }
    (total / iters as f64, min)
}

struct Measurement {
    name: &'static str,
    mean_s: f64,
    min_s: f64,
    iters: usize,
}

fn measure(
    results: &mut Vec<Measurement>,
    name: &'static str,
    iters: usize,
    data: &Dataset,
    cfg: &ForestConfig,
    reference: bool,
) -> f64 {
    let (mean, min) = time(iters, || {
        if reference {
            let _ = RandomForest::fit_reference(data, cfg);
        } else {
            let _ = RandomForest::fit(data, cfg);
        }
    });
    results.push(Measurement {
        name,
        mean_s: mean,
        min_s: min,
        iters,
    });
    mean
}

fn write_json(
    path: &str,
    blob: &Dataset,
    line: &Dataset,
    results: &[Measurement],
    speedup: f64,
    threads: usize,
) {
    let mut entries = String::new();
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_s\": {:.6}, \"min_s\": {:.6}, \"iters\": {}}}",
            m.name, m.mean_s, m.min_s, m.iters
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"train\",\n  \"smoke\": {},\n  \"threads_all\": {},\n  \
         \"datasets\": {{\n    \"blob\": {{\"n_samples\": {}, \"n_features\": {}}},\n    \
         \"line\": {{\"n_samples\": {}, \"n_features\": {}}}\n  }},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"speedup_columnar_vs_reference_1t\": {:.3}\n}}\n",
        smoke(),
        threads,
        blob.n_samples(),
        blob.n_features(),
        line.n_samples(),
        line.n_features(),
        entries,
        speedup
    );
    std::fs::write(path, json).expect("write bench summary");
    println!("wrote {path}");
}

/// The JSON-producing comparison: bagged-CART columnar vs reference on
/// one thread (the acceptance number), the all-core columnar run, the
/// sqrt-forest pair, and the line-dataset pair.
fn summary() {
    let (blob_n, blob_d, n_trees, iters) = if smoke() {
        (600, 12, 4, 1)
    } else {
        (8000, 30, 10, 3)
    };
    let blob = blob_dataset(blob_n, blob_d);
    let line = line_dataset(if smoke() { 6 } else { 20 });
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let cart_1t = cart_config(n_trees, 1);
    let cart_all = cart_config(n_trees, 0);
    let sqrt_1t = sqrt_config(n_trees, 1);

    let mut results = Vec::new();
    let columnar_1t = measure(
        &mut results,
        "blob_cart_columnar_1t",
        iters,
        &blob,
        &cart_1t,
        false,
    );
    let reference_1t = measure(
        &mut results,
        "blob_cart_reference_1t",
        iters,
        &blob,
        &cart_1t,
        true,
    );
    measure(
        &mut results,
        "blob_cart_columnar_all_cores",
        iters,
        &blob,
        &cart_all,
        false,
    );
    measure(
        &mut results,
        "blob_sqrt_columnar_1t",
        iters,
        &blob,
        &sqrt_1t,
        false,
    );
    measure(
        &mut results,
        "blob_sqrt_reference_1t",
        iters,
        &blob,
        &sqrt_1t,
        true,
    );
    measure(
        &mut results,
        "line_columnar_1t",
        iters,
        &line,
        &sqrt_1t,
        false,
    );
    measure(
        &mut results,
        "line_reference_1t",
        iters,
        &line,
        &sqrt_1t,
        true,
    );

    let speedup = reference_1t / columnar_1t;
    println!(
        "single-thread bagged-CART fit (blob {}x{}, {} trees): columnar {:.3}s, reference {:.3}s, {:.2}x",
        blob.n_samples(),
        blob.n_features(),
        n_trees,
        columnar_1t,
        reference_1t,
        speedup
    );
    // Default to the workspace root (cargo bench runs with the package
    // directory as cwd), so the artifact lands next to the README.
    let out = std::env::var("BENCH_TRAIN_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_train.json").into());
    write_json(&out, &blob, &line, &results, speedup, threads);
}

fn train_throughput(c: &mut Criterion) {
    let (blob_n, blob_d, n_trees) = if smoke() {
        (600, 12, 4)
    } else {
        (8000, 30, 10)
    };
    let blob = blob_dataset(blob_n, blob_d);

    let mut group = c.benchmark_group("forest_train");
    group.sample_size(10);
    for (label, reference, n_threads) in [
        ("cart_columnar/1threads", false, 1),
        ("cart_columnar/all", false, 0),
        ("cart_reference/1threads", true, 1),
    ] {
        let cfg = cart_config(n_trees, n_threads);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                if reference {
                    let _ = RandomForest::fit_reference(&blob, cfg);
                } else {
                    let _ = RandomForest::fit(&blob, cfg);
                }
            })
        });
    }
    group.finish();

    summary();
}

criterion_group!(benches, train_throughput);
criterion_main!(benches);
