//! Minimal command-line parsing shared by the experiment binaries.

/// Common experiment knobs, overridable via `--key value` flags.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Files per generated corpus (`--files`).
    pub files: usize,
    /// Body-size scale of the generators (`--scale`).
    pub scale: f64,
    /// Corpus seed (`--seed`).
    pub seed: u64,
    /// Cross-validation folds (`--folds`).
    pub folds: usize,
    /// Cross-validation repetitions (`--repeats`).
    pub repeats: usize,
    /// Random-forest size (`--trees`).
    pub trees: usize,
    /// Free-form task selector used by `table6` (`--task line|cell|both`).
    pub task: String,
    /// Run at the paper's corpus sizes (`--paper`): file counts of
    /// Table 4, scale 1.0, 10×10 CV, 100 trees. Slow.
    pub paper: bool,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        ExperimentArgs {
            files: 60,
            scale: 0.25,
            seed: 42,
            folds: 10,
            repeats: 2,
            trees: 30,
            task: "both".to_string(),
            paper: false,
        }
    }
}

impl ExperimentArgs {
    /// Parse `std::env::args`, falling back to the defaults above.
    ///
    /// # Panics
    /// Panics (with a usage message) on unknown flags or malformed values
    /// — experiment binaries should fail loudly, not run the wrong setup.
    pub fn parse() -> ExperimentArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> ExperimentArgs {
        let mut out = ExperimentArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--files" => out.files = value("--files").parse().expect("--files: integer"),
                "--scale" => out.scale = value("--scale").parse().expect("--scale: float"),
                "--seed" => out.seed = value("--seed").parse().expect("--seed: integer"),
                "--folds" => out.folds = value("--folds").parse().expect("--folds: integer"),
                "--repeats" => {
                    out.repeats = value("--repeats").parse().expect("--repeats: integer")
                }
                "--trees" => out.trees = value("--trees").parse().expect("--trees: integer"),
                "--task" => out.task = value("--task"),
                "--paper" => out.paper = true,
                other => panic!(
                    "unknown flag {other}; known: --files --scale --seed --folds --repeats --trees --task --paper"
                ),
            }
        }
        if out.paper {
            out.scale = 1.0;
            out.folds = 10;
            out.repeats = 10;
            out.trees = 100;
        }
        out
    }

    /// Generator configuration for a named dataset under these arguments.
    pub fn corpus_config(&self, dataset: &str) -> strudel_datagen::GeneratorConfig {
        if self.paper {
            strudel_datagen::GeneratorConfig {
                seed: self.seed,
                ..strudel_datagen::GeneratorConfig::paper_sized(dataset)
            }
        } else {
            strudel_datagen::GeneratorConfig {
                n_files: self.files,
                seed: self.seed,
                scale: self.scale,
            }
        }
    }

    /// Cross-validation configuration under these arguments.
    pub fn cv_config(&self) -> strudel_eval::CvConfig {
        strudel_eval::CvConfig {
            k: self.folds,
            repeats: self.repeats,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_flags() {
        let a = ExperimentArgs::parse_from(Vec::new());
        assert_eq!(a.files, 60);
        assert_eq!(a.folds, 10);
        assert!(!a.paper);
    }

    #[test]
    fn flags_override() {
        let a = ExperimentArgs::parse_from(
            ["--files", "10", "--scale", "0.5", "--task", "line"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.files, 10);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.task, "line");
    }

    #[test]
    fn paper_mode_upgrades_settings() {
        let a = ExperimentArgs::parse_from(["--paper".to_string()]);
        assert_eq!(a.repeats, 10);
        assert_eq!(a.trees, 100);
        assert_eq!(a.corpus_config("SAUS").n_files, 223);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = ExperimentArgs::parse_from(["--bogus".to_string()]);
    }
}
