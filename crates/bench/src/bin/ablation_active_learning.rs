//! Active learning simulation, after Chen et al. \[7\] (related work):
//! does uncertainty-based file selection reach a given quality with
//! fewer annotated files than random selection?
//!
//! Protocol: a labeled pool plays the "unlabeled" corpus; a held-out set
//! measures quality. Both strategies start from the same seed files and
//! add one batch per round — random picks uniformly, the sheet selector
//! picks the files with the highest mean line-prediction entropy. The
//! model retrains after every round.

use strudel::{file_uncertainty, StrudelLine, StrudelLineConfig};
use strudel_bench::ExperimentArgs;
use strudel_eval::Evaluation;
use strudel_ml::ForestConfig;
use strudel_table::{Corpus, ElementClass, LabeledFile};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SEED_FILES: usize = 4;
const BATCH: usize = 2;
const ROUNDS: usize = 8;

fn macro_f1(model: &StrudelLine, test: &[LabeledFile]) -> f64 {
    let mut gold = Vec::new();
    let mut pred = Vec::new();
    for file in test {
        let p = model.predict(&file.table);
        for (g, pr) in file.line_labels.iter().zip(&p) {
            if let (Some(g), Some(pr)) = (g, pr) {
                gold.push(g.index());
                pred.push(pr.index());
            }
        }
    }
    Evaluation::compute(&gold, &pred, ElementClass::COUNT).macro_f1(&[])
}

fn run_strategy(
    pool: &[LabeledFile],
    test: &[LabeledFile],
    config: &StrudelLineConfig,
    uncertainty_driven: bool,
    seed: u64,
) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut labeled: Vec<usize> = (0..SEED_FILES.min(pool.len())).collect();
    let mut unlabeled: Vec<usize> = (labeled.len()..pool.len()).collect();
    let mut trajectory = Vec::new();

    for _ in 0..=ROUNDS {
        let train: Vec<LabeledFile> = labeled.iter().map(|&i| pool[i].clone()).collect();
        let model = StrudelLine::fit(&train, config);
        trajectory.push(macro_f1(&model, test));
        if unlabeled.is_empty() {
            continue;
        }
        let picks: Vec<usize> = if uncertainty_driven {
            let mut scored: Vec<(usize, f64)> = unlabeled
                .iter()
                .map(|&i| (i, file_uncertainty(&model, &pool[i].table)))
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.into_iter().take(BATCH).map(|(i, _)| i).collect()
        } else {
            let mut pool_copy = unlabeled.clone();
            pool_copy.shuffle(&mut rng);
            pool_copy.into_iter().take(BATCH).collect()
        };
        for pick in picks {
            unlabeled.retain(|&i| i != pick);
            labeled.push(pick);
        }
    }
    trajectory
}

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let mut merged = Corpus::merged("SAUS+DeEx", &parts.iter().collect::<Vec<_>>());
    // Shuffle before splitting so the held-out set and the pool share
    // the same style mixture.
    merged
        .files
        .shuffle(&mut SmallRng::seed_from_u64(args.seed ^ 0xA11CE));
    let n_test = merged.files.len() / 3;
    let (test, pool) = merged.files.split_at(n_test);
    let config = StrudelLineConfig {
        forest: ForestConfig {
            n_trees: args.trees,
            seed: args.seed,
            ..ForestConfig::default()
        },
        ..StrudelLineConfig::default()
    };

    println!(
        "Active learning simulation (line task, SAUS+DeEx): pool {} files, test {} files,\nseed {} files + {} per round\n",
        pool.len(),
        test.len(),
        SEED_FILES,
        BATCH
    );

    // Average random over a few seeds; uncertainty is deterministic.
    let active = run_strategy(pool, test, &config, true, args.seed);
    let mut random = vec![0.0; ROUNDS + 1];
    const RANDOM_REPEATS: usize = 3;
    for rep in 0..RANDOM_REPEATS {
        let run = run_strategy(pool, test, &config, false, args.seed ^ (rep as u64 + 1));
        for (acc, v) in random.iter_mut().zip(run) {
            *acc += v / RANDOM_REPEATS as f64;
        }
    }

    println!(
        "{:<14}{:>14}{:>18}",
        "labeled files", "random", "uncertainty"
    );
    for round in 0..=ROUNDS {
        println!(
            "{:<14}{:>14.3}{:>18.3}",
            SEED_FILES + round * BATCH,
            random[round],
            active[round]
        );
    }
    let adv: f64 =
        active.iter().zip(&random).map(|(a, r)| a - r).sum::<f64>() / active.len() as f64;
    println!(
        "\nMean macro-F1 advantage of uncertainty selection: {adv:+.3}\n\
         (Chen et al. [7] report active learning reduces annotation effort;\n\
         a positive advantage reproduces that on the synthetic corpora.)"
    );
}
