//! §6.1.2 ablation: the backbone classifier choice. The paper tested
//! Naive Bayes, KNN, SVM, and random forest and reports that "random
//! forest consistently outperformed the other candidate algorithms on our
//! datasets for both classification tasks". We compare the same line
//! feature set under four backbones (multinomial logistic regression
//! standing in for the linear-kernel SVM — DESIGN.md, substitution 1).

use strudel::{LineFeatureConfig, StrudelLine};
use strudel_bench::ExperimentArgs;
use strudel_eval::{grouped_k_folds, Evaluation};
use strudel_ml::{
    Classifier, ForestConfig, GaussianNb, Knn, LogisticConfig, LogisticRegression, RandomForest,
};
use strudel_table::{Corpus, ElementClass, LabeledFile};

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let merged = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    println!(
        "Backbone ablation (line task, SAUS+CIUS+DeEx, {} files, {} folds)\n",
        merged.files.len(),
        args.folds
    );

    let folds = grouped_k_folds(merged.files.len(), args.folds, args.seed);
    let backbones: [&str; 4] = ["RandomForest", "NaiveBayes", "kNN(5)", "Logistic"];
    let mut evals: Vec<Vec<Evaluation>> = vec![Vec::new(); backbones.len()];

    for test_fold in 0..args.folds {
        let train_files: Vec<LabeledFile> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != test_fold)
            .flat_map(|(_, f)| f.iter().map(|&i| merged.files[i].clone()))
            .collect();
        let test_files: Vec<&LabeledFile> =
            folds[test_fold].iter().map(|&i| &merged.files[i]).collect();

        let train = StrudelLine::build_dataset(&train_files, &LineFeatureConfig::default());
        let owned_test: Vec<LabeledFile> = test_files.iter().map(|f| (*f).clone()).collect();
        let test = StrudelLine::build_dataset(&owned_test, &LineFeatureConfig::default());

        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(RandomForest::fit(
                &train,
                &ForestConfig {
                    n_trees: args.trees,
                    seed: args.seed ^ test_fold as u64,
                    ..ForestConfig::default()
                },
            )),
            Box::new(GaussianNb::fit(&train)),
            Box::new(Knn::fit(&train, 5)),
            Box::new(LogisticRegression::fit(
                &train,
                &LogisticConfig {
                    seed: args.seed,
                    ..LogisticConfig::default()
                },
            )),
        ];
        for (evals_slot, model) in evals.iter_mut().zip(&models) {
            let pred = model.predict_all(&test);
            evals_slot.push(Evaluation::compute(
                test.targets(),
                &pred,
                ElementClass::COUNT,
            ));
        }
    }

    println!("{:<14}{:>10}{:>11}", "backbone", "accuracy", "macro-F1");
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for (b, name) in backbones.iter().enumerate() {
        let mean = Evaluation::mean(&evals[b]);
        rows.push((b, mean.accuracy, mean.macro_f1(&[])));
        println!(
            "{name:<14}{:>10.3}{:>11.3}",
            mean.accuracy,
            mean.macro_f1(&[])
        );
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!(
        "\nBest macro-F1: {} (paper: random forest consistently wins)",
        backbones[best.0]
    );
}
