//! §7 future work: "whether column classification can help boost the
//! classification quality". This binary answers the question on the
//! synthetic corpora: a column classifier (strudel::StrudelColumn) is
//! trained alongside Strudel^C, its per-column class probabilities are
//! appended to the cell features, and the boosted model is compared to
//! the published one under the same cross-validation protocol.

use strudel::{fit_plain_and_boosted, StrudelCellConfig, StrudelLineConfig};
use strudel_bench::ExperimentArgs;
use strudel_eval::{run_cross_validation, Prediction};
use strudel_ml::ForestConfig;
use strudel_table::{ElementClass, LabeledFile};

fn main() {
    let args = ExperimentArgs::parse();
    let cv = args.cv_config();
    println!(
        "Column-probability boost ablation (cell task): --files {} --scale {} --folds {} --repeats {} --trees {}\n",
        args.files, args.scale, args.folds, args.repeats, args.trees
    );
    println!(
        "{:<10}{:>16}{:>16}{:>14}{:>14}",
        "Dataset", "Strudel^C", "+columns", "Δ macro-F1", "Δ derived-F1"
    );

    for dataset in ["SAUS", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig {
                    n_trees: args.trees,
                    seed: args.seed,
                    ..ForestConfig::default()
                },
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig {
                n_trees: args.trees,
                seed: args.seed ^ 0xC0FFEE,
                ..ForestConfig::default()
            },
            ..StrudelCellConfig::default()
        };

        let mut plain_all = Vec::new();
        let mut boosted_all = Vec::new();
        let mut fold = 0u64;
        let outcome = run_cross_validation(corpus.files.len(), &cv, |train_idx, test_idx| {
            fold += 1;
            let train: Vec<LabeledFile> =
                train_idx.iter().map(|&i| corpus.files[i].clone()).collect();
            let (plain, boosted) = fit_plain_and_boosted(&train, &config);
            let mut plain_preds = Vec::new();
            let mut boosted_preds = Vec::new();
            for &fi in test_idx {
                let file = &corpus.files[fi];
                let n_cols = file.table.n_cols();
                for p in plain.predict(&file.table) {
                    if let Some(g) = file.cell_labels[p.row][p.col] {
                        plain_preds.push(Prediction {
                            file: fi,
                            item: p.row * n_cols + p.col,
                            gold: g.index(),
                            pred: p.class.index(),
                        });
                    }
                }
                for p in boosted.predict(&file.table) {
                    if let Some(g) = file.cell_labels[p.row][p.col] {
                        boosted_preds.push(Prediction {
                            file: fi,
                            item: p.row * n_cols + p.col,
                            gold: g.index(),
                            pred: p.class.index(),
                        });
                    }
                }
            }
            plain_all.push(plain_preds.clone());
            boosted_all.push(boosted_preds);
            plain_preds // the CvOutcome itself carries the plain run
        });
        drop(outcome);

        let score = |folds: &[Vec<Prediction>]| {
            let gold: Vec<usize> = folds.iter().flatten().map(|p| p.gold).collect();
            let pred: Vec<usize> = folds.iter().flatten().map(|p| p.pred).collect();
            strudel_eval::Evaluation::compute(&gold, &pred, ElementClass::COUNT)
        };
        let plain = score(&plain_all);
        let boosted = score(&boosted_all);
        let d = ElementClass::Derived.index();
        println!(
            "{dataset:<10}{:>16.3}{:>16.3}{:>14.3}{:>14.3}",
            plain.macro_f1(&[]),
            boosted.macro_f1(&[]),
            boosted.macro_f1(&[]) - plain.macro_f1(&[]),
            boosted.f1[d] - plain.f1[d]
        );
    }
    println!("\nPositive deltas support the paper's conjecture that column\nclassification can boost cell classification (§7).");
}
