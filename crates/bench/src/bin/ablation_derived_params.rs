//! §6.1.2 sensitivity check: the derived-cell detector's aggregation
//! delta `d` and coverage `c`. The paper reports "we do not observe a
//! substantial difference in the result with different values" and
//! settles on d = 0.1, c = 0.5. This binary sweeps both knobs on the
//! line task (where the detector feeds the `DerivedCoverage` feature) —
//! plus the min/max extension the conclusion proposes as future work —
//! and reports macro-F1 and derived-class F1.

use strudel::{DerivedConfig, LineFeatureConfig, StrudelLineConfig};
use strudel_bench::ExperimentArgs;
use strudel_eval::{run_cross_validation, Prediction};
use strudel_ml::ForestConfig;
use strudel_table::{ElementClass, LabeledFile};

fn main() {
    let args = ExperimentArgs::parse();
    let corpus = strudel_datagen::by_name("SAUS", &args.corpus_config("SAUS"));
    let cv = args.cv_config();
    println!(
        "Derived-detector parameter sweep (line task, SAUS, {} files)\n",
        corpus.files.len()
    );
    println!(
        "{:<10}{:<10}{:<10}{:>10}{:>12}",
        "delta", "coverage", "min/max", "macro-F1", "derived-F1"
    );

    let sweeps: [(f64, f64, bool); 7] = [
        (0.1, 0.5, false), // the paper's setting
        (0.01, 0.5, false),
        (1.0, 0.5, false),
        (0.1, 0.3, false),
        (0.1, 0.7, false),
        (0.1, 0.9, false),
        (0.1, 0.5, true), // future-work extension
    ];
    for (delta, coverage, min_max) in sweeps {
        let derived = DerivedConfig {
            delta,
            coverage,
            detect_min_max: min_max,
        };
        let config = StrudelLineConfig {
            features: LineFeatureConfig {
                derived,
                ..LineFeatureConfig::default()
            },
            forest: ForestConfig {
                n_trees: args.trees,
                seed: args.seed,
                ..ForestConfig::default()
            },
        };
        let mut fold = 0u64;
        let outcome = run_cross_validation(corpus.files.len(), &cv, |train_idx, test_idx| {
            fold += 1;
            let train: Vec<LabeledFile> =
                train_idx.iter().map(|&i| corpus.files[i].clone()).collect();
            let model = strudel::StrudelLine::fit(&train, &config);
            let mut preds = Vec::new();
            for &fi in test_idx {
                let file = &corpus.files[fi];
                let pred = model.predict(&file.table);
                for (r, (g, p)) in file.line_labels.iter().zip(&pred).enumerate() {
                    if let (Some(g), Some(p)) = (g, p) {
                        preds.push(Prediction {
                            file: fi,
                            item: r,
                            gold: g.index(),
                            pred: p.index(),
                        });
                    }
                }
            }
            preds
        });
        let eval = outcome.mean_evaluation(ElementClass::COUNT);
        println!(
            "{:<10}{:<10}{:<10}{:>10.3}{:>12.3}",
            delta,
            coverage,
            if min_max { "on" } else { "off" },
            eval.macro_f1(&[]),
            eval.f1[ElementClass::Derived.index()]
        );
    }
    println!("\nPaper: no substantial difference across d and c (Section 6.1.2).");
}
