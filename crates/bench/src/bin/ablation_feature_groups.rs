//! Feature-group ablation: the paper organises its features into
//! *content*, *contextual*, and *computational* groups (Tables 1–2) and
//! credits the computational `IsAggregation` cell feature with the
//! derived-class gains (Section 6.3.5, Figure 4). This binary retrains
//! the forests with feature groups disabled (columns held constant, so
//! the trees can never split on them) and reports the macro and
//! derived-class F1 deltas — for the line task (where row-anchored
//! derived detection is correlated with `AggregationWord`, so the
//! computational group is near-redundant) and for the cell task (where
//! column-anchored `IsAggregation` carries signal no other feature has).

use strudel::{CellFeatureConfig, LineFeatureConfig, StrudelCell, StrudelLine, StrudelLineConfig};
use strudel_bench::ExperimentArgs;
use strudel_eval::{grouped_k_folds, Evaluation};
use strudel_ml::{Classifier, Dataset, ForestConfig, RandomForest};
use strudel_table::{Corpus, ElementClass, LabeledFile};

/// Index ranges of the three feature groups in the line feature vector.
const LINE_GROUPS: [(&str, std::ops::Range<usize>); 3] = [
    ("content", 0..7),
    ("contextual", 7..13),
    ("computational", 13..14),
];

/// Index ranges of notable groups in the cell feature vector (Table 2).
const CELL_GROUPS: [(&str, std::ops::Range<usize>); 4] = [
    ("line probabilities", 7..13),
    ("neighbor profile", 20..36),
    ("block size", 19..20),
    ("computational", 36..37),
];

fn blank_group(data: &Dataset, range: &std::ops::Range<usize>) -> Dataset {
    let zeros = vec![0.0; data.n_samples()];
    let mut out = data.clone();
    for j in range.clone() {
        out = out.with_feature_replaced(j, &zeros);
    }
    out
}

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let merged = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    println!(
        "Feature-group ablation (line task, SAUS+CIUS+DeEx, {} files, {} folds)\n",
        merged.files.len(),
        args.folds
    );

    let folds = grouped_k_folds(merged.files.len(), args.folds, args.seed);
    let line_variants: Vec<(&str, Option<std::ops::Range<usize>>)> = std::iter::once(("all", None))
        .chain(LINE_GROUPS.iter().map(|(name, r)| (*name, Some(r.clone()))))
        .collect();
    let cell_variants: Vec<(&str, Option<std::ops::Range<usize>>)> = std::iter::once(("all", None))
        .chain(CELL_GROUPS.iter().map(|(name, r)| (*name, Some(r.clone()))))
        .collect();
    let mut line_evals: Vec<Vec<Evaluation>> = vec![Vec::new(); line_variants.len()];
    let mut cell_evals: Vec<Vec<Evaluation>> = vec![Vec::new(); cell_variants.len()];

    for test_fold in 0..args.folds {
        let train_files: Vec<LabeledFile> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != test_fold)
            .flat_map(|(_, f)| f.iter().map(|&i| merged.files[i].clone()))
            .collect();
        let test_files: Vec<LabeledFile> = folds[test_fold]
            .iter()
            .map(|&i| merged.files[i].clone())
            .collect();
        let forest_config = |salt: u64| ForestConfig {
            n_trees: args.trees,
            seed: args.seed ^ test_fold as u64 ^ salt,
            ..ForestConfig::default()
        };

        // --- line task ---
        let train = StrudelLine::build_dataset(&train_files, &LineFeatureConfig::default());
        let test = StrudelLine::build_dataset(&test_files, &LineFeatureConfig::default());
        for (slot, (_, range)) in line_variants.iter().enumerate() {
            let (train_v, test_v) = match range {
                None => (train.clone(), test.clone()),
                Some(r) => (blank_group(&train, r), blank_group(&test, r)),
            };
            let forest = RandomForest::fit(&train_v, &forest_config(0));
            let pred = forest.predict_all(&test_v);
            line_evals[slot].push(Evaluation::compute(
                test_v.targets(),
                &pred,
                ElementClass::COUNT,
            ));
        }

        // --- cell task (line model trained on the same fold's files) ---
        let line_model = StrudelLine::fit(
            &train_files,
            &StrudelLineConfig {
                forest: forest_config(1),
                ..StrudelLineConfig::default()
            },
        );
        let train =
            StrudelCell::build_dataset(&train_files, &line_model, &CellFeatureConfig::default());
        let test =
            StrudelCell::build_dataset(&test_files, &line_model, &CellFeatureConfig::default());
        for (slot, (_, range)) in cell_variants.iter().enumerate() {
            let (train_v, test_v) = match range {
                None => (train.clone(), test.clone()),
                Some(r) => (blank_group(&train, r), blank_group(&test, r)),
            };
            let forest = RandomForest::fit(&train_v, &forest_config(2));
            let pred = forest.predict_all(&test_v);
            cell_evals[slot].push(Evaluation::compute(
                test_v.targets(),
                &pred,
                ElementClass::COUNT,
            ));
        }
    }

    let print_block = |title: &str,
                       variants: &[(&str, Option<std::ops::Range<usize>>)],
                       evals: &[Vec<Evaluation>]| {
        println!("{title}");
        println!(
            "{:<26}{:>10}{:>12}{:>14}",
            "variant", "macro-F1", "derived-F1", "Δ derived-F1"
        );
        let full = Evaluation::mean(&evals[0]);
        for (slot, (name, range)) in variants.iter().enumerate() {
            let mean = Evaluation::mean(&evals[slot]);
            let d = ElementClass::Derived.index();
            let label = match range {
                None => "all features".to_string(),
                Some(_) => format!("without {name}"),
            };
            println!(
                "{label:<26}{:>10.3}{:>12.3}{:>14.3}",
                mean.macro_f1(&[]),
                mean.f1[d],
                mean.f1[d] - full.f1[d]
            );
        }
        println!();
    };
    print_block(
        "=== Line task (Table 1 groups) ===",
        &line_variants,
        &line_evals,
    );
    print_block(
        "=== Cell task (Table 2 groups) ===",
        &cell_variants,
        &cell_evals,
    );
    println!(
        "Reading the result: the content group carries most of the line task,\n\
         and the line-probability features carry the cell task's minority\n\
         classes. Removing the computational group often costs little *at the\n\
         group level* because the forest compensates with correlated keyword\n\
         and position features — permutation importance (figure4), which\n\
         measures what the fitted model actually uses, is the paper's\n\
         measurement and shows IsAggregation prominently for derived cells."
    );
}
