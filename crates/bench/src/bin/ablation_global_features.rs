//! §4 ablation: global file features. The paper tested four whole-file
//! features (empty-line percentage, width, length, empty-line blocks) and
//! found "no positive impact on the classification problem" — they were
//! dropped from Strudel^L. This binary reruns the line task with and
//! without them.

use strudel_bench::runners::run_line_cv;
use strudel_bench::{ExperimentArgs, LineAlgo};
use strudel_table::ElementClass;

fn main() {
    let args = ExperimentArgs::parse();
    let cv = args.cv_config();
    println!(
        "Global-feature ablation (line task): --files {} --scale {} --folds {} --repeats {} --trees {}\n",
        args.files, args.scale, args.folds, args.repeats, args.trees
    );
    println!(
        "{:<10}{:>22}{:>22}{:>9}",
        "Dataset", "macro-F1 (local only)", "macro-F1 (+global)", "delta"
    );
    for dataset in ["SAUS", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
        let local = run_line_cv(&corpus, LineAlgo::Strudel, &cv, args.trees)
            .mean_evaluation(ElementClass::COUNT)
            .macro_f1(&[]);
        let global = run_line_cv(&corpus, LineAlgo::StrudelGlobal, &cv, args.trees)
            .mean_evaluation(ElementClass::COUNT)
            .macro_f1(&[]);
        println!(
            "{dataset:<10}{local:>22.3}{global:>22.3}{:>9.3}",
            global - local
        );
    }
    println!("\nPaper: the global features show no positive impact (Section 4).");
}
