//! Post-processing ablation: does the Koci-style repair pass (related
//! work \[19\]) improve Strudel^C's predictions? Runs the cell task with
//! and without `strudel::repair_cells` under the same cross-validation
//! protocol and reports macro-F1 deltas per dataset.

use strudel::{repair_cells, RepairConfig, StrudelCell, StrudelCellConfig, StrudelLineConfig};
use strudel_bench::ExperimentArgs;
use strudel_eval::{run_cross_validation, Evaluation, Prediction};
use strudel_ml::ForestConfig;
use strudel_table::{ElementClass, LabeledFile};

fn main() {
    let args = ExperimentArgs::parse();
    let cv = args.cv_config();
    println!(
        "Post-processing repair ablation (cell task): --files {} --scale {} --folds {} --repeats {} --trees {}\n",
        args.files, args.scale, args.folds, args.repeats, args.trees
    );
    println!(
        "{:<10}{:>12}{:>12}{:>10}{:>14}",
        "Dataset", "plain", "repaired", "Δ", "cells fixed"
    );

    for dataset in ["SAUS", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig {
                    n_trees: args.trees,
                    seed: args.seed,
                    ..ForestConfig::default()
                },
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig {
                n_trees: args.trees,
                seed: args.seed ^ 0xC0FFEE,
                ..ForestConfig::default()
            },
            ..StrudelCellConfig::default()
        };

        let mut plain_folds: Vec<Vec<Prediction>> = Vec::new();
        let mut repaired_folds: Vec<Vec<Prediction>> = Vec::new();
        let mut total_fixed = 0usize;
        let outcome = run_cross_validation(corpus.files.len(), &cv, |train_idx, test_idx| {
            let train: Vec<LabeledFile> =
                train_idx.iter().map(|&i| corpus.files[i].clone()).collect();
            let model = StrudelCell::fit(&train, &config);
            let mut plain = Vec::new();
            let mut repaired = Vec::new();
            for &fi in test_idx {
                let file = &corpus.files[fi];
                let n_cols = file.table.n_cols();
                let mut cells = model.predict(&file.table);
                for p in &cells {
                    if let Some(g) = file.cell_labels[p.row][p.col] {
                        plain.push(Prediction {
                            file: fi,
                            item: p.row * n_cols + p.col,
                            gold: g.index(),
                            pred: p.class.index(),
                        });
                    }
                }
                let report = repair_cells(&file.table, &mut cells, &RepairConfig::default());
                total_fixed += report.total();
                for p in &cells {
                    if let Some(g) = file.cell_labels[p.row][p.col] {
                        repaired.push(Prediction {
                            file: fi,
                            item: p.row * n_cols + p.col,
                            gold: g.index(),
                            pred: p.class.index(),
                        });
                    }
                }
            }
            plain_folds.push(plain.clone());
            repaired_folds.push(repaired);
            plain
        });
        drop(outcome);

        let score = |folds: &[Vec<Prediction>]| {
            let gold: Vec<usize> = folds.iter().flatten().map(|p| p.gold).collect();
            let pred: Vec<usize> = folds.iter().flatten().map(|p| p.pred).collect();
            Evaluation::compute(&gold, &pred, ElementClass::COUNT)
        };
        let plain = score(&plain_folds).macro_f1(&[]);
        let repaired = score(&repaired_folds).macro_f1(&[]);
        println!(
            "{dataset:<10}{plain:>12.3}{repaired:>12.3}{:>10.3}{total_fixed:>14}",
            repaired - plain
        );
    }
    // Out-of-domain transfer (train SAUS+CIUS+DeEx → Troy): the setting
    // where the classifier is least confident, so the confidence-gated
    // rules actually fire.
    let parts: Vec<strudel_table::Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let train = strudel_table::Corpus::merged("train", &parts.iter().collect::<Vec<_>>());
    let troy = strudel_datagen::by_name("Troy", &args.corpus_config("Troy"));
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig {
                n_trees: args.trees,
                seed: args.seed,
                ..ForestConfig::default()
            },
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig {
            n_trees: args.trees,
            seed: args.seed ^ 0xC0FFEE,
            ..ForestConfig::default()
        },
        ..StrudelCellConfig::default()
    };
    let model = StrudelCell::fit(&train.files, &config);
    let mut plain = (Vec::new(), Vec::new());
    let mut repaired = (Vec::new(), Vec::new());
    let mut fixed = 0usize;
    for file in &troy.files {
        let mut cells = model.predict(&file.table);
        for p in &cells {
            if let Some(g) = file.cell_labels[p.row][p.col] {
                plain.0.push(g.index());
                plain.1.push(p.class.index());
            }
        }
        fixed += repair_cells(&file.table, &mut cells, &RepairConfig::default()).total();
        for p in &cells {
            if let Some(g) = file.cell_labels[p.row][p.col] {
                repaired.0.push(g.index());
                repaired.1.push(p.class.index());
            }
        }
    }
    let plain_f1 = Evaluation::compute(&plain.0, &plain.1, ElementClass::COUNT).macro_f1(&[]);
    let repaired_f1 =
        Evaluation::compute(&repaired.0, &repaired.1, ElementClass::COUNT).macro_f1(&[]);
    println!(
        "{:<10}{plain_f1:>12.3}{repaired_f1:>12.3}{:>10.3}{fixed:>14}",
        "Troy(ood)",
        repaired_f1 - plain_f1
    );

    println!(
        "\nMeasured finding: the confidence-gated pattern rules are safe (they\n\
         never flip a correct high-confidence prediction) but rarely fire —\n\
         Strudel's residual errors are either high-confidence (the forest is\n\
         confidently wrong on out-of-domain derived lines) or whole-line\n\
         errors, neither of which a lone-outlier/positional pattern catches.\n\
         This is consistent with the paper's pipeline not adopting a repair\n\
         pass: the patterns of Koci et al. [19] target weaker per-cell\n\
         classifiers than a line-probability-aware random forest."
    );
}
