//! Figure 1: the paper's motivating example — a real-world verbose CSV
//! file with cell-level and line-level content classes highlighted.
//!
//! This binary trains a quick model, rebuilds a CIUS-style file modeled
//! on the paper's Figure 1 (the "Crime in the US" drug-seizure table
//! with a `Sale/Manufacturing:` group section), and renders the detected
//! classes — with ANSI colors on a terminal, as bracketed tags otherwise
//! (`--plain` forces tags).

use strudel::{Strudel, StrudelCellConfig, StrudelLineConfig};
use strudel_ml::ForestConfig;
use strudel_table::ElementClass;

const FIGURE1_FILE: &str = "\
Table 29. Estimated number of arrests,,,
United States — drug abuse violations,,,
,,,
Drug type,2019,2020,Total
Sale/Manufacturing:,,,
Heroin or cocaine,\"1,204\",998,\"2,202\"
Marijuana,730,812,\"1,542\"
Synthetic narcotics,255,304,559
Total,\"2,189\",\"2,114\",\"4,303\"
,,,
1. Arrest totals are estimated.,,,
Source: Uniform Crime Reporting program.,,,
";

fn color(class: ElementClass) -> &'static str {
    match class {
        ElementClass::Metadata => "\x1b[36m", // cyan
        ElementClass::Header => "\x1b[34m",   // blue
        ElementClass::Group => "\x1b[35m",    // magenta
        ElementClass::Data => "\x1b[32m",     // green
        ElementClass::Derived => "\x1b[33m",  // yellow
        ElementClass::Notes => "\x1b[90m",    // grey
    }
}

fn main() {
    let plain = std::env::args().any(|a| a == "--plain");
    eprintln!("training a quick model on synthetic CIUS+SAUS ...");
    let a = strudel_datagen::cius(&strudel_datagen::GeneratorConfig {
        n_files: 32,
        seed: 42,
        scale: 0.25,
    });
    let b = strudel_datagen::saus(&strudel_datagen::GeneratorConfig {
        n_files: 32,
        seed: 43,
        scale: 0.25,
    });
    let train = strudel_table::Corpus::merged("train", &[&a, &b]);
    let config = StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig::fast(40, 0),
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig::fast(40, 1),
        ..StrudelCellConfig::default()
    };
    let model = Strudel::fit(&train.files, &config);
    let structure = model.detect_structure(FIGURE1_FILE);

    println!("Figure 1: detected cell classes (line class at the right)\n");
    if !plain {
        print!("legend: ");
        for class in ElementClass::ALL {
            print!("{}{}\x1b[0m  ", color(class), class.name());
        }
        println!("\n");
    }
    for r in 0..structure.table.n_rows() {
        let mut rendered: Vec<String> = Vec::new();
        for c in 0..structure.table.n_cols() {
            let raw = structure.table.cell(r, c).raw();
            if raw.is_empty() {
                rendered.push(String::new());
                continue;
            }
            let class = structure
                .cell_class(r, c)
                .expect("non-empty cell classified");
            rendered.push(if plain {
                format!("[{}]{raw}", &class.name()[..1])
            } else {
                format!("{}{raw}\x1b[0m", color(class))
            });
        }
        let line_label = structure.lines[r].map_or("", |c| c.name());
        println!("{:<76}| {line_label}", rendered.join(" , "));
    }
    println!(
        "\nAs in the paper's Figure 1: the line class is the majority of its cell\n\
         classes; the leading 'Total'/'Sale/Manufacturing:' cells of aggregate\n\
         lines are group cells, not derived ones."
    );
}
