//! Figure 3: ensemble confusion matrices of Strudel^L (top) and
//! Strudel^C (bottom) per dataset, built from repeated cross-validation
//! with per-element majority voting (ties toward the rarer class) and
//! row-normalised by per-class instance counts.
//!
//! Shape to reproduce (paper): derived is the hardest class everywhere
//! and its errors flow to `data` (e.g. GovUK .368 derived→data line
//! share, CIUS cell .660 derived→data); minority-class errors generally
//! lean toward data; non-data classes rarely confuse with each other.

use strudel_bench::printing::confusion_block;
use strudel_bench::runners::{run_cell_cv, run_line_cv};
use strudel_bench::{CellAlgo, ExperimentArgs, LineAlgo};
use strudel_table::ElementClass;

fn main() {
    let args = ExperimentArgs::parse();
    let cv = args.cv_config();
    println!(
        "Figure 3: --files {} --scale {} --folds {} --repeats {} --trees {}\n",
        args.files, args.scale, args.folds, args.repeats, args.trees
    );

    println!("=== Strudel^L line confusion (Figure 3 top) ===\n");
    for dataset in ["GovUK", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
        let outcome = run_line_cv(&corpus, LineAlgo::Strudel, &cv, args.trees);
        let matrix = outcome.ensemble_confusion(ElementClass::COUNT);
        println!("{}", confusion_block(dataset, &matrix));
    }

    println!("=== Strudel^C cell confusion (Figure 3 bottom) ===\n");
    for dataset in ["SAUS", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
        let outcome = run_cell_cv(&corpus, CellAlgo::Strudel, &cv, args.trees);
        let matrix = outcome.ensemble_confusion(ElementClass::COUNT);
        println!("{}", confusion_block(dataset, &matrix));
    }
}
