//! Figure 4: permutation feature importance of Strudel^L (top) and
//! Strudel^C (bottom), trained on the SAUS + CIUS + DeEx collection,
//! decomposed one-vs-rest per class, five permutation repeats, rendered
//! as importance shares.
//!
//! Shape to reproduce (paper): the line-probability features dominate for
//! notes/metadata/header cells; column emptiness and position matter most
//! for group; the IsAggregation computational feature and the
//! column-keyword feature drive derived; neighbour-profile features are
//! grouped into value-length and data-type aggregates.

use strudel::{
    CellFeatureConfig, LineFeatureConfig, StrudelCell, StrudelLine, StrudelLineConfig,
    CELL_FEATURE_NAMES, LINE_FEATURE_NAMES,
};
use strudel_bench::printing::importance_block;
use strudel_bench::ExperimentArgs;
use strudel_eval::{importance_shares, per_class_importance};
use strudel_ml::{Dataset, ForestConfig, RandomForest};
use strudel_table::{Corpus, ElementClass};

/// Fold the 16 neighbour-profile features into two aggregates for the
/// display, as the paper does ("we grouped all neighbor profile features
/// into neighbor value length and neighbor data type").
fn grouped_cell_importances(raw: &[f64]) -> (Vec<&'static str>, Vec<f64>) {
    let mut names: Vec<&'static str> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut nvl = 0.0;
    let mut ndt = 0.0;
    for (j, &name) in CELL_FEATURE_NAMES.iter().enumerate() {
        if name.starts_with("NeighborValueLength") {
            nvl += raw[j].max(0.0);
        } else if name.starts_with("NeighborDataType") {
            ndt += raw[j].max(0.0);
        } else {
            names.push(name);
            values.push(raw[j]);
        }
    }
    names.push("NeighborValueLength(8)");
    values.push(nvl);
    names.push("NeighborDataType(8)");
    values.push(ndt);
    (names, values)
}

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let merged = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    println!(
        "Figure 4: permutation feature importance on SAUS+CIUS+DeEx ({} files), --trees {}\n",
        merged.files.len(),
        args.trees
    );
    let forest = |seed: u64| ForestConfig {
        n_trees: args.trees,
        seed,
        ..ForestConfig::default()
    };

    // --- Strudel^L ---
    println!("=== Strudel^L line features (Figure 4 top) ===\n");
    let line_data = StrudelLine::build_dataset(&merged.files, &LineFeatureConfig::default());
    let importances = per_class_importance(&line_data, 5, args.seed, |binary: &Dataset| {
        RandomForest::fit(binary, &forest(args.seed))
    });
    for class in ElementClass::ALL {
        let shares = importance_shares(&importances[class.index()]);
        println!(
            "{}",
            importance_block(class, &LINE_FEATURE_NAMES, &shares, 0.05)
        );
    }

    // --- impurity vs permutation (why the paper picked permutation) ---
    println!("=== Impurity vs permutation importance (line model) ===\n");
    let full_forest = RandomForest::fit(&line_data, &forest(args.seed ^ 7));
    let impurity = full_forest
        .impurity_importances()
        .expect("freshly trained forest carries importances");
    let permutation = strudel_eval::permutation_importance(&full_forest, &line_data, 5, args.seed);
    let perm_shares = importance_shares(&permutation);
    println!("{:<30}{:>12}{:>14}", "feature", "impurity", "permutation");
    let mut order: Vec<usize> = (0..LINE_FEATURE_NAMES.len()).collect();
    order.sort_by(|&a, &b| impurity[b].total_cmp(&impurity[a]));
    for j in order {
        println!(
            "{:<30}{:>12.3}{:>14.3}",
            LINE_FEATURE_NAMES[j], impurity[j], perm_shares[j]
        );
    }
    println!(
        "\nImpurity importance inflates high-cardinality continuous features\n\
         relative to low-cardinality ones like AggregationWord — the bias\n\
         for which the paper selects permutation importance (Section 6.3.5).\n"
    );

    // --- Strudel^C ---
    println!("=== Strudel^C cell features (Figure 4 bottom) ===\n");
    let line_model = StrudelLine::fit(
        &merged.files,
        &StrudelLineConfig {
            forest: forest(args.seed ^ 1),
            ..StrudelLineConfig::default()
        },
    );
    let cell_data =
        StrudelCell::build_dataset(&merged.files, &line_model, &CellFeatureConfig::default());
    let importances = per_class_importance(&cell_data, 5, args.seed, |binary: &Dataset| {
        RandomForest::fit(binary, &forest(args.seed ^ 2))
    });
    for class in ElementClass::ALL {
        let (names, grouped) = grouped_cell_importances(&importances[class.index()]);
        let shares = importance_shares(&grouped);
        println!("{}", importance_block(class, &names, &shares, 0.05));
    }
}
