//! Table 3: percentage of lines per cell-class diversity degree on SAUS,
//! CIUS, and DeEx.
//!
//! Paper reference: degree 1 dominates (86.3 / 88.7 / 95.3 %), degree 2
//! is a small share, degree ≥ 3 is negligible.

use strudel_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    println!("Table 3: percentage of lines under different diversity degrees");
    println!(
        "(--files {} --scale {} --seed {})\n",
        args.files, args.scale, args.seed
    );
    println!(
        "{:<10}{:>9}{:>9}{:>9}{:>9}{:>9}",
        "Dataset", "1", "2", "3", "4", "5"
    );
    for name in ["SAUS", "CIUS", "DeEx"] {
        let corpus = strudel_datagen::by_name(name, &args.corpus_config(name));
        let stats = corpus.stats();
        print!("{name:<10}");
        for degree in 1..=5 {
            print!("{:>8.1}%", stats.diversity_pct(degree));
        }
        println!();
    }
    println!("\nPaper: SAUS 86.3/13.7/0/0/0, CIUS 88.7/11.2/0.1/0/0, DeEx 95.3/4.6/0.1/0/0");
}
