//! Table 4: corpus summary — files, non-empty lines, non-empty cells for
//! all six datasets.
//!
//! Paper reference: GovUK 226/97,212/1,382,704; SAUS 223/11,598/157,767;
//! CIUS 269/34,556/367,172; DeEx 444/77,852/784,229;
//! Mendeley 62/195,598/1,359,810; Troy 200/4,348/23,077.

use strudel_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    println!("Table 4: dataset summary");
    println!(
        "(--files {} --scale {} --seed {}; use --paper for Table 4 file counts)\n",
        args.files, args.scale, args.seed
    );
    println!(
        "{:<10}{:>9}{:>12}{:>14}",
        "Dataset", "# files", "# lines", "# cells"
    );
    for name in ["GovUK", "SAUS", "CIUS", "DeEx", "Mendeley", "Troy"] {
        let corpus = strudel_datagen::by_name(name, &args.corpus_config(name));
        let stats = corpus.stats();
        println!(
            "{name:<10}{:>9}{:>12}{:>14}",
            stats.n_files, stats.n_lines, stats.n_cells
        );
    }
}
