//! Table 5: lines, cells, and cells-per-line for each class over the
//! SAUS + CIUS + DeEx collection.
//!
//! Paper reference: data dominates (114,354 of 124,006 lines); derived
//! lines are wide (54.76 cells/line, driven by derived columns inside
//! data lines); metadata and notes are narrow (≈1.1–1.2 cells/line).

use strudel_bench::ExperimentArgs;
use strudel_table::{Corpus, ElementClass};

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let merged = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    let stats = merged.stats();

    println!("Table 5: lines / cells per class (SAUS + CIUS + DeEx)");
    println!(
        "(--files {} --scale {} --seed {})\n",
        args.files, args.scale, args.seed
    );
    println!(
        "{:<10}{:>10}{:>12}{:>16}",
        "class", "# lines", "# cells", "# cells/line"
    );
    for class in ElementClass::ALL {
        println!(
            "{:<10}{:>10}{:>12}{:>16.2}",
            class.name(),
            stats.lines_per_class[class.index()],
            stats.cells_per_class[class.index()],
            stats.cells_per_line(class)
        );
    }
    let total_lines: usize = stats.lines_per_class.iter().sum();
    let total_cells: usize = stats.cells_per_class.iter().sum();
    println!(
        "{:<10}{:>10}{:>12}{:>16}",
        "Overall", total_lines, total_cells, "-"
    );
}
