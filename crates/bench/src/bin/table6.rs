//! Table 6: the comparative evaluation.
//!
//! Top — line classification: CRF^L vs Pytheas^L vs Strudel^L on GovUK,
//! SAUS, CIUS, DeEx. Bottom — cell classification: Line^C vs RNN^C vs
//! Strudel^C on SAUS, CIUS, DeEx. File-grouped repeated k-fold CV,
//! repetition-averaged per-class F1, accuracy, macro-average. Pytheas^L
//! cannot predict `derived`; derived lines are excluded from its
//! measurement, as in the paper.
//!
//! Shape to reproduce (paper values): Strudel^L leads the macro average
//! on every dataset (.751/.899/.960/.710); Strudel^C leads the cell task
//! (.890/.884/.700); Pytheas collapses on minority classes outside SAUS;
//! derived is the hardest class throughout.

use strudel_bench::printing::{f1_header, f1_row, support_row};
use strudel_bench::runners::{pytheas_exclusions, run_cell_cv, run_line_cv};
use strudel_bench::{CellAlgo, ExperimentArgs, LineAlgo};
use strudel_eval::Prediction;
use strudel_table::ElementClass;

fn main() {
    let args = ExperimentArgs::parse();
    let cv = args.cv_config();
    println!(
        "Table 6 ({} task): --files {} --scale {} --folds {} --repeats {} --trees {}\n",
        args.task, args.files, args.scale, args.folds, args.repeats, args.trees
    );

    if args.task == "line" || args.task == "both" {
        println!("=== Line classification (Table 6 top) ===");
        for dataset in ["GovUK", "SAUS", "CIUS", "DeEx"] {
            let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
            println!("\n{}", f1_header(dataset));
            let mut support = vec![0usize; ElementClass::COUNT];
            let mut crf_preds: Vec<Prediction> = Vec::new();
            let mut strudel_preds: Vec<Prediction> = Vec::new();
            for algo in [LineAlgo::Crf, LineAlgo::Pytheas, LineAlgo::Strudel] {
                let outcome = run_line_cv(&corpus, algo, &cv, args.trees);
                match algo {
                    LineAlgo::Crf => crf_preds = outcome.per_repeat[0].clone(),
                    LineAlgo::Strudel => strudel_preds = outcome.per_repeat[0].clone(),
                    _ => {}
                }
                let exclude = if algo == LineAlgo::Pytheas {
                    pytheas_exclusions()
                } else {
                    Vec::new()
                };
                let outcome = if algo == LineAlgo::Pytheas {
                    filter_gold(outcome, &exclude)
                } else {
                    outcome
                };
                let eval = outcome.mean_evaluation(ElementClass::COUNT);
                if algo == LineAlgo::Strudel {
                    for (c, s) in support.iter_mut().zip(&eval.support) {
                        *c = s / cv.repeats.max(1);
                    }
                }
                println!("{}", f1_row(algo.name(), &eval, &exclude));
            }
            println!("{}", support_row("# lines", &support));

            // Paired randomisation test: Strudel^L vs CRF^L on the same
            // elements of the first repetition.
            let key = |p: &Prediction| (p.file, p.item);
            crf_preds.sort_by_key(key);
            strudel_preds.sort_by_key(key);
            let gold: Vec<usize> = strudel_preds.iter().map(|p| p.gold).collect();
            let a: Vec<usize> = strudel_preds.iter().map(|p| p.pred).collect();
            let b: Vec<usize> = crf_preds.iter().map(|p| p.pred).collect();
            let test = strudel_eval::paired_randomization_test(&gold, &a, &b, 2000, args.seed);
            println!(
                "Strudel^L vs CRF^L accuracy diff {:+.4} (paired randomisation p ≈ {:.3})",
                test.observed_diff, test.p_value
            );
        }
    }

    if args.task == "cell" || args.task == "both" {
        println!("\n=== Cell classification (Table 6 bottom) ===");
        for dataset in ["SAUS", "CIUS", "DeEx"] {
            let corpus = strudel_datagen::by_name(dataset, &args.corpus_config(dataset));
            println!("\n{}", f1_header(dataset));
            let mut support = vec![0usize; ElementClass::COUNT];
            for algo in [CellAlgo::LineC, CellAlgo::Rnn, CellAlgo::Strudel] {
                let outcome = run_cell_cv(&corpus, algo, &cv, args.trees);
                let eval = outcome.mean_evaluation(ElementClass::COUNT);
                if algo == CellAlgo::Strudel {
                    for (c, s) in support.iter_mut().zip(&eval.support) {
                        *c = s / cv.repeats.max(1);
                    }
                }
                println!("{}", f1_row(algo.name(), &eval, &[]));
            }
            println!("{}", support_row("# cells", &support));
        }
    }
}

/// Drop predictions whose gold class is excluded (Pytheas scoring).
fn filter_gold(mut outcome: strudel_eval::CvOutcome, exclude: &[usize]) -> strudel_eval::CvOutcome {
    for preds in &mut outcome.per_repeat {
        preds.retain(|p: &Prediction| !exclude.contains(&p.gold));
    }
    outcome
}
