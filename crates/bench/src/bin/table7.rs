//! Table 7: out-of-domain generalisation — train Strudel on
//! SAUS + CIUS + DeEx, test on the unseen Troy dataset (line and cell
//! tasks).
//!
//! Shape to reproduce (paper values): metadata/header/data/notes transfer
//! well (line F1 .935/.798/.937/.971), while group and especially derived
//! collapse (derived line F1 .070; cell F1 .216) because Troy's derived
//! lines carry no anchoring keywords.

use strudel_bench::printing::{f1_header, f1_row};
use strudel_bench::runners::transfer_experiment;
use strudel_bench::ExperimentArgs;
use strudel_eval::Evaluation;
use strudel_table::{Corpus, ElementClass};

fn main() {
    let args = ExperimentArgs::parse();
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let train = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    let test = strudel_datagen::by_name("Troy", &args.corpus_config("Troy"));

    println!(
        "Table 7: train SAUS+CIUS+DeEx ({} files), test Troy ({} files), --trees {}\n",
        train.files.len(),
        test.files.len(),
        args.trees
    );

    let (lines, cells) = transfer_experiment(&train, &test, args.trees, args.seed);
    let line_eval = Evaluation::compute(
        &lines.iter().map(|p| p.gold).collect::<Vec<_>>(),
        &lines.iter().map(|p| p.pred).collect::<Vec<_>>(),
        ElementClass::COUNT,
    );
    let cell_eval = Evaluation::compute(
        &cells.iter().map(|p| p.gold).collect::<Vec<_>>(),
        &cells.iter().map(|p| p.pred).collect::<Vec<_>>(),
        ElementClass::COUNT,
    );

    println!("{}", f1_header("Troy"));
    println!("{}", f1_row("Strudel^L", &line_eval, &[]));
    println!("{}", f1_row("Strudel^C", &cell_eval, &[]));
    println!("\n# lines per class: {:?}", line_eval.support);
    println!("# cells per class: {:?}", cell_eval.support);
    println!("\nPaper (line): metadata .935 header .798 group .667 data .937 derived .070 notes .971, macro .730");
    println!("Paper (cell): metadata .921 header .840 group .232 data .936 derived .216 notes .952, macro .683");
}
