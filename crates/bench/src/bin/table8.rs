//! Table 8: plain-text transfer — train Strudel on SAUS + CIUS + DeEx,
//! test on the Mendeley plain-text corpus (line and cell tasks).
//!
//! Shape to reproduce (paper values): data is near-perfect (.999) because
//! the corpus is data-dominated, while all minority classes drop sharply
//! (metadata line F1 .623 but *cell* F1 .245 due to fragmented prose;
//! derived nearly vanishes), giving macro averages of .517 (lines) and
//! .435 (cells).

use strudel_bench::printing::{f1_header, f1_row};
use strudel_bench::runners::transfer_experiment;
use strudel_bench::ExperimentArgs;
use strudel_eval::Evaluation;
use strudel_table::{Corpus, ElementClass};

fn main() {
    let mut args = ExperimentArgs::parse();
    // Mendeley files are enormous (≈3,000 lines at scale 1); the default
    // experiment uses a smaller slice of them unless --paper is given.
    if !args.paper && args.files == ExperimentArgs::default().files {
        args.files = 12;
    }
    let parts: Vec<Corpus> = ["SAUS", "CIUS", "DeEx"]
        .iter()
        .map(|n| strudel_datagen::by_name(n, &args.corpus_config(n)))
        .collect();
    let train = Corpus::merged("SAUS+CIUS+DeEx", &parts.iter().collect::<Vec<_>>());
    let mut cfg = args.corpus_config("Mendeley");
    if !args.paper {
        cfg.n_files = args.files.min(20);
    }
    let test = strudel_datagen::by_name("Mendeley", &cfg);

    println!(
        "Table 8: train SAUS+CIUS+DeEx ({} files), test Mendeley ({} files), --trees {}\n",
        train.files.len(),
        test.files.len(),
        args.trees
    );

    let (lines, cells) = transfer_experiment(&train, &test, args.trees, args.seed);
    let line_eval = Evaluation::compute(
        &lines.iter().map(|p| p.gold).collect::<Vec<_>>(),
        &lines.iter().map(|p| p.pred).collect::<Vec<_>>(),
        ElementClass::COUNT,
    );
    let cell_eval = Evaluation::compute(
        &cells.iter().map(|p| p.gold).collect::<Vec<_>>(),
        &cells.iter().map(|p| p.pred).collect::<Vec<_>>(),
        ElementClass::COUNT,
    );

    println!("{}", f1_header("Mendeley"));
    println!("{}", f1_row("Strudel^L", &line_eval, &[]));
    println!("{}", f1_row("Strudel^C", &cell_eval, &[]));
    println!("\n# lines per class: {:?}", line_eval.support);
    println!("# cells per class: {:?}", cell_eval.support);
    println!("\nPaper (line): metadata .623 header .406 group .263 data .999 derived .364 notes .448, macro .517");
    println!("Paper (cell): metadata .245 header .629 group .303 data .999 derived .051 notes .380, macro .435");
}
