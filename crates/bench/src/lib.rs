//! # strudel-bench
//!
//! Experiment drivers reproducing every table and figure of the Strudel
//! paper's evaluation (Section 6). Each binary regenerates one artifact:
//!
//! | target | artifact |
//! |---|---|
//! | `table3` | line diversity degrees (Table 3) |
//! | `table4` | corpus summary (Table 4) |
//! | `table5` | class distribution (Table 5) |
//! | `table6` | line & cell classification comparison (Table 6) |
//! | `table7` | out-of-domain Troy transfer (Table 7) |
//! | `table8` | plain-text Mendeley transfer (Table 8) |
//! | `figure3` | ensemble confusion matrices (Figure 3) |
//! | `figure4` | permutation feature importance (Figure 4) |
//! | `ablation_classifier` | RF vs NB vs kNN vs logistic backbone (§6.1.2) |
//! | `ablation_global_features` | global line features have no impact (§4) |
//! | `scalability` (Criterion bench) | runtime vs file size (§6.3.4) |
//!
//! This library crate holds the shared runners: corpus construction at a
//! chosen experiment scale, line-task and cell-task cross-validation for
//! every algorithm, and the plain-text report printers.

pub mod args;
pub mod printing;
pub mod runners;

pub use args::ExperimentArgs;
pub use runners::{CellAlgo, LineAlgo};
