//! Plain-text report printers matching the paper's table layouts.

use strudel_eval::{ConfusionMatrix, Evaluation};
use strudel_table::ElementClass;

/// Header row of a per-class F1 table (Table 6 layout).
pub fn f1_header(first_column: &str) -> String {
    let mut out = format!("{first_column:<18}");
    for class in ElementClass::ALL {
        out.push_str(&format!("{:>9}", class.name()));
    }
    out.push_str(&format!("{:>10}{:>11}", "accuracy", "macro-avg"));
    out
}

/// One row of a per-class F1 table. `exclude` marks classes printed as
/// `-` and left out of the macro average (Pytheas' `derived`).
pub fn f1_row(label: &str, eval: &Evaluation, exclude: &[usize]) -> String {
    let mut out = format!("{label:<18}");
    for class in ElementClass::ALL {
        if exclude.contains(&class.index()) {
            out.push_str(&format!("{:>9}", "-"));
        } else {
            out.push_str(&format!("{:>9.3}", eval.f1[class.index()]));
        }
    }
    out.push_str(&format!(
        "{:>10.3}{:>11.3}",
        eval.accuracy,
        eval.macro_f1(exclude)
    ));
    out
}

/// Support row (`# lines` / `# cells`) of the Table 6 layout.
pub fn support_row(label: &str, support: &[usize]) -> String {
    let mut out = format!("{label:<18}");
    for class in ElementClass::ALL {
        out.push_str(&format!("{:>9}", support[class.index()]));
    }
    out.push_str(&format!("{:>10}{:>11}", "-", "-"));
    out
}

/// Render a row-normalised confusion matrix (Figure 3 layout).
pub fn confusion_block(title: &str, matrix: &ConfusionMatrix) -> String {
    let mut out = format!("{title}\n{:<10}", "gold\\pred");
    for class in ElementClass::ALL {
        out.push_str(&format!("{:>9}", class.name()));
    }
    out.push('\n');
    for (g, row) in matrix.normalized().iter().enumerate() {
        out.push_str(&format!("{:<10}", ElementClass::from_index(g).name()));
        for v in row {
            out.push_str(&format!("{v:>9.3}"));
        }
        out.push('\n');
    }
    out
}

/// Render one class's importance shares as a sorted bar list (Figure 4
/// view), listing features above `threshold`.
pub fn importance_block(
    class: ElementClass,
    names: &[&str],
    shares: &[f64],
    threshold: f64,
) -> String {
    let mut ranked: Vec<(usize, f64)> = shares.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = format!("{}\n", class.name());
    for (j, share) in ranked {
        if share < threshold {
            break;
        }
        let bar = "#".repeat((share * 50.0).round() as usize);
        out.push_str(&format!(
            "  {:<28}{:>6.1}% {}\n",
            names[j],
            share * 100.0,
            bar
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_table_layout() {
        let eval = Evaluation::compute(&[0, 3, 3], &[0, 3, 3], 6);
        let header = f1_header("SAUS");
        let row = f1_row("Strudel^L", &eval, &[]);
        assert!(header.contains("metadata"));
        assert!(header.contains("macro-avg"));
        assert!(row.contains("1.000"));
        // Columns align: header and row have equal length.
        assert_eq!(header.len(), row.len());
    }

    #[test]
    fn excluded_class_prints_dash() {
        let eval = Evaluation::compute(&[0], &[0], 6);
        let row = f1_row("Pytheas^L", &eval, &[4]);
        assert!(row.contains('-'));
    }

    #[test]
    fn confusion_block_contains_all_classes() {
        let mut m = ConfusionMatrix::new(6);
        m.add(3, 3);
        let block = confusion_block("SAUS", &m);
        assert!(block.contains("derived"));
        assert!(block.contains("1.000"));
    }

    #[test]
    fn importance_block_sorts_and_filters() {
        let names = ["A", "B", "C"];
        let block = importance_block(ElementClass::Data, &names, &[0.1, 0.7, 0.2], 0.15);
        let b_pos = block.find('B').unwrap();
        let c_pos = block.find('C').unwrap();
        assert!(b_pos < c_pos);
        assert!(!block.contains("A "));
    }
}
