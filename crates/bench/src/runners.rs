//! Shared experiment runners: train/test and cross-validation execution
//! for every line and cell algorithm of the evaluation.

use strudel::baselines::{
    CrfLine, CrfLineConfig, LineCell, PytheasConfig, PytheasLine, RnnCell, RnnCellConfig,
};
use strudel::{StrudelCell, StrudelCellConfig, StrudelLine, StrudelLineConfig};
use strudel_eval::{run_cross_validation, CvConfig, CvOutcome, Prediction};
use strudel_ml::ForestConfig;
use strudel_table::{Corpus, ElementClass, LabeledFile};

type LinePredictor = Box<dyn Fn(&LabeledFile) -> Vec<Option<ElementClass>>>;
type CellPredictor = Box<dyn Fn(&LabeledFile) -> Vec<strudel::CellPrediction>>;

/// The line-classification algorithms of Table 6 (top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineAlgo {
    /// `CRF^L` (Adelfio & Samet).
    Crf,
    /// `Pytheas^L` (Christodoulakis et al.). Cannot predict `derived`;
    /// score it with [`pytheas_exclusions`].
    Pytheas,
    /// `Strudel^L` (this paper).
    Strudel,
    /// `Strudel^L` including the global file features (the §4 ablation).
    StrudelGlobal,
}

impl LineAlgo {
    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            LineAlgo::Crf => "CRF^L",
            LineAlgo::Pytheas => "Pytheas^L",
            LineAlgo::Strudel => "Strudel^L",
            LineAlgo::StrudelGlobal => "Strudel^L+global",
        }
    }
}

/// The cell-classification algorithms of Table 6 (bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAlgo {
    /// `Line^C`: broadcast the line prediction to cells.
    LineC,
    /// `RNN^C` stand-in (Ghasemi-Gol et al.).
    Rnn,
    /// `Strudel^C` (this paper).
    Strudel,
}

impl CellAlgo {
    /// Display name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            CellAlgo::LineC => "Line^C",
            CellAlgo::Rnn => "RNN^C",
            CellAlgo::Strudel => "Strudel^C",
        }
    }
}

/// Class indices to exclude when scoring Pytheas (it has no `derived`
/// class; the paper leaves derived lines out of its measurements).
pub fn pytheas_exclusions() -> Vec<usize> {
    vec![ElementClass::Derived.index()]
}

fn strudel_line_config(trees: usize, seed: u64, global: bool) -> StrudelLineConfig {
    let mut config = StrudelLineConfig::default();
    config.features.include_global = global;
    config.forest = ForestConfig {
        n_trees: trees,
        seed,
        ..ForestConfig::default()
    };
    config
}

/// Fit `algo` on `train` and predict line classes for each `(index,
/// file)` in `test`; returns one [`Prediction`] per labeled line.
pub fn train_test_line(
    algo: LineAlgo,
    train: &[LabeledFile],
    test: &[(usize, &LabeledFile)],
    trees: usize,
    seed: u64,
) -> Vec<Prediction> {
    let predict: LinePredictor = match algo {
        LineAlgo::Strudel | LineAlgo::StrudelGlobal => {
            let model = StrudelLine::fit(
                train,
                &strudel_line_config(trees, seed, algo == LineAlgo::StrudelGlobal),
            );
            Box::new(move |file| model.predict(&file.table))
        }
        LineAlgo::Crf => {
            let model = CrfLine::fit(
                train,
                &CrfLineConfig {
                    seed,
                    ..CrfLineConfig::default()
                },
            );
            Box::new(move |file| model.predict(&file.table))
        }
        LineAlgo::Pytheas => {
            let model = PytheasLine::fit(train, &PytheasConfig::default());
            Box::new(move |file| model.predict(&file.table))
        }
    };

    let mut out = Vec::new();
    for &(file_idx, file) in test {
        let pred = predict(file);
        for (r, (label, pred_r)) in file.line_labels.iter().zip(&pred).enumerate() {
            let Some(gold) = label else {
                continue;
            };
            // Every labeled line receives a prediction (the classifiers
            // label all non-empty lines); default to `data` defensively.
            let p = pred_r.unwrap_or(ElementClass::Data);
            out.push(Prediction {
                file: file_idx,
                item: r,
                gold: gold.index(),
                pred: p.index(),
            });
        }
    }
    out
}

/// Fit `algo` on `train` and predict cell classes for each `(index,
/// file)` in `test`; returns one [`Prediction`] per labeled cell.
pub fn train_test_cell(
    algo: CellAlgo,
    train: &[LabeledFile],
    test: &[(usize, &LabeledFile)],
    trees: usize,
    seed: u64,
) -> Vec<Prediction> {
    let predict: CellPredictor = match algo {
        CellAlgo::Strudel => {
            let config = StrudelCellConfig {
                line: strudel_line_config(trees, seed, false),
                forest: ForestConfig {
                    n_trees: trees,
                    seed: seed ^ 0xC0FFEE,
                    ..ForestConfig::default()
                },
                ..StrudelCellConfig::default()
            };
            let model = StrudelCell::fit(train, &config);
            Box::new(move |file| model.predict(&file.table))
        }
        CellAlgo::LineC => {
            let model = LineCell::fit(train, &strudel_line_config(trees, seed, false));
            Box::new(move |file| model.predict(&file.table))
        }
        CellAlgo::Rnn => {
            let mut config = RnnCellConfig::default();
            config.mlp.seed = seed;
            let model = RnnCell::fit(train, &config);
            Box::new(move |file| model.predict(&file.table))
        }
    };

    let mut out = Vec::new();
    for &(file_idx, file) in test {
        let n_cols = file.table.n_cols();
        for p in predict(file) {
            let Some(gold) = file.cell_labels[p.row][p.col] else {
                continue;
            };
            out.push(Prediction {
                file: file_idx,
                item: p.row * n_cols + p.col,
                gold: gold.index(),
                pred: p.class.index(),
            });
        }
    }
    out
}

/// File-grouped repeated cross-validation of a line algorithm.
pub fn run_line_cv(corpus: &Corpus, algo: LineAlgo, cv: &CvConfig, trees: usize) -> CvOutcome {
    let mut fold_counter = 0u64;
    run_cross_validation(corpus.files.len(), cv, |train_idx, test_idx| {
        fold_counter += 1;
        let train: Vec<LabeledFile> = train_idx.iter().map(|&i| corpus.files[i].clone()).collect();
        let test: Vec<(usize, &LabeledFile)> =
            test_idx.iter().map(|&i| (i, &corpus.files[i])).collect();
        train_test_line(algo, &train, &test, trees, cv.seed ^ fold_counter)
    })
}

/// File-grouped repeated cross-validation of a cell algorithm.
pub fn run_cell_cv(corpus: &Corpus, algo: CellAlgo, cv: &CvConfig, trees: usize) -> CvOutcome {
    let mut fold_counter = 0u64;
    run_cross_validation(corpus.files.len(), cv, |train_idx, test_idx| {
        fold_counter += 1;
        let train: Vec<LabeledFile> = train_idx.iter().map(|&i| corpus.files[i].clone()).collect();
        let test: Vec<(usize, &LabeledFile)> =
            test_idx.iter().map(|&i| (i, &corpus.files[i])).collect();
        train_test_cell(algo, &train, &test, trees, cv.seed ^ fold_counter)
    })
}

/// Train on one corpus, test on another (Tables 7 and 8): returns the
/// line-task and cell-task predictions.
pub fn transfer_experiment(
    train: &Corpus,
    test: &Corpus,
    trees: usize,
    seed: u64,
) -> (Vec<Prediction>, Vec<Prediction>) {
    let test_refs: Vec<(usize, &LabeledFile)> = test.files.iter().enumerate().collect();
    let lines = train_test_line(LineAlgo::Strudel, &train.files, &test_refs, trees, seed);
    let cells = train_test_cell(CellAlgo::Strudel, &train.files, &test_refs, trees, seed);
    (lines, cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_datagen::{saus, GeneratorConfig};

    fn small_corpus() -> Corpus {
        saus(&GeneratorConfig {
            n_files: 10,
            seed: 3,
            scale: 0.2,
        })
    }

    #[test]
    fn line_cv_produces_one_prediction_per_labeled_line() {
        let corpus = small_corpus();
        let cv = CvConfig {
            k: 5,
            repeats: 1,
            seed: 1,
        };
        let outcome = run_line_cv(&corpus, LineAlgo::Strudel, &cv, 8);
        let expected: usize = corpus
            .files
            .iter()
            .map(|f| f.line_labels.iter().flatten().count())
            .sum();
        assert_eq!(outcome.per_repeat[0].len(), expected);
        let eval = outcome.mean_evaluation(ElementClass::COUNT);
        assert!(eval.accuracy > 0.6, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn cell_cv_runs_for_every_algorithm() {
        let corpus = small_corpus();
        let cv = CvConfig {
            k: 5,
            repeats: 1,
            seed: 2,
        };
        for algo in [CellAlgo::LineC, CellAlgo::Strudel] {
            let outcome = run_cell_cv(&corpus, algo, &cv, 8);
            let eval = outcome.mean_evaluation(ElementClass::COUNT);
            assert!(
                eval.accuracy > 0.5,
                "{} accuracy {}",
                algo.name(),
                eval.accuracy
            );
        }
    }

    #[test]
    fn pytheas_runs_without_derived_predictions() {
        let corpus = small_corpus();
        let cv = CvConfig {
            k: 5,
            repeats: 1,
            seed: 3,
        };
        let outcome = run_line_cv(&corpus, LineAlgo::Pytheas, &cv, 8);
        assert!(outcome.per_repeat[0]
            .iter()
            .all(|p| p.pred != ElementClass::Derived.index()));
    }

    #[test]
    fn transfer_experiment_shapes() {
        let train = small_corpus();
        let test = strudel_datagen::troy(&GeneratorConfig {
            n_files: 4,
            seed: 9,
            scale: 0.2,
        });
        let (lines, cells) = transfer_experiment(&train, &test, 8, 5);
        assert!(!lines.is_empty());
        assert!(!cells.is_empty());
        assert!(cells.len() > lines.len());
    }
}
