//! Flag parsing for the `strudel` CLI.

use std::path::PathBuf;
use std::time::Duration;
use strudel::Limits;

/// Parsed command options. Every command uses a subset.
#[derive(Debug, Default)]
pub struct Options {
    /// `--corpus DIR` — annotated corpus directory.
    pub corpus: Option<PathBuf>,
    /// `--model PATH` — serialized model.
    pub model: Option<PathBuf>,
    /// `--out PATH` — output file or directory.
    pub out: Option<PathBuf>,
    /// `--dataset NAME` — synthetic dataset name.
    pub dataset: Option<String>,
    /// `--files N`.
    pub files: usize,
    /// `--seed K`.
    pub seed: u64,
    /// `--scale S`.
    pub scale: f64,
    /// `--trees N`.
    pub trees: usize,
    /// `--threads N` — batch worker threads (0 = available parallelism).
    pub threads: usize,
    /// `--cells` — also print per-cell predictions.
    pub cells: bool,
    /// `--json` — print detection results as canonical structure JSON.
    pub json: bool,
    /// `--host H` — serve bind host.
    pub host: String,
    /// `--port N` — serve bind port (0 picks an ephemeral port).
    pub port: u16,
    /// `--conns N` (alias `--queue`) — serve per-shard connection
    /// budget; overflow is shed with 503.
    pub conns: usize,
    /// `--cache N` — serve result-cache capacity (0 disables).
    pub cache: usize,
    /// `--rps F` — loadtest target arrival rate (0 = saturation).
    pub rps: f64,
    /// `--connections N` — loadtest concurrent client connections.
    pub connections: usize,
    /// `--duration-ms N` — loadtest measurement window.
    pub duration_ms: u64,
    /// `--mode keepalive|close` — loadtest connection mode.
    pub mode: String,
    /// `--path P` — loadtest request path.
    pub path: String,
    /// `--repair` — apply the Koci-style post-processing repair pass.
    pub repair: bool,
    /// `--max-bytes N` — override the per-file input size limit.
    pub max_bytes: Option<u64>,
    /// `--max-rows N` — override the parsed-row limit.
    pub max_rows: Option<u64>,
    /// `--max-cells N` — override the padded-grid cell limit.
    pub max_cells: Option<u64>,
    /// `--max-file-ms N` — override the per-file wall-clock budget.
    pub max_file_ms: Option<u64>,
    /// `--no-limits` — disable all input limits (trusted input only).
    pub no_limits: bool,
    /// `--stream` — classify through the bounded-memory streaming path.
    pub stream: bool,
    /// `--window-rows N` — streaming window row cap.
    pub window_rows: Option<usize>,
    /// `--window-bytes N` — streaming window byte cap.
    pub window_bytes: Option<usize>,
    /// `--max-total-bytes N` — whole-stream byte cap (streaming only;
    /// `--max-bytes` caps each window there).
    pub max_total_bytes: Option<u64>,
    /// `--table N` — select one table of a packed container.
    pub table: Option<usize>,
    /// `--column NAME` — select one column of a packed container.
    pub column: Option<String>,
    /// Positional arguments (input files).
    pub inputs: Vec<PathBuf>,
}

impl Options {
    /// Parse the remaining command line after the subcommand.
    pub fn parse<I: Iterator<Item = String>>(mut argv: I) -> Result<Options, String> {
        let mut o = Options {
            files: 40,
            seed: 42,
            scale: 0.3,
            trees: 50,
            host: "127.0.0.1".to_string(),
            port: 8080,
            conns: 256,
            cache: 256,
            rps: 0.0,
            connections: 8,
            duration_ms: 5000,
            mode: "keepalive".to_string(),
            path: "/classify".to_string(),
            ..Options::default()
        };
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| -> Result<String, String> {
                argv.next()
                    .ok_or_else(|| format!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--corpus" => o.corpus = Some(PathBuf::from(value("--corpus")?)),
                "--model" => o.model = Some(PathBuf::from(value("--model")?)),
                "--out" => o.out = Some(PathBuf::from(value("--out")?)),
                "--dataset" => o.dataset = Some(value("--dataset")?),
                "--files" => o.files = value("--files")?.parse().map_err(|_| "--files: integer")?,
                "--seed" => o.seed = value("--seed")?.parse().map_err(|_| "--seed: integer")?,
                "--scale" => o.scale = value("--scale")?.parse().map_err(|_| "--scale: float")?,
                "--trees" => o.trees = value("--trees")?.parse().map_err(|_| "--trees: integer")?,
                "--threads" => {
                    o.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads: integer")?
                }
                "--cells" => o.cells = true,
                "--json" => o.json = true,
                "--repair" => o.repair = true,
                "--host" => o.host = value("--host")?,
                "--port" => o.port = value("--port")?.parse().map_err(|_| "--port: integer")?,
                // `--queue` survives as an alias from the admission-queue
                // era; the budget is per-shard connections now.
                "--conns" | "--queue" => {
                    o.conns = value("--conns")?.parse().map_err(|_| "--conns: integer")?
                }
                "--cache" => o.cache = value("--cache")?.parse().map_err(|_| "--cache: integer")?,
                "--rps" => o.rps = value("--rps")?.parse().map_err(|_| "--rps: number")?,
                "--connections" => {
                    o.connections = value("--connections")?
                        .parse()
                        .map_err(|_| "--connections: integer")?
                }
                "--duration-ms" => {
                    o.duration_ms = value("--duration-ms")?
                        .parse()
                        .map_err(|_| "--duration-ms: integer")?
                }
                "--mode" => {
                    o.mode = value("--mode")?;
                    if o.mode != "keepalive" && o.mode != "close" {
                        return Err(format!(
                            "--mode must be keepalive or close, got {:?}",
                            o.mode
                        ));
                    }
                }
                "--path" => o.path = value("--path")?,
                "--max-bytes" => {
                    o.max_bytes = Some(
                        value("--max-bytes")?
                            .parse()
                            .map_err(|_| "--max-bytes: integer")?,
                    )
                }
                "--max-rows" => {
                    o.max_rows = Some(
                        value("--max-rows")?
                            .parse()
                            .map_err(|_| "--max-rows: integer")?,
                    )
                }
                "--max-cells" => {
                    o.max_cells = Some(
                        value("--max-cells")?
                            .parse()
                            .map_err(|_| "--max-cells: integer")?,
                    )
                }
                "--max-file-ms" => {
                    o.max_file_ms = Some(
                        value("--max-file-ms")?
                            .parse()
                            .map_err(|_| "--max-file-ms: integer")?,
                    )
                }
                "--no-limits" => o.no_limits = true,
                "--stream" => o.stream = true,
                "--window-rows" => {
                    o.window_rows = Some(
                        value("--window-rows")?
                            .parse()
                            .map_err(|_| "--window-rows: integer")?,
                    )
                }
                "--window-bytes" => {
                    o.window_bytes = Some(
                        value("--window-bytes")?
                            .parse()
                            .map_err(|_| "--window-bytes: integer")?,
                    )
                }
                "--max-total-bytes" => {
                    o.max_total_bytes = Some(
                        value("--max-total-bytes")?
                            .parse()
                            .map_err(|_| "--max-total-bytes: integer")?,
                    )
                }
                "--table" => {
                    o.table = Some(value("--table")?.parse().map_err(|_| "--table: integer")?)
                }
                "--column" => o.column = Some(value("--column")?),
                other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
                positional => o.inputs.push(PathBuf::from(positional)),
            }
        }
        Ok(o)
    }

    /// The input [`Limits`] these options describe: the standard limits,
    /// individually overridden by `--max-*` flags, or none at all under
    /// `--no-limits`.
    pub fn limits(&self) -> Limits {
        if self.no_limits {
            return Limits::unbounded();
        }
        let mut limits = Limits::standard();
        if let Some(n) = self.max_bytes {
            limits.max_input_bytes = Some(n);
        }
        if let Some(n) = self.max_rows {
            limits.max_rows = Some(n);
        }
        if let Some(n) = self.max_cells {
            limits.max_cells = Some(n);
        }
        if let Some(ms) = self.max_file_ms {
            limits.max_file_wall = Some(Duration::from_millis(ms));
        }
        limits
    }

    /// The streaming configuration these options describe: the default
    /// window geometry, overridden by `--window-*`, with [`limits`]
    /// (`--max-*` applying per window) and `--threads` threaded through.
    ///
    /// [`limits`]: Options::limits
    pub fn stream_config(&self) -> strudel::StreamConfig {
        let mut config = strudel::StreamConfig {
            limits: self.limits(),
            n_threads: self.threads,
            max_total_bytes: self.max_total_bytes,
            ..strudel::StreamConfig::default()
        };
        if let Some(n) = self.window_rows {
            config.window_rows = n;
        }
        if let Some(n) = self.window_bytes {
            config.window_bytes = n;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.files, 40);
        assert_eq!(o.trees, 50);
        assert!(o.inputs.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let o = parse(&["--model", "m.bin", "file.csv", "--cells"]).unwrap();
        assert_eq!(o.model.unwrap(), PathBuf::from("m.bin"));
        assert_eq!(o.inputs, vec![PathBuf::from("file.csv")]);
        assert!(o.cells);
    }

    #[test]
    fn serve_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.host, "127.0.0.1");
        assert_eq!(o.port, 8080);
        assert_eq!(o.conns, 256);
        assert_eq!(o.cache, 256);
        assert!(!o.json);
        let o = parse(&[
            "--host", "0.0.0.0", "--port", "0", "--conns", "8", "--cache", "0", "--json",
        ])
        .unwrap();
        assert_eq!(o.host, "0.0.0.0");
        assert_eq!(o.port, 0);
        assert_eq!(o.conns, 8);
        assert_eq!(o.cache, 0);
        assert!(o.json);
        // The admission-queue-era spelling still parses.
        assert_eq!(parse(&["--queue", "12"]).unwrap().conns, 12);
        assert!(parse(&["--port", "not-a-port"]).is_err());
    }

    #[test]
    fn loadtest_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.rps, 0.0);
        assert_eq!(o.connections, 8);
        assert_eq!(o.duration_ms, 5000);
        assert_eq!(o.mode, "keepalive");
        assert_eq!(o.path, "/classify");
        let o = parse(&[
            "--rps",
            "500.5",
            "--connections",
            "64",
            "--duration-ms",
            "2000",
            "--mode",
            "close",
            "--path",
            "/healthz",
        ])
        .unwrap();
        assert_eq!(o.rps, 500.5);
        assert_eq!(o.connections, 64);
        assert_eq!(o.duration_ms, 2000);
        assert_eq!(o.mode, "close");
        assert_eq!(o.path, "/healthz");
        assert!(parse(&["--mode", "pipelined"]).is_err());
        assert!(parse(&["--rps", "fast"]).is_err());
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&[]).unwrap().threads, 0);
        assert_eq!(parse(&["--threads", "3"]).unwrap().threads, 3);
        assert!(parse(&["--threads", "many"]).is_err());
    }

    #[test]
    fn limit_flags_override_standard() {
        let o = parse(&[
            "--max-bytes",
            "1000",
            "--max-rows",
            "50",
            "--max-file-ms",
            "200",
        ])
        .unwrap();
        let limits = o.limits();
        assert_eq!(limits.max_input_bytes, Some(1000));
        assert_eq!(limits.max_rows, Some(50));
        assert_eq!(limits.max_file_wall, Some(Duration::from_millis(200)));
        // Untouched fields keep the standard values.
        assert_eq!(limits.max_cells, Limits::standard().max_cells);
    }

    #[test]
    fn no_limits_disables_everything() {
        let o = parse(&["--no-limits", "--max-bytes", "1000"]).unwrap();
        assert_eq!(o.limits(), Limits::unbounded());
    }

    #[test]
    fn stream_flags() {
        let o = parse(&[]).unwrap();
        assert!(!o.stream);
        let defaults = strudel::StreamConfig::default();
        assert_eq!(o.stream_config().window_rows, defaults.window_rows);
        assert_eq!(o.stream_config().window_bytes, defaults.window_bytes);

        let o = parse(&[
            "--stream",
            "--window-rows",
            "100",
            "--window-bytes",
            "4096",
            "--max-total-bytes",
            "9000",
            "--max-bytes",
            "2048",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(o.stream);
        let config = o.stream_config();
        assert_eq!(config.window_rows, 100);
        assert_eq!(config.window_bytes, 4096);
        assert_eq!(config.max_total_bytes, Some(9000));
        // --max-bytes stays the per-window cap in streaming mode.
        assert_eq!(config.limits.max_input_bytes, Some(2048));
        assert_eq!(config.n_threads, 2);
        assert!(parse(&["--window-rows", "lots"]).is_err());
    }

    #[test]
    fn pack_selection_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.table, None);
        assert_eq!(o.column, None);
        let o = parse(&["--table", "2", "--column", "2019", "c.pack"]).unwrap();
        assert_eq!(o.table, Some(2));
        assert_eq!(o.column.as_deref(), Some("2019"));
        assert!(parse(&["--table", "minus one"]).is_err());
        assert!(parse(&["--column"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--model"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus", "x"]).is_err());
    }
}
