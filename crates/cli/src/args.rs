//! Flag parsing for the `strudel` CLI.

use std::path::PathBuf;

/// Parsed command options. Every command uses a subset.
#[derive(Debug, Default)]
pub struct Options {
    /// `--corpus DIR` — annotated corpus directory.
    pub corpus: Option<PathBuf>,
    /// `--model PATH` — serialized model.
    pub model: Option<PathBuf>,
    /// `--out PATH` — output file or directory.
    pub out: Option<PathBuf>,
    /// `--dataset NAME` — synthetic dataset name.
    pub dataset: Option<String>,
    /// `--files N`.
    pub files: usize,
    /// `--seed K`.
    pub seed: u64,
    /// `--scale S`.
    pub scale: f64,
    /// `--trees N`.
    pub trees: usize,
    /// `--threads N` — batch worker threads (0 = available parallelism).
    pub threads: usize,
    /// `--cells` — also print per-cell predictions.
    pub cells: bool,
    /// `--repair` — apply the Koci-style post-processing repair pass.
    pub repair: bool,
    /// Positional arguments (input files).
    pub inputs: Vec<PathBuf>,
}

impl Options {
    /// Parse the remaining command line after the subcommand.
    pub fn parse<I: Iterator<Item = String>>(mut argv: I) -> Result<Options, String> {
        let mut o = Options {
            files: 40,
            seed: 42,
            scale: 0.3,
            trees: 50,
            ..Options::default()
        };
        while let Some(flag) = argv.next() {
            let mut value = |name: &str| -> Result<String, String> {
                argv.next()
                    .ok_or_else(|| format!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--corpus" => o.corpus = Some(PathBuf::from(value("--corpus")?)),
                "--model" => o.model = Some(PathBuf::from(value("--model")?)),
                "--out" => o.out = Some(PathBuf::from(value("--out")?)),
                "--dataset" => o.dataset = Some(value("--dataset")?),
                "--files" => o.files = value("--files")?.parse().map_err(|_| "--files: integer")?,
                "--seed" => o.seed = value("--seed")?.parse().map_err(|_| "--seed: integer")?,
                "--scale" => o.scale = value("--scale")?.parse().map_err(|_| "--scale: float")?,
                "--trees" => o.trees = value("--trees")?.parse().map_err(|_| "--trees: integer")?,
                "--threads" => {
                    o.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads: integer")?
                }
                "--cells" => o.cells = true,
                "--repair" => o.repair = true,
                other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
                positional => o.inputs.push(PathBuf::from(positional)),
            }
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.files, 40);
        assert_eq!(o.trees, 50);
        assert!(o.inputs.is_empty());
    }

    #[test]
    fn flags_and_positionals() {
        let o = parse(&["--model", "m.bin", "file.csv", "--cells"]).unwrap();
        assert_eq!(o.model.unwrap(), PathBuf::from("m.bin"));
        assert_eq!(o.inputs, vec![PathBuf::from("file.csv")]);
        assert!(o.cells);
    }

    #[test]
    fn threads_flag() {
        assert_eq!(parse(&[]).unwrap().threads, 0);
        assert_eq!(parse(&["--threads", "3"]).unwrap().threads, 3);
        assert!(parse(&["--threads", "many"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--model"]).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus", "x"]).is_err());
    }
}
