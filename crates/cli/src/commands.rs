//! Implementations of the `strudel` subcommands.

use crate::args::Options;
use crate::{existing, fast_config, model_from, print_evaluation, CliError};
use std::fs;
use strudel::{repair_cells, RepairConfig, Strudel};

/// `strudel synth --dataset NAME --out DIR [--files N --seed K --scale S]`
pub fn synth(options: &Options) -> Result<(), CliError> {
    let dataset = options
        .dataset
        .as_deref()
        .ok_or("synth requires --dataset (SAUS, CIUS, DeEx, GovUK, Mendeley, or Troy)")?;
    let out = options.out.as_deref().ok_or("synth requires --out DIR")?;
    let known = ["govuk", "saus", "cius", "deex", "mendeley", "troy"];
    if !known.contains(&dataset.to_ascii_lowercase().as_str()) {
        return Err(format!("unknown dataset {dataset:?}; known: {known:?}").into());
    }
    let corpus = strudel_datagen::by_name(
        dataset,
        &strudel_datagen::GeneratorConfig {
            n_files: options.files,
            seed: options.seed,
            scale: options.scale,
        },
    );
    strudel_corpus::save_corpus(out, &corpus).map_err(|e| e.to_string())?;
    let stats = corpus.stats();
    println!(
        "wrote {} annotated files ({} lines, {} cells) to {}",
        stats.n_files,
        stats.n_lines,
        stats.n_cells,
        out.display()
    );
    Ok(())
}

/// `strudel train --corpus DIR --out MODEL [--trees N --seed K]`
pub fn train(options: &Options) -> Result<(), CliError> {
    let corpus_dir = options
        .corpus
        .as_deref()
        .ok_or("train requires --corpus DIR")?;
    let out = options.out.as_deref().ok_or("train requires --out MODEL")?;
    let corpus_dir = existing(corpus_dir, "corpus directory")?;
    let corpus = strudel_corpus::load_corpus(&corpus_dir, "train").map_err(|e| e.to_string())?;
    if corpus.files.is_empty() {
        return Err(format!(
            "no annotated files (*.csv with *.csv.labels) in {}",
            corpus_dir.display()
        )
        .into());
    }
    eprintln!(
        "training on {} files / {} labeled lines ...",
        corpus.files.len(),
        corpus.stats().n_lines
    );
    let model = Strudel::fit(&corpus.files, &fast_config(options.trees, options.seed));
    model.save(out)?;
    let size = fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("model saved to {} ({} KiB)", out.display(), size / 1024);
    Ok(())
}

/// `strudel detect [--model MODEL] FILE [--cells]`
pub fn detect(options: &Options) -> Result<(), CliError> {
    if options.stream {
        return detect_stream(options);
    }
    let input = options
        .inputs
        .first()
        .ok_or("detect requires an input FILE")?;
    let input = existing(input, "input file")?;
    let bytes = fs::read(&input)
        .map_err(|e| strudel::StrudelError::io(&e, Some(&input.display().to_string())))?;
    let model = model_from(options)?;
    let mut structure = model
        .try_detect_structure_bytes(&bytes, &options.limits())
        .map_err(|e| e.with_file(input.display().to_string()))?;
    if options.repair {
        let report = repair_cells(
            &structure.table,
            &mut structure.cells,
            &RepairConfig::default(),
        );
        eprintln!("repair pass fixed {} cells", report.total());
    }

    if options.json {
        // The canonical machine-readable rendering — byte-identical to
        // what `strudel serve` returns for the same bytes.
        println!("{}", structure.to_json());
        return Ok(());
    }

    println!("dialect: {}", structure.dialect);
    for (r, class) in structure.lines.iter().enumerate() {
        let label = class.map_or("(empty)", |c| c.name());
        let preview: Vec<&str> = (0..structure.table.n_cols())
            .map(|c| structure.table.cell(r, c).raw())
            .collect();
        let mut joined = preview.join(" | ");
        if joined.chars().count() > 72 {
            joined = joined.chars().take(69).collect::<String>() + "...";
        }
        println!("{r:>4}  {label:<10} {joined}");
    }
    if options.cells {
        println!("\ncells differing from their line class:");
        let mut any = false;
        for cell in &structure.cells {
            if Some(cell.class) != structure.lines[cell.row] {
                any = true;
                println!(
                    "  ({}, {}) {:<10} {:?}",
                    cell.row,
                    cell.col,
                    cell.class.name(),
                    structure.table.cell(cell.row, cell.col).raw()
                );
            }
        }
        if !any {
            println!("  (none)");
        }
    }
    Ok(())
}

/// `strudel detect --stream`: the input is read in fixed-size chunks
/// through the bounded-memory [`strudel::StreamClassifier`]; line
/// classes print incrementally as each window closes. `--json` buffers
/// the emitted windows to assemble the canonical document (the output
/// itself is file-sized, so that buffering changes nothing
/// asymptotically) — on any input that fits in one window it is
/// byte-identical to plain `detect --json`.
fn detect_stream(options: &Options) -> Result<(), CliError> {
    use std::io::Write;
    let input = options
        .inputs
        .first()
        .ok_or("detect requires an input FILE")?;
    let input = existing(input, "input file")?;
    let name = input.display().to_string();
    let mut file =
        fs::File::open(&input).map_err(|e| strudel::StrudelError::io(&e, Some(&name)))?;
    let model = model_from(options)?;

    let mut buffered: Vec<strudel::StreamWindow> = Vec::new();
    let mut differing: Vec<(usize, usize, &'static str, String)> = Vec::new();
    let mut repaired = 0usize;
    let mut dialect_printed = false;
    let mut on_window = |mut w: strudel::StreamWindow| {
        if options.repair {
            repaired += repair_cells(
                &w.structure.table,
                &mut w.structure.cells,
                &RepairConfig::default(),
            )
            .total();
        }
        if options.json {
            buffered.push(w);
            return;
        }
        if !dialect_printed {
            println!("dialect: {}", w.structure.dialect);
            dialect_printed = true;
        }
        for (r, class) in w.structure.lines.iter().enumerate() {
            let label = class.map_or("(empty)", |c| c.name());
            let preview: Vec<&str> = (0..w.structure.table.n_cols())
                .map(|c| w.structure.table.cell(r, c).raw())
                .collect();
            let mut joined = preview.join(" | ");
            if joined.chars().count() > 72 {
                joined = joined.chars().take(69).collect::<String>() + "...";
            }
            println!("{:>4}  {label:<10} {joined}", w.first_row + r);
        }
        if options.cells {
            for cell in &w.structure.cells {
                if Some(cell.class) != w.structure.lines[cell.row] {
                    differing.push((
                        w.first_row + cell.row,
                        cell.col,
                        cell.class.name(),
                        w.structure.table.cell(cell.row, cell.col).raw().to_string(),
                    ));
                }
            }
        }
        std::io::stdout().flush().ok();
        // `w` is dropped here — non-JSON output stays O(window).
    };
    strudel::classify_reader(&model, &mut file, options.stream_config(), &mut on_window)
        .map_err(|e| e.with_file(name))?;

    if options.repair {
        eprintln!("repair pass fixed {repaired} cells");
    }
    if options.json {
        println!("{}", strudel::stream_to_json(&buffered));
        return Ok(());
    }
    if options.cells {
        println!("\ncells differing from their line class:");
        if differing.is_empty() {
            println!("  (none)");
        }
        for (row, col, class, raw) in differing {
            println!("  ({row}, {col}) {class:<10} {raw:?}");
        }
    }
    Ok(())
}

/// `strudel extract [--model MODEL] FILE`
pub fn extract(options: &Options) -> Result<(), CliError> {
    let input = options
        .inputs
        .first()
        .ok_or("extract requires an input FILE")?;
    let input = existing(input, "input file")?;
    let text = fs::read_to_string(&input).map_err(|e| e.to_string())?;
    let model = model_from(options)?;
    let structure = model.detect_structure(&text);

    let render_row = |row: &[String]| {
        row.iter()
            .map(|v| {
                if v.contains([',', '"', '\n']) {
                    format!("\"{}\"", v.replace('"', "\"\""))
                } else {
                    v.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = String::new();
    if let Some(header) = structure.header_row() {
        out.push_str(&render_row(&header));
        out.push('\n');
    }
    for row in structure.data_rows() {
        out.push_str(&render_row(&row));
        out.push('\n');
    }
    match &options.out {
        Some(path) => {
            fs::write(path, &out).map_err(|e| e.to_string())?;
            eprintln!("clean table written to {}", path.display());
        }
        None => print!("{out}"),
    }
    Ok(())
}

/// `strudel segments [--model MODEL] FILE`
pub fn segments(options: &Options) -> Result<(), CliError> {
    let input = options
        .inputs
        .first()
        .ok_or("segments requires an input FILE")?;
    let input = existing(input, "input file")?;
    let text = fs::read_to_string(&input).map_err(|e| e.to_string())?;
    let model = model_from(options)?;
    let structure = model.detect_structure(&text);
    let regions = structure.tables();
    println!("{} table region(s)", regions.len());
    for (i, region) in regions.iter().enumerate() {
        let caption = region
            .metadata_rows
            .first()
            .map(|&r| structure.table.cell(r, 0).raw().to_string());
        println!("region {i}:");
        if let Some(caption) = caption {
            println!("  caption: {caption:?}");
        }
        let span = |rows: &[usize]| match (rows.first(), rows.last()) {
            (Some(a), Some(b)) if a == b => format!("line {a}"),
            (Some(a), Some(b)) => format!("lines {a}-{b}"),
            _ => "-".to_string(),
        };
        println!("  metadata: {}", span(&region.metadata_rows));
        println!("  header:   {}", span(&region.header_rows));
        println!("  body:     {}", span(&region.body_rows));
        println!("  notes:    {}", span(&region.notes_rows));
    }
    Ok(())
}

/// `strudel batch [--model MODEL] [--threads N] [--out FILE] DIR|FILE...`
///
/// Runs the full pipeline over every input on a worker pool and prints a
/// JSON report (per-stage timings, per-file outcomes, throughput) to
/// stdout or `--out`. A directory input contributes its `*.csv` files in
/// name order. Per-file failures land in the report; the command itself
/// only fails when there is nothing to process.
pub fn batch(options: &Options) -> Result<(), CliError> {
    use strudel::batch::{
        detect_all, detect_all_streamed, peak_rss_bytes, BatchConfig, BatchInput,
    };
    if options.inputs.is_empty() {
        return Err("batch requires input files or a directory".into());
    }
    let mut paths = Vec::new();
    for input in &options.inputs {
        let input = existing(input, "input")?;
        if input.is_dir() {
            let mut entries: Vec<_> = fs::read_dir(&input)
                .map_err(|e| format!("reading {}: {e}", input.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
                .collect();
            entries.sort();
            paths.extend(entries);
        } else {
            paths.push(input);
        }
    }
    if paths.is_empty() {
        return Err("no CSV files to process".into());
    }
    let model = model_from(options)?;
    let inputs: Vec<BatchInput> = paths.into_iter().map(BatchInput::Path).collect();
    let config = BatchConfig {
        n_threads: options.threads,
        limits: options.limits(),
    };
    let report = if options.stream {
        // Files are read and classified in chunks, windows dropped as
        // counted: per-worker peak memory is O(window), not O(file).
        let report = detect_all_streamed(&model, &inputs, &config, &options.stream_config());
        if let Some(rss) = peak_rss_bytes() {
            // Machine-parseable, for the bench script and the RSS guard.
            eprintln!("peak_rss_bytes: {rss}");
        }
        report
    } else {
        detect_all(&model, &inputs, &config).report
    };
    eprintln!(
        "processed {} files on {} thread(s): {} ok, {} failed, {:.1} files/s",
        report.outcomes.len(),
        report.n_threads,
        report.n_ok(),
        report.n_failed(),
        report.files_per_second(),
    );
    let json = report.to_json();
    match &options.out {
        Some(path) => {
            fs::write(path, &json).map_err(|e| e.to_string())?;
            eprintln!("report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `strudel serve [--model MODEL] [--host H --port N] [--threads N]
/// [--conns N] [--cache N]`
///
/// Runs the resident classification daemon: loads the model once, binds
/// the listener, prints the resolved address (machine-parseable, for
/// ephemeral ports), and serves until `POST /admin/shutdown`.
pub fn serve(options: &Options) -> Result<(), CliError> {
    use std::io::Write;
    use strudel_server::{Server, ServerConfig};
    let model = model_from(options)?;
    let config = ServerConfig {
        addr: format!("{}:{}", options.host, options.port),
        n_shards: options.threads,
        conns_per_shard: options.conns,
        cache_capacity: options.cache,
        limits: options.limits(),
        model_path: options.model.clone(),
        stream: options.stream_config(),
        ..ServerConfig::default()
    };
    let server = Server::bind(model, &config)
        .map_err(|e| CliError::Pipeline(strudel::StrudelError::io(&e, Some(&config.addr))))?;
    println!(
        "strudel serve listening on http://{} ({} shards, conns/shard {}, cache {})",
        server.local_addr(),
        server.n_shards(),
        options.conns,
        options.cache,
    );
    // The line above is the startup handshake for scripts (`--port 0`
    // prints the ephemeral port); make sure it is on the wire before
    // the shard loops take over.
    std::io::stdout().flush().ok();
    server.run();
    eprintln!("strudel serve: drained and shut down cleanly");
    Ok(())
}

/// `strudel loadtest --host H --port N [--path P] [--mode keepalive|close]
/// [--rps F] [--connections N] [--duration-ms N] [FILE]`
///
/// Open-loop load generator against a running daemon (the measurement
/// half of `scripts/bench_serve.sh`). `FILE` becomes the POST body
/// (e.g. a CSV for `/classify`); without it the request is a GET.
/// Prints one JSON object: the run configuration plus throughput and
/// p50/p90/p99/p999 latency (µs, measured from the *scheduled* arrival
/// in open-loop mode, so server queueing is not hidden).
pub fn loadtest(options: &Options) -> Result<(), CliError> {
    use strudel_server::loadtest::{run, LoadConfig};
    let body = match options.inputs.first() {
        Some(path) => {
            let path = existing(path, "request-body file")?;
            std::fs::read(&path)
                .map_err(|e| strudel::StrudelError::io(&e, Some(&path.display().to_string())))?
        }
        None => Vec::new(),
    };
    let config = LoadConfig {
        addr: format!("{}:{}", options.host, options.port),
        path: options.path.clone(),
        body,
        rps: options.rps,
        connections: options.connections,
        duration: std::time::Duration::from_millis(options.duration_ms),
        keep_alive: options.mode != "close",
    };
    let report = run(&config);
    let inner = report.to_json();
    println!(
        "{{\"mode\": \"{}\", \"path\": \"{}\", \"target_rps\": {}, \"connections\": {}, {}",
        if config.keep_alive {
            "keepalive"
        } else {
            "close"
        },
        config.path,
        config.rps,
        config.connections,
        inner.strip_prefix('{').unwrap_or(&inner),
    );
    Ok(())
}

/// `strudel pack [--model MODEL] FILE [--out CONTAINER]`
///
/// Streams the input through the bounded-memory classifier and writes a
/// structure-aware packed container: skeleton + per-column blocks, one
/// block group per stream window, O(window) peak memory. The default
/// output path is the input with `.pack` appended.
pub fn pack(options: &Options) -> Result<(), CliError> {
    use std::io::Read;
    let input = options
        .inputs
        .first()
        .ok_or("pack requires an input FILE")?;
    let input = existing(input, "input file")?;
    let name = input.display().to_string();
    let model = model_from(options)?;
    let mut file =
        fs::File::open(&input).map_err(|e| strudel::StrudelError::io(&e, Some(&name)))?;
    let mut writer = strudel_pack::PackWriter::new(&model, options.stream_config());
    let mut chunk = vec![0u8; strudel::STREAM_CHUNK_BYTES];
    loop {
        let n = file
            .read(&mut chunk)
            .map_err(|e| strudel::StrudelError::io(&e, Some(&name)))?;
        if n == 0 {
            break;
        }
        writer
            .push(&chunk[..n])
            .map_err(|e| e.with_file(name.clone()))?;
    }
    let packed = writer.finish().map_err(|e| e.with_file(name.clone()))?;
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from(format!("{name}.pack")));
    fs::write(&out, &packed.bytes)
        .map_err(|e| strudel::StrudelError::io(&e, Some(&out.display().to_string())))?;
    eprintln!(
        "packed {} ({} bytes) -> {} ({} bytes, {:.3}x): {} group(s), {} table(s), {} block(s)",
        name,
        packed.original.len,
        out.display(),
        packed.bytes.len(),
        packed.ratio(),
        packed.n_groups,
        packed.n_tables,
        packed.n_blocks,
    );
    Ok(())
}

/// `strudel unpack CONTAINER [--out FILE] [--table N] [--column NAME]`
///
/// Without selectors, reconstructs the original input byte for byte
/// (verified against the packed fingerprint). `--table N` extracts one
/// table (header rows verbatim plus reassembled body rows); `--column
/// NAME` (optionally scoped by `--table N`) extracts one column's
/// parsed values, one per line, decoding only that column's block.
pub fn unpack(options: &Options) -> Result<(), CliError> {
    use std::io::Write;
    let input = options
        .inputs
        .first()
        .ok_or("unpack requires a CONTAINER file")?;
    let input = existing(input, "container file")?;
    let name = input.display().to_string();
    let bytes = fs::read(&input).map_err(|e| strudel::StrudelError::io(&e, Some(&name)))?;
    let mut reader =
        strudel_pack::PackReader::open(&bytes).map_err(|e| e.with_file(name.clone()))?;
    let out = match (&options.column, options.table) {
        (Some(column), table) => {
            let (t, c) = reader.find_column(column, table).ok_or_else(|| {
                let scope = table.map_or(String::new(), |t| format!(" in table {t}"));
                let known: Vec<&str> = reader
                    .tables()
                    .iter()
                    .flat_map(|t| t.columns.iter().map(String::as_str))
                    .collect();
                CliError::Usage(format!(
                    "no column named {column:?}{scope}; container has: {known:?}"
                ))
            })?;
            let values = reader
                .extract_column(t, c)
                .map_err(|e| e.with_file(name.clone()))?;
            let mut text = String::new();
            for value in values {
                text.push_str(&value.unwrap_or_default());
                text.push('\n');
            }
            text.into_bytes()
        }
        (None, Some(table)) => reader
            .extract_table(table)
            .map_err(|e| e.with_file(name.clone()))?
            .into_bytes(),
        (None, None) => reader.unpack().map_err(|e| e.with_file(name.clone()))?,
    };
    match &options.out {
        Some(path) => {
            fs::write(path, &out)
                .map_err(|e| strudel::StrudelError::io(&e, Some(&path.display().to_string())))?;
            eprintln!("wrote {} bytes to {}", out.len(), path.display());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(&out)
                .and_then(|()| stdout.flush())
                .map_err(|e| strudel::StrudelError::io(&e, None))?;
        }
    }
    Ok(())
}

/// `strudel eval --model MODEL --corpus DIR`
pub fn eval(options: &Options) -> Result<(), CliError> {
    let corpus_dir = options
        .corpus
        .as_deref()
        .ok_or("eval requires --corpus DIR")?;
    let corpus_dir = existing(corpus_dir, "corpus directory")?;
    let corpus = strudel_corpus::load_corpus(&corpus_dir, "eval").map_err(|e| e.to_string())?;
    if corpus.files.is_empty() {
        return Err("no annotated files in the corpus directory".into());
    }
    let model = model_from(options)?;

    let mut line_gold = Vec::new();
    let mut line_pred = Vec::new();
    let mut cell_gold = Vec::new();
    let mut cell_pred = Vec::new();
    for file in &corpus.files {
        let structure = model
            .detect_structure_of_table(file.table.clone(), strudel_dialect::Dialect::rfc4180());
        for r in 0..file.table.n_rows() {
            if let (Some(g), Some(p)) = (file.line_labels[r], structure.lines[r]) {
                line_gold.push(g.index());
                line_pred.push(p.index());
            }
        }
        for cell in &structure.cells {
            if let Some(g) = file.cell_labels[cell.row][cell.col] {
                cell_gold.push(g.index());
                cell_pred.push(cell.class.index());
            }
        }
    }
    println!(
        "evaluated {} files, {} lines, {} cells\n",
        corpus.files.len(),
        line_gold.len(),
        cell_gold.len()
    );
    print_evaluation("line classification:", &line_gold, &line_pred);
    print_evaluation("cell classification:", &cell_gold, &cell_pred);
    Ok(())
}
