//! `strudel` — command-line structure detection for verbose CSV files.
//!
//! ```text
//! strudel synth   --dataset SAUS --files 40 --out corpus/   # export a synthetic annotated corpus
//! strudel train   --corpus corpus/ --out model.strudel      # fit Strudel^L + Strudel^C
//! strudel detect  --model model.strudel file.csv            # classify every line and cell
//! strudel extract --model model.strudel file.csv            # print the clean data table
//! strudel eval    --model model.strudel --corpus corpus/    # score against annotations
//! strudel batch   --model model.strudel --threads 8 dir/    # batch-classify, JSON report
//! strudel serve   --model model.strudel --port 8080         # resident classification daemon
//! strudel loadtest --port 8080 --rps 500 file.csv           # open-loop load generator
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use strudel::{Strudel, StrudelCellConfig, StrudelError, StrudelLineConfig};
use strudel_eval::Evaluation;
use strudel_ml::ForestConfig;
use strudel_table::ElementClass;

mod args;
mod commands;

use args::Options;

/// A CLI failure: either a usage-level error (bad flags, missing inputs)
/// or a typed pipeline error. Each [`StrudelError`] category maps to its
/// own exit code so scripts can react without parsing stderr.
pub enum CliError {
    /// Wrong invocation — exit code 1.
    Usage(String),
    /// A typed failure from the pipeline — exit codes 2–10.
    Pipeline(StrudelError),
}

impl CliError {
    /// The process exit code for this failure (see `USAGE`).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Pipeline(e) => match e.category() {
                "io" => 2,
                "parse" => 3,
                "dialect" => 4,
                "table" => 5,
                "limit" => 6,
                "model" => 7,
                _ => 10,
            },
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Usage(msg.to_string())
    }
}

impl From<StrudelError> for CliError {
    fn from(e: StrudelError) -> CliError {
        CliError::Pipeline(e)
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let options = match Options::parse(argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "synth" => commands::synth(&options),
        "train" => commands::train(&options),
        "detect" => commands::detect(&options),
        "extract" => commands::extract(&options),
        "segments" => commands::segments(&options),
        "eval" => commands::eval(&options),
        "batch" => commands::batch(&options),
        "pack" => commands::pack(&options),
        "unpack" => commands::unpack(&options),
        "serve" => commands::serve(&options),
        "loadtest" => commands::loadtest(&options),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
strudel — structure detection in verbose CSV files (EDBT 2021)

USAGE:
  strudel synth   --dataset NAME --out DIR [--files N] [--seed K] [--scale S]
  strudel train   --corpus DIR --out MODEL [--trees N] [--seed K]
  strudel detect  [--model MODEL] FILE [--cells] [--repair] [--json] [--stream]
  strudel extract [--model MODEL] FILE
  strudel segments [--model MODEL] FILE
  strudel eval    --model MODEL --corpus DIR
  strudel batch   [--model MODEL] [--threads N] [--out FILE] [--stream] DIR|FILE...
  strudel pack    [--model MODEL] FILE [--out CONTAINER]
  strudel unpack  CONTAINER [--out FILE] [--table N] [--column NAME]
  strudel serve   [--model MODEL] [--host H] [--port N] [--threads N]
                  [--conns N] [--cache N]
  strudel loadtest [--host H] [--port N] [--path P] [--mode keepalive|close]
                  [--rps F] [--connections N] [--duration-ms N] [FILE]

Without --model, detect/extract/serve train a default model on a
synthetic corpus first (slower, but fully self-contained).

THREADS (batch and serve):
  --threads N       worker threads; 0 (the default) resolves via the
                    STRUDEL_THREADS environment variable, then the
                    machine's available parallelism

PACKING:
  pack writes a structure-aware columnar container (.pack): skeleton
  rows (metadata/header/notes, dialect, line endings) and per-column
  value streams per detected table, in checksummed blocks addressed by
  a footer directory. unpack without selectors reproduces the original
  file byte for byte; --table N extracts one table, --column NAME one
  column's values (decoding only that column's block).
  Streaming flags (--window-rows/--window-bytes) shape the writer's
  block groups; packing is always O(window) memory.

SERVING:
  --host H          bind host                        [default 127.0.0.1]
  --port N          bind port, 0 = ephemeral         [default 8080]
  --conns N         per-shard connection budget; overflow is shed
                    with 503 + Retry-After (--queue is accepted as an
                    alias)                           [default 256]
  --cache N         result-cache entries, 0 disables [default 256]
  The daemon serves shard-per-core: --threads N shards (0 resolves
  like batch), each driving its own keep-alive connections with a
  nonblocking poll loop — no accept queue, no cross-shard lock.
  Endpoints: POST /classify (CSV bytes -> structure JSON, identical to
  `detect --json`), POST /classify/stream (chunked or content-length
  body -> chunked NDJSON window events, O(window) memory per
  connection; honors --window-rows/--window-bytes), GET /healthz,
  GET /metrics (Prometheus text), POST /admin/reload (validate + swap
  model), POST /admin/shutdown (graceful, drains in-flight pipelines).

LOAD TESTING:
  --rps F           target arrival rate; 0 = closed-loop saturation
                    (as fast as the connections go)  [default 0]
  --connections N   concurrent client connections    [default 8]
  --duration-ms N   scheduled-arrival window         [default 5000]
  --mode M          keepalive (persistent connections) or close (one
                    connection per request)          [default keepalive]
  --path P          request path                     [default /classify]
  FILE, when given, is POSTed as the request body; latencies are
  measured from the scheduled arrival (open-loop), so server queueing
  shows up in p99 instead of being absorbed by client backoff.

LIMITS (detect, batch, and serve):
  --max-bytes N     per-file input size limit       [default 256 MiB]
  --max-rows N      parsed row limit                [default 4194304]
  --max-cells N     padded-grid cell limit          [default 67108864]
  --max-file-ms N   per-file wall-clock budget      [default 60000]
  --no-limits       disable every limit (trusted input only)

STREAMING (detect, batch, and serve's /classify/stream):
  --stream          classify in bounded memory: the input is read in
                    chunks and classified window by window, so peak
                    memory is O(window), not O(file). Output on inputs
                    that fit one window (the common case) is
                    byte-identical to the whole-file path; larger
                    streams classify each window independently under
                    the prefix-detected dialect.
  --window-rows N   rows per window                 [default 65536]
  --window-bytes N  bytes per window                [default 8 MiB]
  --max-total-bytes N
                    whole-stream byte cap. In streaming mode the
                    --max-bytes cap applies to each window instead of
                    the whole input; this flag restores a stream-wide
                    cap when one is wanted.

EXIT CODES:
  0 success    1 usage     2 io       3 parse     4 dialect
  5 table      6 limit     7 model    10 internal
  (batch exits 0 even when individual files fail; per-file errors and
  their categories land in the JSON report instead)

COMMANDS:
  synth     Export a seeded synthetic annotated corpus (SAUS, CIUS, DeEx,
            GovUK, Mendeley, or Troy) as CSV files with .labels sidecars.
  train     Fit Strudel^L + Strudel^C on an annotated corpus directory
            and save the model.
  detect    Print the detected class of every line (and with --cells,
            every cell that differs from its line class).
  extract   Print the machine-readable data table (header + data rows),
            dropping metadata, group headers, derived totals, and notes.
  segments  Print the stacked table regions of a multi-table file
            (caption, header, body, and notes line ranges).
  eval      Score a model against an annotated corpus (per-class F1).
  batch     Detect structure for many files on a worker pool and emit a
            JSON report: per-stage timings, per-file outcomes (failures
            included, they never abort the batch), and throughput.
  pack      Pack a verbose CSV file into the structure-aware columnar
            container with O(1) random access to tables and columns.
  unpack    Reconstruct a packed file byte for byte, or selectively
            extract one table (--table) or one column (--column).
  serve     Run the resident classification daemon: model loaded once
            and kept warm, shard-per-core keep-alive serving with load
            shedding, content-hash result caches, model hot-reload,
            Prometheus metrics, graceful shutdown.
  loadtest  Drive a running daemon with open-loop arrivals and print
            throughput + latency percentiles as JSON (the measurement
            half of scripts/bench_serve.sh).";

/// Train a model on a synthetic corpus when no `--model` is given.
fn default_model() -> Strudel {
    eprintln!("note: no --model given; training a default model on a synthetic corpus ...");
    let corpus = strudel_datagen::saus(&strudel_datagen::GeneratorConfig {
        n_files: 40,
        seed: 42,
        scale: 0.3,
    });
    Strudel::fit(&corpus.files, &fast_config(40, 42))
}

fn fast_config(trees: usize, seed: u64) -> StrudelCellConfig {
    StrudelCellConfig {
        line: StrudelLineConfig {
            forest: ForestConfig {
                n_trees: trees,
                seed,
                ..ForestConfig::default()
            },
            ..StrudelLineConfig::default()
        },
        forest: ForestConfig {
            n_trees: trees,
            seed: seed ^ 1,
            ..ForestConfig::default()
        },
        ..StrudelCellConfig::default()
    }
}

/// Load the model from `--model`, or train a default one. A corrupt or
/// unreadable model file surfaces as a typed error (exit code 7 or 2).
fn model_from(options: &Options) -> Result<Strudel, CliError> {
    match &options.model {
        Some(path) => Ok(Strudel::load(path)?),
        None => Ok(default_model()),
    }
}

/// Score predictions against gold labels and print a per-class table.
fn print_evaluation(title: &str, gold: &[usize], pred: &[usize]) {
    let eval = Evaluation::compute(gold, pred, ElementClass::COUNT);
    println!("{title}");
    println!("  {:<10}{:>8}{:>10}", "class", "F1", "support");
    for class in ElementClass::ALL {
        println!(
            "  {:<10}{:>8.3}{:>10}",
            class.name(),
            eval.f1[class.index()],
            eval.support[class.index()]
        );
    }
    println!(
        "  accuracy {:.3}, macro-F1 {:.3}\n",
        eval.accuracy,
        eval.macro_f1(&[])
    );
}

/// Resolve a path argument that must exist. A missing path is an I/O
/// failure (exit code 2), not a usage error: the command line was
/// well-formed, the filesystem just doesn't match it.
fn existing(path: &Path, what: &str) -> Result<PathBuf, CliError> {
    if path.exists() {
        Ok(path.to_path_buf())
    } else {
        Err(CliError::Pipeline(StrudelError::io(
            &std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{what} does not exist"),
            ),
            Some(&path.display().to_string()),
        )))
    }
}
