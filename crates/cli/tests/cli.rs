//! End-to-end tests of the `strudel` binary: the synth → train → detect
//! → extract → eval workflow over a temporary directory, plus the
//! `serve` daemon driven over loopback TCP.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_strudel"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("strudel-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow() {
    let dir = temp_dir("workflow");
    let corpus = dir.join("corpus");
    let model = dir.join("model.strudel");

    // synth
    let out = bin()
        .args([
            "synth",
            "--dataset",
            "SAUS",
            "--files",
            "16",
            "--scale",
            "0.2",
        ])
        .arg("--out")
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "synth failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.join("saus_0000.csv").exists());
    assert!(corpus.join("saus_0000.csv.labels").exists());

    // train
    let out = bin()
        .args(["train", "--trees", "15"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // detect
    let probe = dir.join("probe.csv");
    fs::write(
        &probe,
        "Survey of crime outcomes,,\n,,\n,Rate 1,Rate 2\nKent,12,34\nSurrey,56,78\nTotal,68,112\n,,\nSource: national statistics office,,\n",
    )
    .unwrap();
    let out = bin()
        .arg("detect")
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dialect:"));
    assert!(stdout.contains("data"));
    assert!(stdout.contains("notes") || stdout.contains("metadata"));

    // detect with a too-small --max-bytes budget: typed limit error,
    // dedicated exit code 6.
    let out = bin()
        .args(["detect", "--max-bytes", "10"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6), "limit errors must exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("input_bytes"), "stderr: {stderr}");

    // detect on a binary file: rejected as non-CSV content, exit code 4.
    let binary = dir.join("binary.csv");
    fs::write(&binary, b"PK\x03\x04\x00\x00csv?no").unwrap();
    let out = bin()
        .arg("detect")
        .arg("--model")
        .arg(&model)
        .arg(&binary)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "binary input must exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("binary"));

    // detect with a corrupt model file: typed model error, exit code 7.
    let corrupt = dir.join("corrupt.strudel");
    fs::write(&corrupt, b"not a model").unwrap();
    let out = bin()
        .arg("detect")
        .arg("--model")
        .arg(&corrupt)
        .arg(&probe)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "corrupt models must exit 7");

    // detect on a missing input file: I/O error, exit code 2 (not a
    // usage error — the command line itself was fine).
    let out = bin()
        .arg("detect")
        .arg("--model")
        .arg(&model)
        .arg(dir.join("no_such_file.csv"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "missing inputs must exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not exist"));

    // extract
    let out = bin()
        .arg("extract")
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Kent,12,34"), "extract output:\n{stdout}");
    assert!(
        !stdout.contains("Source:"),
        "notes must be dropped:\n{stdout}"
    );

    // eval
    let out = bin()
        .arg("eval")
        .arg("--model")
        .arg(&model)
        .arg("--corpus")
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "eval failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("line classification:"));
    assert!(stdout.contains("macro-F1"));

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_command_writes_json_report() {
    let dir = temp_dir("batch");
    let corpus = dir.join("corpus");
    let model = dir.join("model.strudel");
    assert!(bin()
        .args([
            "synth",
            "--dataset",
            "SAUS",
            "--files",
            "12",
            "--scale",
            "0.2"
        ])
        .arg("--out")
        .arg(&corpus)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["train", "--trees", "12"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .status()
        .unwrap()
        .success());
    // One file in the directory is not valid UTF-8: it must fail alone
    // without aborting the batch.
    fs::write(corpus.join("broken.csv"), [0xFF, 0xFE, 0x41]).unwrap();

    let out = bin()
        .args(["batch", "--threads", "2"])
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"n_files\": 13"), "{stdout}");
    assert!(stdout.contains("\"ok\": 12"), "{stdout}");
    assert!(stdout.contains("\"failed\": 1"), "{stdout}");
    assert!(stdout.contains("\"stages_ms\""), "{stdout}");
    assert!(stdout.contains("\"line_classify\""), "{stdout}");
    assert!(stdout.contains("broken.csv"), "{stdout}");
    // The failure carries its StrudelError category in the report.
    assert!(stdout.contains("\"category\": \"parse\""), "{stdout}");
    assert!(stdout.contains("invalid UTF-8"), "{stdout}");

    // --out writes the same report to a file instead of stdout.
    let report = dir.join("report.json");
    let out = bin()
        .arg("batch")
        .arg("--model")
        .arg(&model)
        .arg("--out")
        .arg(&report)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).is_empty());
    let json = fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"files_per_second\""), "{json}");
    fs::remove_dir_all(&dir).ok();
}

/// Synthesize a small corpus and train a model into `dir`, returning
/// the model path.
fn train_tiny_model(dir: &Path) -> PathBuf {
    let corpus = dir.join("corpus");
    let model = dir.join("model.strudel");
    assert!(bin()
        .args([
            "synth",
            "--dataset",
            "SAUS",
            "--files",
            "12",
            "--scale",
            "0.2"
        ])
        .arg("--out")
        .arg(&corpus)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["train", "--trees", "12"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .status()
        .unwrap()
        .success());
    model
}

/// Kill the serve process if the test panics before shutting it down.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
    }
}

/// One HTTP exchange against the daemon, returning (status, body).
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // `Connection: close` so `read_to_end` sees EOF after one exchange
    // (the daemon otherwise keeps the connection alive).
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\
                 Content-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text.split_once("\r\n\r\n").expect("complete response");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, payload.to_string())
}

#[test]
fn serve_roundtrip_matches_detect_json() {
    let dir = temp_dir("serve");
    let model = train_tiny_model(&dir);
    let probe = dir.join("probe.csv");
    fs::write(
        &probe,
        "Survey of crime outcomes,,\n,,\n,Rate 1,Rate 2\nKent,12,34\nSurrey,56,78\nTotal,68,112\n,,\nSource: national statistics office,,\n",
    )
    .unwrap();

    // The canonical one-shot rendering the daemon must reproduce.
    let out = bin()
        .args(["detect", "--json"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "detect --json failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(expected.starts_with('{'), "not JSON: {expected}");

    // Start the daemon on an ephemeral port; --threads must show up in
    // the resolved shard count on the handshake line.
    let mut child = ServeGuard(
        bin()
            .args(["serve", "--port", "0", "--threads", "2", "--conns", "8"])
            .arg("--model")
            .arg(&model)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let mut handshake = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut handshake)
        .unwrap();
    assert!(
        handshake.contains("strudel serve listening on http://"),
        "handshake: {handshake}"
    );
    assert!(handshake.contains("(2 shards"), "handshake: {handshake}");
    let addr = handshake
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();

    let (status, body) = http(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");

    // Served JSON is byte-identical to `detect --json` for the same bytes.
    let csv = fs::read(&probe).unwrap();
    let (status, body) = http(&addr, "POST", "/classify", &csv);
    assert_eq!(status, 200, "classify body: {body}");
    assert_eq!(body.trim(), expected);

    let (status, metrics) = http(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(metrics.contains("strudel_requests_total{endpoint=\"classify\",outcome=\"ok\"} 1"));

    let (status, body) = http(&addr, "POST", "/admin/shutdown", b"");
    assert_eq!(status, 200, "shutdown body: {body}");
    let exit = child.0.wait().unwrap();
    assert!(exit.success(), "serve exited with {exit}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadtest_drives_a_running_daemon_and_reports_percentiles() {
    let dir = temp_dir("loadtest");
    let model = train_tiny_model(&dir);
    let body = dir.join("body.csv");
    fs::write(&body, "Region,2019,2020\nKent,12,34\nSurrey,56,78\n").unwrap();

    let mut child = ServeGuard(
        bin()
            .args(["serve", "--port", "0", "--threads", "2"])
            .arg("--model")
            .arg(&model)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let mut handshake = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut handshake)
        .unwrap();
    let addr = handshake
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();
    let (host, port) = addr.split_once(':').expect("host:port in handshake");

    // Open-loop arrivals are deterministic: 200 rps over a 400 ms
    // window schedules exactly 80 requests, whatever the latencies.
    let out = bin()
        .args([
            "loadtest",
            "--host",
            host,
            "--port",
            port,
            "--rps",
            "200",
            "--duration-ms",
            "400",
            "--connections",
            "2",
        ])
        .arg(&body)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "loadtest failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("\"mode\": \"keepalive\""), "{report}");
    assert!(report.contains("\"path\": \"/classify\""), "{report}");
    assert!(report.contains("\"sent\": 80"), "{report}");
    assert!(report.contains("\"ok\": 80"), "{report}");
    assert!(report.contains("\"errors\": 0"), "{report}");
    assert!(report.contains("\"p99_us\": "), "{report}");

    // `--mode close` opens a connection per request and reports it.
    let out = bin()
        .args([
            "loadtest",
            "--host",
            host,
            "--port",
            port,
            "--path",
            "/healthz",
            "--mode",
            "close",
            "--rps",
            "100",
            "--duration-ms",
            "200",
            "--connections",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("\"mode\": \"close\""), "{report}");
    assert!(report.contains("\"ok\": 20"), "{report}");

    let (status, _) = http(&addr, "POST", "/admin/shutdown", b"");
    assert_eq!(status, 200);
    assert!(child.0.wait().unwrap().success());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn threads_flag_and_env_are_respected() {
    let dir = temp_dir("threads");
    let model = train_tiny_model(&dir);
    let corpus = dir.join("corpus");

    // --threads pins the batch worker count in the report.
    let out = bin()
        .args(["batch", "--threads", "2"])
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"n_threads\": 2"), "{stdout}");

    // Without the flag, STRUDEL_THREADS decides.
    let out = bin()
        .arg("batch")
        .env("STRUDEL_THREADS", "3")
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"n_threads\": 3"), "{stdout}");

    // The explicit flag beats the environment.
    let out = bin()
        .args(["batch", "--threads", "1"])
        .env("STRUDEL_THREADS", "3")
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"n_threads\": 1"), "{stdout}");

    // serve resolves the same way: STRUDEL_THREADS sets the pool size
    // when --threads is absent.
    let mut child = ServeGuard(
        bin()
            .args(["serve", "--port", "0"])
            .env("STRUDEL_THREADS", "3")
            .arg("--model")
            .arg(&model)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let mut handshake = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut handshake)
        .unwrap();
    assert!(handshake.contains("(3 shards"), "handshake: {handshake}");
    let addr = handshake
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();
    let (status, _) = http(&addr, "POST", "/admin/shutdown", b"");
    assert_eq!(status, 200);
    assert!(child.0.wait().unwrap().success());

    // ... and an explicit --threads beats the environment for serve
    // exactly as it does for batch: every entry point funnels through
    // the same `resolve_threads`.
    let mut child = ServeGuard(
        bin()
            .args(["serve", "--port", "0", "--threads", "2"])
            .env("STRUDEL_THREADS", "3")
            .arg("--model")
            .arg(&model)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let mut handshake = String::new();
    BufReader::new(child.0.stdout.take().unwrap())
        .read_line(&mut handshake)
        .unwrap();
    assert!(handshake.contains("(2 shards"), "handshake: {handshake}");
    let addr = handshake
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in handshake")
        .to_string();
    let (status, _) = http(&addr, "POST", "/admin/shutdown", b"");
    assert_eq!(status, 200);
    assert!(child.0.wait().unwrap().success());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn detect_stream_json_is_byte_identical_to_whole_file() {
    let dir = temp_dir("stream-detect");
    let model = train_tiny_model(&dir);
    let probe = dir.join("probe.csv");
    fs::write(
        &probe,
        "Survey of crime outcomes,,\n,,\n,Rate 1,Rate 2\nKent,12,34\nSurrey,56,78\nTotal,68,112\n,,\nSource: national statistics office,,\n",
    )
    .unwrap();

    let whole = bin()
        .args(["detect", "--json"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(whole.status.success());
    let streamed = bin()
        .args(["detect", "--json", "--stream"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(
        streamed.status.success(),
        "detect --stream failed: {}",
        String::from_utf8_lossy(&streamed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&streamed.stdout),
        String::from_utf8_lossy(&whole.stdout),
        "streaming JSON must be byte-identical to the whole-file path"
    );

    // The human rendering agrees too.
    let whole = bin()
        .args(["detect", "--cells"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    let streamed = bin()
        .args(["detect", "--cells", "--stream"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert_eq!(
        String::from_utf8_lossy(&streamed.stdout),
        String::from_utf8_lossy(&whole.stdout)
    );

    // Limit violations keep their payload and exit code through the
    // streaming path: same `input_bytes` category, exit 6.
    let out = bin()
        .args(["detect", "--stream", "--max-bytes", "10"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6), "limit errors must exit 6");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("input_bytes"), "stderr: {stderr}");

    // --max-total-bytes is the stream-wide cap, same exit code.
    let out = bin()
        .args(["detect", "--stream", "--max-total-bytes", "10"])
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6));
    assert!(String::from_utf8_lossy(&out.stderr).contains("input_bytes"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_stream_reports_same_outcomes_and_peak_rss() {
    let dir = temp_dir("stream-batch");
    let model = train_tiny_model(&dir);
    let corpus = dir.join("corpus");
    fs::write(corpus.join("broken.csv"), [0xFF, 0xFE, 0x41]).unwrap();

    let whole = bin()
        .args(["batch", "--threads", "2"])
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(whole.status.success());
    let streamed = bin()
        .args(["batch", "--threads", "2", "--stream"])
        .arg("--model")
        .arg(&model)
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        streamed.status.success(),
        "batch --stream failed: {}",
        String::from_utf8_lossy(&streamed.stderr)
    );
    let stdout = String::from_utf8_lossy(&streamed.stdout);
    assert!(stdout.contains("\"n_files\": 13"), "{stdout}");
    assert!(stdout.contains("\"ok\": 12"), "{stdout}");
    assert!(stdout.contains("\"failed\": 1"), "{stdout}");
    assert!(stdout.contains("\"category\": \"parse\""), "{stdout}");
    assert!(stdout.contains("\"stream\":"), "{stdout}");
    // Per-file rows/cells/bytes agree with the whole-file batch (every
    // synthetic file fits one default window).
    let pick = |s: &str, key: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("\"ok\": true"))
            .map(|l| {
                let at = l.find(key).expect(key);
                l[at..].chars().take_while(|c| *c != ',').collect()
            })
            .collect()
    };
    let whole_stdout = String::from_utf8_lossy(&whole.stdout);
    for key in ["\"rows\":", "\"cells\":", "\"bytes\":"] {
        assert_eq!(pick(&stdout, key), pick(&whole_stdout, key), "{key}");
    }
    // The machine-parseable peak-RSS line backs the O(window) claim.
    let stderr = String::from_utf8_lossy(&streamed.stderr);
    if cfg!(target_os = "linux") {
        let rss: u64 = stderr
            .lines()
            .find_map(|l| l.strip_prefix("peak_rss_bytes: "))
            .expect("peak_rss_bytes line on Linux")
            .trim()
            .parse()
            .unwrap();
        assert!(rss > 0);
    }
    fs::remove_dir_all(&dir).ok();
}

/// The memory bound itself: a ~100 MB input classified by `batch
/// --stream` must peak far below the file size (O(window), with the
/// default 8 MiB window). Ignored by default — it writes a 100 MB file
/// and takes a while; CI runs it via the bench smoke instead.
#[test]
#[ignore = "writes a ~100 MB fixture; run explicitly or via scripts/bench_stream.sh"]
fn stream_batch_peak_rss_is_bounded_by_the_window() {
    let dir = temp_dir("stream-rss");
    let model = train_tiny_model(&dir);
    let big = dir.join("big.csv");
    {
        use std::io::Write as _;
        let mut f = std::io::BufWriter::new(fs::File::create(&big).unwrap());
        writeln!(f, "Annual report of everything,,").unwrap();
        writeln!(f, "Region,2019,2020").unwrap();
        let mut written = 0u64;
        let mut i = 0u64;
        while written < 100 * 1024 * 1024 {
            let row = format!("Region{i},{},{}\n", i % 997, (i * 7) % 1009);
            written += row.len() as u64;
            f.write_all(row.as_bytes()).unwrap();
            i += 1;
        }
    }
    // A 1 MiB / 8k-row window: the per-window working set (parsed grid
    // + feature matrices) stays in the tens of MiB, an order of
    // magnitude below the file, so the ceiling can sit *under* the file
    // size — peaking below it is only possible with O(window) memory.
    let out = bin()
        .args([
            "batch",
            "--stream",
            "--threads",
            "1",
            "--window-rows",
            "8192",
            "--window-bytes",
            "1048576",
        ])
        .arg("--model")
        .arg(&model)
        .arg(&big)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "batch --stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    let rss: u64 = stderr
        .lines()
        .find_map(|l| l.strip_prefix("peak_rss_bytes: "))
        .expect("peak_rss_bytes line")
        .trim()
        .parse()
        .unwrap();
    let file_size = fs::metadata(&big).unwrap().len();
    assert!(file_size >= 100 * 1024 * 1024);
    let ceiling = 96 * 1024 * 1024;
    assert!(
        rss < ceiling,
        "peak RSS {rss} exceeds the {ceiling} ceiling (file is {file_size})"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn pack_unpack_roundtrip_is_byte_identical() {
    let dir = temp_dir("pack");
    let model = train_tiny_model(&dir);
    let probe = dir.join("probe.csv");
    let original =
        "Survey of crime outcomes,,\n,,\n,Rate 1,Rate 2\nKent,12,34\nSurrey,56,78\nTotal,68,112\n,,\nSource: national statistics office,,\n";
    fs::write(&probe, original).unwrap();

    // pack writes a STRUPAK1 container and reports the ratio on stderr.
    let container = dir.join("probe.pack");
    let out = bin()
        .arg("pack")
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .arg("--out")
        .arg(&container)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "pack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let packed = fs::read(&container).unwrap();
    assert!(packed.starts_with(b"STRUPAK1"), "missing container magic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("group(s)"), "stderr: {stderr}");

    // unpack without selectors reproduces the original byte for byte,
    // both to stdout and through --out.
    let out = bin().arg("unpack").arg(&container).output().unwrap();
    assert!(
        out.status.success(),
        "unpack failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, original.as_bytes(), "unpack must be lossless");
    let restored = dir.join("restored.csv");
    let out = bin()
        .arg("unpack")
        .arg(&container)
        .arg("--out")
        .arg(&restored)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(fs::read(&restored).unwrap(), original.as_bytes());

    // --table 0 extracts one table: every emitted line is a line of the
    // original file (header rows verbatim, body rows reassembled under
    // the same dialect), and nothing else rides along.
    let out = bin()
        .args(["unpack", "--table", "0"])
        .arg(&container)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "unpack --table failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(!table.trim().is_empty(), "table 0 must not be empty");
    for line in table.lines() {
        assert!(
            original.lines().any(|l| l == line),
            "extracted line {line:?} not in the original"
        );
    }
    assert!(
        !table.contains("Survey of crime outcomes"),
        "metadata must not leak into --table output:\n{table}"
    );

    // A table index past the directory is a typed table error (exit 5);
    // an unknown column name is a usage error (exit 1) listing what the
    // container does have.
    let out = bin()
        .args(["unpack", "--table", "99"])
        .arg(&container)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "bad table index must exit 5");
    let out = bin()
        .args(["unpack", "--column", "no such column"])
        .arg(&container)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "unknown column must exit 1");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no column named"));

    // A corrupt container is a typed parse error (exit 3), not a panic.
    let garbage = dir.join("garbage.pack");
    fs::write(&garbage, b"STRUPAK1 but not really").unwrap();
    let out = bin().arg("unpack").arg(&garbage).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "corrupt containers must exit 3");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_without_inputs_fails() {
    let out = bin().arg("batch").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("input"));
}

#[test]
fn missing_arguments_fail_with_usage() {
    let out = bin().arg("train").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--corpus"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn synth_rejects_unknown_dataset() {
    let dir = temp_dir("baddataset");
    let out = bin()
        .args(["synth", "--dataset", "NOPE"])
        .arg("--out")
        .arg(dir.join("x"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn segments_command_reports_regions() {
    let dir = temp_dir("segments");
    let corpus = dir.join("corpus");
    let model = dir.join("model.strudel");
    assert!(bin()
        .args([
            "synth",
            "--dataset",
            "DeEx",
            "--files",
            "14",
            "--scale",
            "0.2"
        ])
        .arg("--out")
        .arg(&corpus)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["train", "--trees", "15"])
        .arg("--corpus")
        .arg(&corpus)
        .arg("--out")
        .arg(&model)
        .status()
        .unwrap()
        .success());
    let probe = dir.join("stacked.csv");
    fs::write(
        &probe,
        "Quarterly widget output,,\n,Q1,Q2\nWidgets,120,135\nGaskets,80,70\n,,\nTable 2. Staffing,,\n,North,South\nEngineers,12,9\nClerks,4,6\n,,\nNote: preliminary,,\n",
    )
    .unwrap();
    let out = bin()
        .arg("segments")
        .arg("--model")
        .arg(&model)
        .arg(&probe)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("table region"), "{stdout}");
    assert!(stdout.contains("region 0:"));
    fs::remove_dir_all(&dir).ok();
}
