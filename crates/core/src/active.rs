//! Active learning for annotation-efficient training, after Chen et al.
//! (CIKM 2017 — reference \[7\] of the paper).
//!
//! The paper motivates its corpus by the cost of manual annotation
//! ("practitioners took on average two minutes to label the lines in a
//! single file"). Chen et al. reduce that cost with an active-learning
//! loop: a *sheet selector* repeatedly presents the most uncertain file
//! to human labelers. This module provides the selector for Strudel —
//! file uncertainty is the mean normalised entropy of the line model's
//! probability vectors — and the `ablation_active_learning` experiment
//! simulates the loop against random selection.

use crate::line_classifier::StrudelLine;
use strudel_table::{ElementClass, Table};

/// Normalised Shannon entropy of one probability vector (0 = certain,
/// 1 = uniform).
pub fn normalized_entropy(probs: &[f64]) -> f64 {
    let h: f64 = probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum();
    let max = (probs.len() as f64).ln();
    if max <= 0.0 {
        0.0
    } else {
        (h / max).clamp(0.0, 1.0)
    }
}

/// Uncertainty of one file under a fitted line model: the mean
/// normalised entropy over its non-empty lines (0 when the file has
/// none).
pub fn file_uncertainty(model: &StrudelLine, table: &Table) -> f64 {
    let probs = model.predict_probs(table);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (r, p) in probs.iter().enumerate() {
        if !table.row_is_empty(r) {
            sum += normalized_entropy(p);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The sheet selector: indices of the `k` most uncertain candidate
/// tables, most uncertain first (ties keep candidate order).
pub fn select_most_uncertain(model: &StrudelLine, candidates: &[&Table], k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, t)| (i, file_uncertainty(model, t)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(k).map(|(i, _)| i).collect()
}

/// Sanity helper for tests and experiments: the entropy of a uniform
/// distribution over the six classes is exactly 1.
pub fn uniform_entropy() -> f64 {
    normalized_entropy(&[1.0 / ElementClass::COUNT as f64; ElementClass::COUNT])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use strudel_ml::ForestConfig;

    #[test]
    fn entropy_bounds() {
        assert_eq!(normalized_entropy(&[1.0, 0.0, 0.0]), 0.0);
        assert!((uniform_entropy() - 1.0).abs() < 1e-12);
        let mid = normalized_entropy(&[0.5, 0.5, 0.0]);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn familiar_files_are_more_certain_than_alien_ones() {
        let corpus = tiny_corpus(8);
        let model = StrudelLine::fit(
            &corpus.files,
            &StrudelLineConfig {
                forest: ForestConfig::fast(20, 1),
                ..StrudelLineConfig::default()
            },
        );
        let familiar = file_uncertainty(&model, &corpus.files[0].table);
        // An alien layout: prose-length cells mixed with numbers.
        let alien = Table::from_rows(vec![
            vec!["zzz qqq xxx www vvv", "17", "alpha beta"],
            vec!["9", "uuu ttt sss", "3.5"],
            vec!["gamma delta epsilon", "8", "12"],
        ]);
        let alien_u = file_uncertainty(&model, &alien);
        assert!(
            alien_u > familiar,
            "alien {alien_u} should exceed familiar {familiar}"
        );
    }

    #[test]
    fn selector_ranks_by_uncertainty() {
        let corpus = tiny_corpus(8);
        let model = StrudelLine::fit(
            &corpus.files,
            &StrudelLineConfig {
                forest: ForestConfig::fast(20, 2),
                ..StrudelLineConfig::default()
            },
        );
        let alien = Table::from_rows(vec![
            vec!["zzz qqq xxx", "17", "alpha beta gamma"],
            vec!["9", "uuu ttt", "3.5"],
        ]);
        let familiar = corpus.files[0].table.clone();
        let picks = select_most_uncertain(&model, &[&familiar, &alien], 1);
        assert_eq!(picks, vec![1]);
        let picks = select_most_uncertain(&model, &[&familiar, &alien], 5);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn empty_table_has_zero_uncertainty() {
        let corpus = tiny_corpus(4);
        let model = StrudelLine::fit(
            &corpus.files,
            &StrudelLineConfig {
                forest: ForestConfig::fast(10, 3),
                ..StrudelLineConfig::default()
            },
        );
        let empty = Table::from_rows(Vec::<Vec<String>>::new());
        assert_eq!(file_uncertainty(&model, &empty), 0.0);
    }
}
