//! Per-table analysis cache shared across feature extractors.
//!
//! The derived-cell mask (Algorithm 2) feeds three feature families —
//! `DerivedCoverage` in the line features, `IsAggregation` in the cell
//! features, and `ColDerivedCellRatio` in the column features — and is
//! by far the most expensive per-file precomputation. [`TableAnalysis`]
//! computes it **exactly once per table** and hands it to every
//! extractor; each `extract_*_with` entry point accepts one, and the
//! plain entry points stay as convenience wrappers that build their own.
//!
//! A cache is only valid for the [`DerivedConfig`] it was computed with;
//! [`TableAnalysis::derived_for`] checks the requested configuration and
//! transparently recomputes on mismatch (correctness first — sharing is
//! an optimisation, never an answer change).

use crate::derived::{detect_derived_cells, detect_derived_cells_view, DerivedConfig};
use std::borrow::Cow;
use strudel_table::{CellView, GridView, LabeledFile, Table};

/// Cached single-pass analysis of one table: the derived-cell mask of
/// Algorithm 2 under one detector configuration.
#[derive(Debug, Clone)]
pub struct TableAnalysis {
    config: DerivedConfig,
    derived: Vec<Vec<bool>>,
}

impl TableAnalysis {
    /// Run the derived-cell detector once and cache the mask.
    pub fn compute(table: &Table, config: DerivedConfig) -> TableAnalysis {
        TableAnalysis::compute_view(table.view(), config)
    }

    /// [`compute`](Self::compute) over any cell grid — the zero-copy
    /// detection path analyses the borrowed grid directly.
    pub fn compute_view<C: CellView>(
        table: GridView<'_, C>,
        config: DerivedConfig,
    ) -> TableAnalysis {
        TableAnalysis {
            config,
            derived: detect_derived_cells_view(table, &config),
        }
    }

    /// The configuration the cached mask was computed with.
    pub fn config(&self) -> DerivedConfig {
        self.config
    }

    /// The cached `n_rows × n_cols` derived-cell mask.
    pub fn derived(&self) -> &[Vec<bool>] {
        &self.derived
    }

    /// The derived-cell mask for `config`: borrowed from the cache when
    /// the configuration matches, recomputed fresh otherwise (e.g. an
    /// ablation probing a non-default detector against a shared cache).
    pub fn derived_for(&self, table: &Table, config: &DerivedConfig) -> Cow<'_, Vec<Vec<bool>>> {
        if *config == self.config {
            Cow::Borrowed(&self.derived)
        } else {
            Cow::Owned(detect_derived_cells(table, config))
        }
    }

    /// [`derived_for`](Self::derived_for) over any cell grid.
    pub fn derived_for_view<C: CellView>(
        &self,
        table: GridView<'_, C>,
        config: &DerivedConfig,
    ) -> Cow<'_, Vec<Vec<bool>>> {
        if *config == self.config {
            Cow::Borrowed(&self.derived)
        } else {
            Cow::Owned(detect_derived_cells_view(table, config))
        }
    }
}

/// One [`TableAnalysis`] per file, in file order — the shape the
/// training paths consume so the line, cell, and column stages of one
/// `fit` all reuse the same per-file mask.
pub fn compute_analyses(files: &[LabeledFile], config: DerivedConfig) -> Vec<TableAnalysis> {
    files
        .iter()
        .map(|f| TableAnalysis::compute(&f.table, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(vec![
            vec!["State", "2019", "2020"],
            vec!["Berlin", "100", "120"],
            vec!["Hamburg", "80", "85"],
            vec!["Total", "180", "205"],
        ])
    }

    #[test]
    fn cached_mask_matches_direct_detection() {
        let t = sample();
        let config = DerivedConfig::default();
        let analysis = TableAnalysis::compute(&t, config);
        assert_eq!(analysis.derived(), detect_derived_cells(&t, &config));
        assert!(matches!(
            analysis.derived_for(&t, &config),
            Cow::Borrowed(_)
        ));
    }

    #[test]
    fn config_mismatch_recomputes() {
        let t = sample();
        let analysis = TableAnalysis::compute(&t, DerivedConfig::default());
        let other = DerivedConfig {
            detect_min_max: true,
            ..DerivedConfig::default()
        };
        let mask = analysis.derived_for(&t, &other);
        assert!(matches!(mask, Cow::Owned(_)));
        assert_eq!(*mask, detect_derived_cells(&t, &other));
    }
}
