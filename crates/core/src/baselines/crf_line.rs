//! `CRF^L`: the conditional-random-field line baseline (Adelfio & Samet,
//! PVLDB 2013), without stylistic/formula features.
//!
//! The original approach computes a feature sequence per document line
//! and trains a linear-chain CRF; continuous features are discretised
//! with *logarithmic binning*, which the authors report as their best
//! setting. The applicable (non-stylistic) features of \[2\] are a subset
//! of the Strudel line features: the baseline uses exactly that subset —
//! it does **not** see Strudel's novel `DiscountedCumulativeGain`,
//! `CellLengthDifference`, or computational `DerivedCoverage` features
//! (Section 4 credits those to this paper). The missing `DerivedCoverage`
//! is what leaves CRF^L behind on the `derived` class in Table 6. The
//! features are binned logarithmically into discrete ids and fed to the
//! [`strudel_ml::LinearChainCrf`] sequence labeller over the non-empty
//! lines of each file.

use crate::line_features::{extract_line_features, LineFeatureConfig};
use strudel_ml::{CrfConfig, LinearChainCrf, SequenceSample};
use strudel_table::{ElementClass, LabeledFile, Table};

/// Number of logarithmic bins per feature (0, (0,2^-5], ..., (0.5,1), 1).
const BINS_PER_FEATURE: usize = 8;

/// Configuration of the `CRF^L` baseline.
#[derive(Debug, Clone, Copy)]
pub struct CrfLineConfig {
    /// Line feature extraction parameters (shared with `Strudel^L`).
    pub features: LineFeatureConfig,
    /// Training epochs of the sequence labeller.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
    /// Also use Strudel's novel features (DCG, CellLengthDifference,
    /// DerivedCoverage). Off by default — the published baseline does not
    /// have them; turning this on measures how much of Strudel's edge is
    /// the features rather than the learner.
    pub use_strudel_novel_features: bool,
}

impl Default for CrfLineConfig {
    fn default() -> Self {
        CrfLineConfig {
            features: LineFeatureConfig::default(),
            epochs: 15,
            seed: 0,
            use_strudel_novel_features: false,
        }
    }
}

/// Indices (into the Strudel line feature vector) of the features that
/// originate in Adelfio & Samet's applicable set: everything except
/// `DiscountedCumulativeGain` (1), `CellLengthDifference` (11, 12), and
/// `DerivedCoverage` (13).
const ADELFIO_FEATURES: [usize; 10] = [0, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// A fitted `CRF^L` model.
pub struct CrfLine {
    crf: LinearChainCrf,
    features: LineFeatureConfig,
    selected: Vec<usize>,
}

impl CrfLine {
    /// Fit on the labeled files; each file contributes one sequence of
    /// its non-empty lines.
    ///
    /// # Panics
    /// Panics when no file contains a labeled line.
    pub fn fit(files: &[LabeledFile], config: &CrfLineConfig) -> CrfLine {
        let selected: Vec<usize> = if config.use_strudel_novel_features {
            (0..config.features.n_features()).collect()
        } else {
            ADELFIO_FEATURES.to_vec()
        };
        let n_feature_ids = selected.len() * BINS_PER_FEATURE;
        let sequences: Vec<SequenceSample> = files
            .iter()
            .filter_map(|file| {
                let matrix = extract_line_features(&file.table, &config.features);
                let mut features = Vec::new();
                let mut labels = Vec::new();
                for (r, row) in matrix.iter().enumerate() {
                    if let Some(label) = file.line_labels[r] {
                        features.push(bin_features(row, &selected));
                        labels.push(label.index());
                    }
                }
                (!labels.is_empty()).then_some(SequenceSample { features, labels })
            })
            .collect();
        assert!(
            !sequences.is_empty(),
            "no labeled lines in the training files"
        );
        let crf = LinearChainCrf::fit(
            &sequences,
            &CrfConfig {
                n_features: n_feature_ids,
                n_labels: ElementClass::COUNT,
                epochs: config.epochs,
                seed: config.seed,
            },
        );
        CrfLine {
            crf,
            features: config.features,
            selected,
        }
    }

    /// Predict per-line classes (`None` for empty lines) by Viterbi
    /// decoding the file's non-empty line sequence.
    pub fn predict(&self, table: &Table) -> Vec<Option<ElementClass>> {
        let matrix = extract_line_features(table, &self.features);
        let non_empty: Vec<usize> = (0..table.n_rows())
            .filter(|&r| !table.row_is_empty(r))
            .collect();
        let sequence: Vec<Vec<u32>> = non_empty
            .iter()
            .map(|&r| bin_features(&matrix[r], &self.selected))
            .collect();
        let decoded = self.crf.viterbi(&sequence);
        let mut out = vec![None; table.n_rows()];
        for (pos, &r) in non_empty.iter().enumerate() {
            out[r] = Some(ElementClass::from_index(decoded[pos]));
        }
        out
    }
}

/// Logarithmic binning of the selected features into discrete ids.
///
/// Values are expected in `[-1, 1]`-ish ranges (Strudel line features are
/// `[0, 1]`): bin 0 for `v <= 0`, bin `BINS_PER_FEATURE - 1` for `v >= 1`,
/// and log₂-spaced bins in between, so small ratios are distinguished
/// more finely than large ones — the generalisation benefit Adelfio &
/// Samet report for their logarithmic binning.
fn bin_features(row: &[f64], selected: &[usize]) -> Vec<u32> {
    selected
        .iter()
        .enumerate()
        .map(|(slot, &j)| {
            let v = row[j];
            let bin = if v <= 0.0 {
                0
            } else if v >= 1.0 {
                BINS_PER_FEATURE - 1
            } else {
                // -log2(v) in (0, inf); clamp into the middle bins 1..=6.
                let level = (-v.log2()).floor() as usize;
                BINS_PER_FEATURE - 2 - level.min(BINS_PER_FEATURE - 3)
            };
            (slot * BINS_PER_FEATURE + bin) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;

    #[test]
    fn bins_are_monotone_in_value() {
        let all = [0usize];
        let ids_low = bin_features(&[0.01], &all);
        let ids_mid = bin_features(&[0.3], &all);
        let ids_high = bin_features(&[0.9], &all);
        assert!(ids_low[0] < ids_mid[0]);
        assert!(ids_mid[0] < ids_high[0]);
        assert_eq!(bin_features(&[0.0], &all)[0], 0);
        assert_eq!(bin_features(&[1.0], &all)[0], (BINS_PER_FEATURE - 1) as u32);
    }

    #[test]
    fn bins_offset_by_selected_slot() {
        let ids = bin_features(&[0.0, 0.0, 1.0], &[0, 1, 2]);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[1], BINS_PER_FEATURE as u32);
        assert_eq!(ids[2], (2 * BINS_PER_FEATURE + BINS_PER_FEATURE - 1) as u32);
        // Selection re-slots feature ids: feature 13 in slot 0.
        let row = [0.0; 14];
        let ids = bin_features(&row, &[13]);
        assert_eq!(ids[0], 0);
    }

    #[test]
    fn default_excludes_strudel_novel_features() {
        for novel in [1usize, 11, 12, 13] {
            assert!(!ADELFIO_FEATURES.contains(&novel));
        }
        assert_eq!(ADELFIO_FEATURES.len(), 10);
    }

    #[test]
    fn learns_the_tiny_corpus() {
        let corpus = tiny_corpus(8);
        let model = CrfLine::fit(&corpus.files, &CrfLineConfig::default());
        let probe = &corpus.files[0];
        let pred = model.predict(&probe.table);
        let correct = pred
            .iter()
            .zip(&probe.line_labels)
            .filter(|(p, g)| p == g)
            .count();
        assert!(correct >= 5, "only {correct}/6 lines correct");
    }

    #[test]
    fn empty_lines_stay_unlabeled() {
        let corpus = tiny_corpus(4);
        let model = CrfLine::fit(&corpus.files, &CrfLineConfig::default());
        let t = Table::from_rows(vec![vec!["a", "1"], vec!["", ""], vec!["b", "2"]]);
        let pred = model.predict(&t);
        assert_eq!(pred[1], None);
        assert!(pred[0].is_some() && pred[2].is_some());
    }
}
