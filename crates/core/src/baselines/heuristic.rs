//! A training-free heuristic cell baseline in the spirit of UCheck
//! (Abraham & Erwig, JVLC 2007 — reference [1] of the paper), which
//! detects "cell roles" with hand-written heuristics.
//!
//! Unlike the learned approaches, this classifier uses no training data
//! at all: a handful of positional and content rules assign each
//! non-empty cell a class. It is *not* part of the paper's evaluation —
//! UCheck assumes spreadsheets containing only table regions — but it
//! makes a useful floor: any learned model should clear it comfortably,
//! and on standard-shaped files it is surprisingly competitive.
//!
//! Rules (applied top-down, first match wins):
//! 1. cells in the leading text block (before any numeric line) →
//!    `metadata`;
//! 2. cells in trailing text lines (after the last numeric line) →
//!    `notes`;
//! 3. cells of the first mostly-non-numeric line directly above the
//!    first numeric line → `header`;
//! 4. numeric cells in lines whose leading cell holds an aggregation
//!    keyword → `derived` (the keyword cell itself → `group`);
//! 5. sole non-empty text cell of a line between numeric lines →
//!    `group`;
//! 6. everything else → `data`.

use crate::cell_classifier::CellPrediction;
use crate::keywords::has_aggregation_keyword;
use strudel_table::{DataType, ElementClass, Table};

/// The training-free heuristic cell classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicCell;

fn numeric_line(table: &Table, r: usize) -> bool {
    let numeric = table.row(r).filter(|c| c.dtype().is_numeric()).count();
    numeric * 2 >= table.row_non_empty_count(r).max(1)
}

impl HeuristicCell {
    /// Classify every non-empty cell of a table. Probability vectors are
    /// one-hot (heuristics have no calibrated confidence).
    pub fn predict(&self, table: &Table) -> Vec<CellPrediction> {
        let n_rows = table.n_rows();
        let numeric_rows: Vec<usize> = (0..n_rows).filter(|&r| numeric_line(table, r)).collect();
        let first_numeric = numeric_rows.first().copied();
        let last_numeric = numeric_rows.last().copied();
        // Rule 3: the header candidate line.
        let header_row = first_numeric.and_then(|fnr| {
            (0..fnr)
                .rev()
                .find(|&r| !table.row_is_empty(r) && !numeric_line(table, r))
                .filter(|&r| table.row_non_empty_count(r) >= 2)
        });

        let mut out = Vec::with_capacity(table.non_empty_count());
        for r in 0..n_rows {
            if table.row_is_empty(r) {
                continue;
            }
            let leading_keyword = table
                .row(r)
                .find(|c| !c.is_empty())
                .is_some_and(|c| has_aggregation_keyword(c.raw()));
            let single_text_line = table.row_non_empty_count(r) == 1
                && table
                    .row(r)
                    .find(|c| !c.is_empty())
                    .is_some_and(|c| c.dtype() == DataType::Str);
            for c in 0..table.n_cols() {
                let cell = table.cell(r, c);
                if cell.is_empty() {
                    continue;
                }
                let class = if first_numeric.is_none_or(|fnr| r < fnr) && Some(r) != header_row {
                    ElementClass::Metadata
                } else if last_numeric.is_some_and(|lnr| r > lnr) && !numeric_line(table, r) {
                    ElementClass::Notes
                } else if Some(r) == header_row {
                    ElementClass::Header
                } else if leading_keyword && numeric_line(table, r) {
                    if cell.dtype().is_numeric() {
                        ElementClass::Derived
                    } else {
                        ElementClass::Group
                    }
                } else if single_text_line {
                    ElementClass::Group
                } else {
                    ElementClass::Data
                };
                let mut probs = vec![0.0; ElementClass::COUNT];
                probs[class.index()] = 1.0;
                out.push(CellPrediction {
                    row: r,
                    col: c,
                    class,
                    probs,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(rows: Vec<Vec<&str>>) -> Vec<CellPrediction> {
        HeuristicCell.predict(&Table::from_rows(rows))
    }

    fn class_at(preds: &[CellPrediction], r: usize, c: usize) -> ElementClass {
        preds
            .iter()
            .find(|p| p.row == r && p.col == c)
            .expect("cell classified")
            .class
    }

    use ElementClass::*;

    #[test]
    fn standard_file_shape() {
        let preds = classify(vec![
            vec!["Crime report", "", ""],
            vec!["Area", "Rate", "Count"],
            vec!["Kent", "10", "20"],
            vec!["Surrey", "30", "40"],
            vec!["Total", "40", "60"],
            vec!["Source: office", "", ""],
        ]);
        assert_eq!(class_at(&preds, 0, 0), Metadata);
        assert_eq!(class_at(&preds, 1, 1), Header);
        assert_eq!(class_at(&preds, 2, 0), Data);
        assert_eq!(class_at(&preds, 2, 1), Data);
        assert_eq!(class_at(&preds, 4, 0), Group);
        assert_eq!(class_at(&preds, 4, 1), Derived);
        assert_eq!(class_at(&preds, 5, 0), Notes);
    }

    #[test]
    fn group_separator_between_data() {
        let preds = classify(vec![vec!["a", "1"], vec!["North:", ""], vec!["b", "2"]]);
        assert_eq!(class_at(&preds, 1, 0), Group);
    }

    #[test]
    fn file_without_numbers_is_all_metadata() {
        let preds = classify(vec![vec!["just text"], vec!["more text"]]);
        assert!(preds.iter().all(|p| p.class == Metadata));
    }

    #[test]
    fn probabilities_are_one_hot() {
        let preds = classify(vec![vec!["a", "1"]]);
        for p in preds {
            assert_eq!(p.probs.iter().sum::<f64>(), 1.0);
            assert_eq!(p.probs[p.class.index()], 1.0);
        }
    }
}
