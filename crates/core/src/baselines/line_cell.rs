//! `Line^C`: the line-extension cell baseline (Section 6.1.2).
//!
//! Most lines of a verbose CSV file are homogeneous (Table 3), so simply
//! extending the predicted class of a line to every non-empty cell in it
//! is a strong baseline — and exactly what this model does on top of a
//! fitted `Strudel^L`. Its characteristic failure, which the paper's
//! analysis highlights, is the minority cell inside a heterogeneous line:
//! the leading `group` cell of a `derived` line, or the few `derived`
//! cells of a derived *column* sitting inside `data` lines.

use crate::cell_classifier::CellPrediction;
use crate::line_classifier::{StrudelLine, StrudelLineConfig};
use strudel_table::{LabeledFile, Table};

/// The `Line^C` baseline: a fitted `Strudel^L` whose line predictions are
/// broadcast to cells.
pub struct LineCell {
    line_model: StrudelLine,
}

impl LineCell {
    /// Fit the underlying `Strudel^L` model.
    pub fn fit(files: &[LabeledFile], config: &StrudelLineConfig) -> LineCell {
        LineCell {
            line_model: StrudelLine::fit(files, config),
        }
    }

    /// Wrap an existing line model.
    pub fn from_line_model(line_model: StrudelLine) -> LineCell {
        LineCell { line_model }
    }

    /// Classify every non-empty cell by its line's predicted class.
    pub fn predict(&self, table: &Table) -> Vec<CellPrediction> {
        let probs = self.line_model.predict_probs(table);
        let lines = self.line_model.predict(table);
        let mut out = Vec::new();
        for r in 0..table.n_rows() {
            let Some(class) = lines[r] else { continue };
            for c in 0..table.n_cols() {
                if !table.cell(r, c).is_empty() {
                    out.push(CellPrediction {
                        row: r,
                        col: c,
                        class,
                        probs: probs[r].clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;
    use strudel_ml::ForestConfig;
    use strudel_table::ElementClass;

    #[test]
    fn broadcasts_line_class_to_cells() {
        let corpus = tiny_corpus(8);
        let config = StrudelLineConfig {
            forest: ForestConfig::fast(15, 5),
            ..StrudelLineConfig::default()
        };
        let model = LineCell::fit(&corpus.files, &config);
        let probe = &corpus.files[0];
        let preds = model.predict(&probe.table);
        assert_eq!(preds.len(), probe.non_empty_cell_count());
        // The characteristic Line^C failure: the Group cell leading the
        // Derived line is predicted Derived (its line's class).
        let group_cell = preds.iter().find(|p| p.row == 4 && p.col == 0).unwrap();
        assert_eq!(group_cell.class, ElementClass::Derived);
        assert_eq!(probe.cell_labels[4][0], Some(ElementClass::Group));
    }
}
