//! The baseline and state-of-the-art approaches of the paper's evaluation
//! (Section 6.1.2).
//!
//! - [`LineCell`] (`Line^C`) — extends a `Strudel^L` line prediction to
//!   every non-empty cell of the line;
//! - [`CrfLine`] (`CRF^L`) — Adelfio & Samet's conditional-random-field
//!   line classifier with logarithmic feature binning, without the
//!   stylistic features unavailable in CSV files;
//! - [`PytheasLine`] (`Pytheas^L`) — the fuzzy-rule table-discovery line
//!   classifier of Christodoulakis et al., restricted to the five classes
//!   it models (no `derived`);
//! - [`RnnCell`] (`RNN^C`) — the neural cell classifier of Ghasemi-Gol et
//!   al., reproduced as a cell-embedding + neighbour-context network (see
//!   DESIGN.md, substitution 2);
//! - [`HeuristicCell`] — a training-free UCheck-style rule baseline
//!   (related work \[1\]; not part of the paper's evaluation, provided as
//!   a floor).

mod crf_line;
mod heuristic;
mod line_cell;
mod pytheas;
mod rnn_cell;

pub use crf_line::{CrfLine, CrfLineConfig};
pub use heuristic::HeuristicCell;
pub use line_cell::LineCell;
pub use pytheas::{PytheasConfig, PytheasLine};
pub use rnn_cell::{RnnCell, RnnCellConfig};
