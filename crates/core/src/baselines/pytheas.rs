//! `Pytheas^L`: the fuzzy-rule table-discovery baseline (Christodoulakis
//! et al., PVLDB 2020).
//!
//! Pytheas classifies CSV lines in three stages: (1) a set of fuzzy rules
//! — whose weights are learned from training data — votes each line *data*
//! or *non-data*; (2) maximal runs of data lines become table bodies
//! (top/bottom boundary discovery); (3) class-specific positional rules
//! label the non-data lines around each body as `header`, `metadata`,
//! `group`, or `notes`. The approach has no notion of `derived` lines —
//! the evaluation therefore excludes derived lines when scoring it, as
//! the paper does (Section 6.2.1).
//!
//! Our rule set follows the signal families of the original (value-type
//! consistency with neighbours, numeric content, emptiness, keyword and
//! length cues); rule weights are learned as smoothed precisions on the
//! training lines, and rules combine disjunctively
//! (`1 − Π(1 − wᵢ)`), as in fuzzy-logic aggregation.

use crate::keywords::has_aggregation_keyword;
use strudel_table::{DataType, ElementClass, LabeledFile, Table};

/// Thresholds of the fuzzy rule predicates.
#[derive(Debug, Clone, Copy)]
pub struct PytheasConfig {
    /// Minimum numeric-cell ratio for the "numeric line" data rule.
    pub numeric_ratio: f64,
    /// Minimum empty-cell ratio for the "sparse line" non-data rule.
    pub empty_ratio: f64,
    /// Value length above which a lone text cell suggests prose.
    pub prose_length: usize,
}

impl Default for PytheasConfig {
    fn default() -> Self {
        PytheasConfig {
            numeric_ratio: 0.4,
            empty_ratio: 0.7,
            prose_length: 25,
        }
    }
}

/// Number of data-voting rules.
const N_DATA_RULES: usize = 6;
/// Number of non-data-voting rules.
const N_NONDATA_RULES: usize = 5;

/// A fitted `Pytheas^L` model: learned rule weights plus thresholds.
pub struct PytheasLine {
    data_weights: [f64; N_DATA_RULES],
    nondata_weights: [f64; N_NONDATA_RULES],
    config: PytheasConfig,
}

impl PytheasLine {
    /// Learn rule weights from labeled files: each rule's weight is its
    /// smoothed precision at predicting its own side (data / non-data).
    pub fn fit(files: &[LabeledFile], config: &PytheasConfig) -> PytheasLine {
        let mut data_fired = [0usize; N_DATA_RULES];
        let mut data_hit = [0usize; N_DATA_RULES];
        let mut nondata_fired = [0usize; N_NONDATA_RULES];
        let mut nondata_hit = [0usize; N_NONDATA_RULES];

        for file in files {
            for r in 0..file.table.n_rows() {
                let Some(label) = file.line_labels[r] else {
                    continue;
                };
                let is_data = matches!(label, ElementClass::Data | ElementClass::Derived);
                let (d, nd) = rules_fired(&file.table, r, config);
                for (k, &fired) in d.iter().enumerate() {
                    if fired {
                        data_fired[k] += 1;
                        if is_data {
                            data_hit[k] += 1;
                        }
                    }
                }
                for (k, &fired) in nd.iter().enumerate() {
                    if fired {
                        nondata_fired[k] += 1;
                        if !is_data {
                            nondata_hit[k] += 1;
                        }
                    }
                }
            }
        }

        let mut data_weights = [0.0; N_DATA_RULES];
        for k in 0..N_DATA_RULES {
            data_weights[k] = (data_hit[k] as f64 + 1.0) / (data_fired[k] as f64 + 2.0);
        }
        let mut nondata_weights = [0.0; N_NONDATA_RULES];
        for k in 0..N_NONDATA_RULES {
            nondata_weights[k] = (nondata_hit[k] as f64 + 1.0) / (nondata_fired[k] as f64 + 2.0);
        }
        PytheasLine {
            data_weights,
            nondata_weights,
            config: *config,
        }
    }

    /// Fuzzy data-confidence of a line: disjunctive combination of the
    /// fired rules on each side; positive margin means *data*.
    fn data_margin(&self, table: &Table, row: usize) -> f64 {
        let (d, nd) = rules_fired(table, row, &self.config);
        let combine = |fired: &[bool], weights: &[f64]| {
            let mut not_conf = 1.0;
            for (k, &f) in fired.iter().enumerate() {
                if f {
                    not_conf *= 1.0 - weights[k];
                }
            }
            1.0 - not_conf
        };
        combine(&d, &self.data_weights) - combine(&nd, &self.nondata_weights)
    }

    /// Predict per-line classes (`None` for empty lines).
    // Row ranges index both `out` and `table`; iterator form would hide
    // that the same row drives both.
    #[allow(clippy::needless_range_loop)]
    pub fn predict(&self, table: &Table) -> Vec<Option<ElementClass>> {
        let n_rows = table.n_rows();
        let mut out = vec![None; n_rows];
        if n_rows == 0 {
            return out;
        }

        // Stage 1: binary data / non-data votes.
        let is_data: Vec<bool> = (0..n_rows)
            .map(|r| !table.row_is_empty(r) && self.data_margin(table, r) > 0.0)
            .collect();

        // Stage 2: table bodies = maximal data runs; empty lines inside a
        // run do not break it, and a single-cell non-data separator line
        // between two runs is absorbed as a `group` line.
        #[derive(Clone, Copy)]
        struct Body {
            start: usize,
            end: usize, // inclusive
        }
        let mut bodies: Vec<Body> = Vec::new();
        let mut group_rows: Vec<usize> = Vec::new();
        let mut r = 0;
        while r < n_rows {
            if is_data[r] {
                let start = r;
                let mut end = r;
                let mut probe = r + 1;
                while probe < n_rows {
                    if is_data[probe] {
                        end = probe;
                        probe += 1;
                    } else if table.row_is_empty(probe) && probe + 1 < n_rows && is_data[probe + 1]
                    {
                        probe += 1; // blank separator inside a table
                    } else if !table.row_is_empty(probe)
                        && table.row_non_empty_count(probe) == 1
                        && probe + 1 < n_rows
                        && is_data[probe + 1]
                    {
                        group_rows.push(probe); // group header splits a table
                        probe += 1;
                    } else {
                        break;
                    }
                }
                bodies.push(Body { start, end });
                r = probe;
            } else {
                r += 1;
            }
        }

        for body in &bodies {
            for row in body.start..=body.end {
                if !table.row_is_empty(row) {
                    out[row] = Some(ElementClass::Data);
                }
            }
        }
        for &row in &group_rows {
            out[row] = Some(ElementClass::Group);
        }

        // Stage 3: class-specific rules around each body.
        for (i, body) in bodies.iter().enumerate() {
            let context_start = if i == 0 { 0 } else { bodies[i - 1].end + 1 };
            // Scan upwards from the body: the closest non-empty context
            // line with >= 2 non-empty cells is the header; single-cell
            // lines adjacent to the body are group headers.
            let mut header_assigned = false;
            let mut adjacency = true;
            for row in (context_start..body.start).rev() {
                if out[row].is_some() || table.row_is_empty(row) {
                    if table.row_is_empty(row) {
                        adjacency = false;
                    }
                    continue;
                }
                if !header_assigned && table.row_non_empty_count(row) >= 2 {
                    out[row] = Some(ElementClass::Header);
                    header_assigned = true;
                } else if adjacency && table.row_non_empty_count(row) == 1 && !header_assigned {
                    out[row] = Some(ElementClass::Group);
                } else {
                    out[row] = Some(ElementClass::Metadata);
                }
            }
            // Notes directly after the previous body (separated context):
            // for bodies after the first, context lines *above* an
            // empty-line gap belong to the previous table as notes.
            if i > 0 {
                let mut seen_gap = false;
                for row in context_start..body.start {
                    if table.row_is_empty(row) {
                        seen_gap = true;
                        continue;
                    }
                    if !seen_gap && out[row] == Some(ElementClass::Metadata) {
                        out[row] = Some(ElementClass::Notes);
                    }
                }
            }
        }

        // Everything after the last body is notes; a file without any
        // body keeps all non-empty lines as metadata (nothing anchors a
        // table).
        let tail_start = bodies.last().map_or(0, |b| b.end + 1);
        for row in tail_start..n_rows {
            if out[row].is_none() && !table.row_is_empty(row) {
                out[row] = Some(if bodies.is_empty() {
                    ElementClass::Metadata
                } else {
                    ElementClass::Notes
                });
            }
        }
        out
    }
}

/// Evaluate the fuzzy rules on one line. Returns (data rules fired,
/// non-data rules fired).
fn rules_fired(
    table: &Table,
    row: usize,
    config: &PytheasConfig,
) -> ([bool; N_DATA_RULES], [bool; N_NONDATA_RULES]) {
    let n_cols = table.n_cols();
    let non_empty = table.row_non_empty_count(row);
    let numeric = table.row(row).filter(|c| c.dtype().is_numeric()).count();
    let strings = table
        .row(row)
        .filter(|c| c.dtype() == DataType::Str)
        .count();
    let empty = n_cols - non_empty;

    let type_match = |other: Option<usize>| -> bool {
        let Some(o) = other else { return false };
        non_empty >= 2
            && (0..n_cols).all(|c| table.cell(row, c).dtype() == table.cell(o, c).dtype())
    };

    let first_cell_string = table
        .row(row)
        .next()
        .is_some_and(|c| c.dtype() == DataType::Str);
    let rest_numeric = non_empty >= 2 && numeric * 2 >= non_empty.saturating_sub(1);
    let has_kw = table
        .row(row)
        .any(|c| !c.is_empty() && has_aggregation_keyword(c.raw()));
    let longest = table.row(row).map(|c| c.len()).max().unwrap_or(0);
    let max_words = table.row(row).map(|c| c.word_count()).max().unwrap_or(0);

    let data = [
        n_cols > 0 && numeric as f64 / n_cols as f64 >= config.numeric_ratio,
        type_match(table.next_non_empty_row(row)),
        type_match(table.prev_non_empty_row(row)),
        first_cell_string && rest_numeric,
        non_empty >= 3 && numeric >= 1,
        numeric >= 2,
    ];
    let nondata = [
        non_empty == 1,
        n_cols > 0 && empty as f64 / n_cols as f64 >= config.empty_ratio && non_empty <= 2,
        has_kw,
        numeric == 0 && longest >= config.prose_length,
        numeric == 0 && strings > 0 && max_words >= 5,
    ];
    (data, nondata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;

    #[test]
    fn recovers_structure_of_text_headed_table() {
        let corpus = tiny_corpus(8);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        let t = Table::from_rows(vec![
            vec!["Survey of outcomes by participant", ""],
            vec!["Name", "Score"],
            vec!["alice", "3.5"],
            vec!["bob", "2.75"],
            vec!["carla", "4.25"],
            vec!["Collected during the spring survey round", ""],
        ]);
        let pred = model.predict(&t);
        assert_eq!(pred[0], Some(ElementClass::Metadata));
        assert_eq!(pred[1], Some(ElementClass::Header));
        assert_eq!(pred[2], Some(ElementClass::Data));
        assert_eq!(pred[4], Some(ElementClass::Data));
        assert_eq!(pred[5], Some(ElementClass::Notes));
    }

    #[test]
    fn numeric_year_headers_vote_data_like_the_paper_reports() {
        // A header such as "State,2019,2020" is type-identical to the
        // data below it; Pytheas' fuzzy rules absorb it into the table
        // body — the error mode behind its low header F1 in Table 6.
        let corpus = tiny_corpus(8);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        let pred = model.predict(&corpus.files[0].table);
        assert_eq!(pred[1], Some(ElementClass::Data));
        assert_eq!(pred[2], Some(ElementClass::Data));
    }

    #[test]
    fn no_derived_predictions_ever() {
        let corpus = tiny_corpus(8);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        for file in &corpus.files {
            for p in model.predict(&file.table).into_iter().flatten() {
                assert_ne!(p, ElementClass::Derived);
            }
        }
    }

    #[test]
    fn file_without_table_is_metadata() {
        let corpus = tiny_corpus(4);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        let t = Table::from_rows(vec![
            vec!["This file only contains a long explanation of methods"],
            vec!["and another long line of prose about the survey design"],
        ]);
        let pred = model.predict(&t);
        assert!(pred
            .iter()
            .all(|p| *p == Some(ElementClass::Metadata) || p.is_none()));
    }

    #[test]
    fn group_separator_between_data_runs_is_absorbed() {
        let corpus = tiny_corpus(8);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        let t = Table::from_rows(vec![
            vec!["State", "2019", "2020"],
            vec!["Berlin", "10", "20"],
            vec!["Hamburg", "11", "21"],
            vec!["West region:", "", ""],
            vec!["Bonn", "12", "22"],
            vec!["Köln", "13", "23"],
        ]);
        let pred = model.predict(&t);
        assert_eq!(pred[3], Some(ElementClass::Group));
        assert_eq!(pred[4], Some(ElementClass::Data));
    }

    #[test]
    fn empty_lines_keep_none() {
        let corpus = tiny_corpus(4);
        let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
        let t = Table::from_rows(vec![vec!["a", "1"], vec!["", ""], vec!["b", "2"]]);
        let pred = model.predict(&t);
        assert_eq!(pred[1], None);
    }
}
