//! `RNN^C`: the neural cell-classification baseline (Ghasemi-Gol, Pujara,
//! Szekely; ICDM 2019), reproduced without pre-trained embeddings.
//!
//! The original classifies a cell with a recursive network over two
//! pre-trained embeddings — a contextual one and a stylistic one; the
//! paper compares against the *non-stylistic* variant. Pre-trained text
//! embeddings are unavailable offline, so we rebuild the same decision
//! function from first principles (DESIGN.md, substitution 2): each cell
//! gets a **content embedding** from character-class statistics, the
//! embeddings of its four direct neighbours supply **local context**, and
//! an MLP maps the concatenation to class probabilities.
//!
//! Crucially, the stand-in preserves the baseline's blind spots that the
//! paper's analysis calls out: no value-calculation mechanism (weak on
//! `derived`), no line-probability features, and no block-size feature.

use strudel_ml::{Classifier, Dataset, Mlp, MlpConfig};
use strudel_table::{Cell, ElementClass, LabeledFile, Table};

use crate::cell_classifier::CellPrediction;
use crate::keywords::has_aggregation_keyword;

/// Width of the per-cell content embedding.
const EMBED_DIM: usize = 12;
/// Neighbour offsets contributing context (N, S, W, E).
const CONTEXT_OFFSETS: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
/// Total network input width: own embedding + 4 neighbour embeddings +
/// 2 positional features.
const INPUT_DIM: usize = EMBED_DIM * (1 + CONTEXT_OFFSETS.len()) + 2;

/// Configuration of the `RNN^C` stand-in.
#[derive(Debug, Clone, Copy)]
pub struct RnnCellConfig {
    /// The underlying network's hyper-parameters.
    pub mlp: MlpConfig,
}

impl Default for RnnCellConfig {
    fn default() -> Self {
        RnnCellConfig {
            mlp: MlpConfig {
                hidden: 48,
                epochs: 30,
                ..MlpConfig::default()
            },
        }
    }
}

/// A fitted `RNN^C` stand-in.
pub struct RnnCell {
    net: Mlp,
}

impl RnnCell {
    /// Fit the network on every labeled non-empty cell of the files.
    ///
    /// # Panics
    /// Panics when `files` contains no labeled cell.
    pub fn fit(files: &[LabeledFile], config: &RnnCellConfig) -> RnnCell {
        let mut dataset = Dataset::new(INPUT_DIM, ElementClass::COUNT);
        for file in files {
            for (r, c, features) in embed_table(&file.table) {
                if let Some(label) = file.cell_labels[r][c] {
                    dataset.push(&features, label.index());
                }
            }
        }
        assert!(
            !dataset.is_empty(),
            "no labeled cells in the training files"
        );
        RnnCell {
            net: Mlp::fit(&dataset, &config.mlp),
        }
    }

    /// Classify every non-empty cell of a table.
    pub fn predict(&self, table: &Table) -> Vec<CellPrediction> {
        embed_table(table)
            .into_iter()
            .map(|(row, col, features)| {
                let probs = self.net.predict_proba(&features);
                CellPrediction {
                    row,
                    col,
                    class: ElementClass::from_index(strudel_ml::argmax(&probs)),
                    probs,
                }
            })
            .collect()
    }
}

/// Content embedding of one cell: character-class ratios, length, shape
/// flags, data-type one-hot. All components are in `[0, 1]`.
fn embed_cell(cell: &Cell) -> [f64; EMBED_DIM] {
    let raw = cell.raw();
    let n_chars = raw.chars().count().max(1) as f64;
    let digits = raw.chars().filter(|c| c.is_ascii_digit()).count() as f64;
    let alpha = raw.chars().filter(|c| c.is_alphabetic()).count() as f64;
    let punct = raw
        .chars()
        .filter(|c| !c.is_alphanumeric() && !c.is_whitespace())
        .count() as f64;
    let upper = raw.chars().filter(|c| c.is_uppercase()).count() as f64;
    let dtype = cell.dtype().code();
    [
        (cell.len() as f64 / 40.0).min(1.0),
        digits / n_chars,
        alpha / n_chars,
        punct / n_chars,
        upper / n_chars,
        (cell.word_count() as f64 / 10.0).min(1.0),
        f64::from(has_aggregation_keyword(raw)),
        // Data-type one-hot over int/float/string/date; empty cells
        // embed as all-zeros here plus zero length above.
        f64::from(dtype == 0.0),
        f64::from(dtype == 1.0),
        f64::from(dtype == 2.0),
        f64::from(dtype == 3.0),
        f64::from(cell.is_empty()),
    ]
}

/// Embed every non-empty cell with its 4-neighbour context and position.
fn embed_table(table: &Table) -> Vec<(usize, usize, Vec<f64>)> {
    let (n_rows, n_cols) = (table.n_rows(), table.n_cols());
    let mut out = Vec::new();
    for r in 0..n_rows {
        for c in 0..n_cols {
            let cell = table.cell(r, c);
            if cell.is_empty() {
                continue;
            }
            let mut f = Vec::with_capacity(INPUT_DIM);
            f.extend_from_slice(&embed_cell(cell));
            for &(dr, dc) in &CONTEXT_OFFSETS {
                match table.get(r as isize + dr, c as isize + dc) {
                    Some(n) => f.extend_from_slice(&embed_cell(n)),
                    None => f.extend_from_slice(&[0.0; EMBED_DIM]),
                }
            }
            f.push(r as f64 / (n_rows - 1).max(1) as f64);
            f.push(c as f64 / (n_cols - 1).max(1) as f64);
            debug_assert_eq!(f.len(), INPUT_DIM);
            out.push((r, c, f));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;

    #[test]
    fn embedding_shapes() {
        let t = Table::from_rows(vec![vec!["Total", "42"], vec!["x", ""]]);
        let embedded = embed_table(&t);
        assert_eq!(embedded.len(), 3);
        assert!(embedded.iter().all(|(_, _, f)| f.len() == INPUT_DIM));
    }

    #[test]
    fn keyword_flag_in_embedding() {
        let t = Table::from_rows(vec![vec!["Total", "42"]]);
        let embedded = embed_table(&t);
        let total = &embedded[0].2;
        assert_eq!(total[6], 1.0);
        let num = &embedded[1].2;
        assert_eq!(num[6], 0.0);
        assert_eq!(num[7], 1.0); // int one-hot
    }

    #[test]
    fn learns_dominant_cell_classes() {
        let corpus = tiny_corpus(10);
        let config = RnnCellConfig {
            mlp: MlpConfig {
                epochs: 40,
                seed: 3,
                ..RnnCellConfig::default().mlp
            },
        };
        let model = RnnCell::fit(&corpus.files, &config);
        let probe = &corpus.files[0];
        let preds = model.predict(&probe.table);
        let correct = preds
            .iter()
            .filter(|p| Some(p.class) == probe.cell_labels[p.row][p.col])
            .count();
        // The network learns the broad structure; it is allowed (and per
        // the paper, expected) to miss keyword-less derived cells.
        assert!(
            correct as f64 / preds.len() as f64 > 0.7,
            "only {correct}/{} cells correct",
            preds.len()
        );
    }
}
