//! Bounded worker-pool batch inference.
//!
//! [`detect_all`] pushes N inputs (paths or in-memory strings) through a
//! fitted [`Strudel`] model on a fixed pool of OS threads
//! (`std::thread::scope`, like forest training in `strudel-ml`) and
//! returns one [`Structure`] per input — in input order, byte-identical
//! to calling [`Strudel::detect_structure`] in a loop — plus a
//! [`BatchReport`] with per-stage wall-clock totals, per-file outcomes,
//! and aggregate throughput.
//!
//! A malformed input (unreadable path, invalid UTF-8, a violated
//! resource limit, or — as a last resort — a panic caught at the worker
//! boundary) yields a per-file typed [`StrudelError`]; it never poisons
//! the rest of the batch. [`BatchConfig::limits`] bounds what one file
//! may consume, including a per-file wall-clock budget
//! ([`Limits::max_file_wall`]), so one pathological input can neither
//! OOM nor stall the batch.
//!
//! ```no_run
//! use strudel::batch::{detect_all, BatchConfig, BatchInput};
//! # let model: strudel::Strudel = unimplemented!();
//! let inputs = vec![
//!     BatchInput::path("a.csv"),
//!     BatchInput::text("inline", "State,2019\nBerlin,1\n"),
//! ];
//! let result = detect_all(&model, &inputs, &BatchConfig::default());
//! assert_eq!(result.structures.len(), 2);
//! println!("{}", result.report.to_json());
//! ```

use crate::json::json_string;
use crate::metrics::{Stage, StageTimings};
use crate::pipeline::{Structure, Strudel};
use crate::stream::{StreamClassifier, StreamConfig, STREAM_CHUNK_BYTES};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use strudel_table::{Limits, StrudelError};

/// One input of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchInput {
    /// A file on disk, read (as UTF-8) by the worker that claims it.
    Path(PathBuf),
    /// Raw text with a caller-chosen identifier for the report.
    Text {
        /// Identifier used in the report and in errors.
        id: String,
        /// The raw file content.
        text: String,
    },
}

impl BatchInput {
    /// A path input.
    pub fn path(p: impl Into<PathBuf>) -> BatchInput {
        BatchInput::Path(p.into())
    }

    /// An in-memory text input under the given id.
    pub fn text(id: impl Into<String>, text: impl Into<String>) -> BatchInput {
        BatchInput::Text {
            id: id.into(),
            text: text.into(),
        }
    }

    /// The identifier this input appears under in the report.
    pub fn id(&self) -> String {
        match self {
            BatchInput::Path(p) => p.display().to_string(),
            BatchInput::Text { id, .. } => id.clone(),
        }
    }
}

impl From<PathBuf> for BatchInput {
    fn from(p: PathBuf) -> BatchInput {
        BatchInput::Path(p)
    }
}

impl From<&Path> for BatchInput {
    fn from(p: &Path) -> BatchInput {
        BatchInput::Path(p.to_path_buf())
    }
}

/// Configuration of a batch run.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Number of worker threads; `0` picks the available parallelism.
    /// Each worker runs whole files, so per-file inference is pinned to
    /// one thread whenever more than one worker exists (no
    /// oversubscription from nested parallelism).
    pub n_threads: usize,
    /// Per-file resource limits, including the wall-clock budget. The
    /// default is [`Limits::standard`]; use [`Limits::unbounded`] to
    /// reproduce the pre-guardrail behaviour.
    pub limits: Limits,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            n_threads: 0,
            limits: Limits::standard(),
        }
    }
}

/// Outcome of one input, successful or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileOutcome {
    /// Identifier of the input.
    pub id: String,
    /// Rows of the parsed table (0 on failure).
    pub n_rows: usize,
    /// Classified (non-empty) cells (0 on failure).
    pub n_cells: usize,
    /// Input size in bytes (0 when the input could not be read).
    pub n_bytes: usize,
    /// Wall-clock time spent on this input by its worker.
    pub elapsed: Duration,
    /// The failure, if any (rendered [`StrudelError`]).
    pub error: Option<String>,
    /// Stable error category ([`StrudelError::category`]) on failure.
    pub category: Option<&'static str>,
}

impl FileOutcome {
    /// Whether the input was processed successfully.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Aggregate report of a batch run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-stage wall-clock totals summed over all workers. Stage time
    /// can exceed [`wall`](BatchReport::wall) when workers overlap.
    pub stage_timings: StageTimings,
    /// Per-input outcomes, in input order.
    pub outcomes: Vec<FileOutcome>,
    /// End-to-end wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads actually used.
    pub n_threads: usize,
}

impl BatchReport {
    /// Number of successfully processed inputs.
    pub fn n_ok(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    /// Number of failed inputs.
    pub fn n_failed(&self) -> usize {
        self.outcomes.len() - self.n_ok()
    }

    /// Aggregate throughput in files per second ([`rate`]; `0.0` when no
    /// time has elapsed).
    pub fn files_per_second(&self) -> f64 {
        rate(self.outcomes.len() as f64, self.wall)
    }

    /// Aggregate throughput in input bytes per second ([`rate`]; `0.0`
    /// when no time has elapsed).
    pub fn bytes_per_second(&self) -> f64 {
        let bytes: usize = self.outcomes.iter().map(|o| o.n_bytes).sum();
        rate(bytes as f64, self.wall)
    }

    /// Render the report as a JSON object (stable schema, documented in
    /// the repository README).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"n_files\": {},\n", self.outcomes.len()));
        out.push_str(&format!("  \"ok\": {},\n", self.n_ok()));
        out.push_str(&format!("  \"failed\": {},\n", self.n_failed()));
        out.push_str(&format!("  \"n_threads\": {},\n", self.n_threads));
        out.push_str(&format!("  \"wall_ms\": {},\n", ms(self.wall)));
        out.push_str(&format!(
            "  \"files_per_second\": {:.3},\n",
            self.files_per_second()
        ));
        out.push_str(&format!(
            "  \"bytes_per_second\": {:.1},\n",
            self.bytes_per_second()
        ));
        out.push_str("  \"stages_ms\": {");
        let stages: Vec<String> = Stage::ALL
            .iter()
            .map(|&s| format!("\"{}\": {}", s.name(), ms(self.stage_timings.total(s))))
            .collect();
        out.push_str(&stages.join(", "));
        out.push_str("},\n");
        out.push_str("  \"files\": [\n");
        let files: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                if let Some(err) = &o.error {
                    format!(
                        "    {{\"id\": {}, \"ok\": false, \"category\": {}, \"error\": {}}}",
                        json_string(&o.id),
                        json_string(o.category.unwrap_or("internal")),
                        json_string(err)
                    )
                } else {
                    format!(
                        "    {{\"id\": {}, \"ok\": true, \"rows\": {}, \"cells\": {}, \"bytes\": {}, \"elapsed_ms\": {}}}",
                        json_string(&o.id),
                        o.n_rows,
                        o.n_cells,
                        o.n_bytes,
                        ms(o.elapsed)
                    )
                }
            })
            .collect();
        out.push_str(&files.join(",\n"));
        out.push_str("\n  ]\n}");
        out
    }
}

/// Throughput as events per second: `count / elapsed`, with a guarded
/// zero — an empty or instantaneous run reports `0.0` rather than an
/// infinity or NaN. The shared helper behind
/// [`BatchReport::files_per_second`] / [`bytes_per_second`]
/// (BatchReport::bytes_per_second) and the `strudel serve` `/metrics`
/// throughput gauges.
pub fn rate(count: f64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 || count <= 0.0 {
        0.0
    } else {
        count / secs
    }
}

/// Resolve a requested worker-thread count to an effective one: an
/// explicit request (> 0) wins, then a positive integer in the
/// `STRUDEL_THREADS` environment variable, then the machine's available
/// parallelism. The single source of truth behind the `--threads` flag
/// of both `strudel batch` and `strudel serve`.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("STRUDEL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Result of a batch run: one structure (or per-file typed error) per
/// input, in input order, plus the aggregate report.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-input detection results, aligned with the input slice. Errors
    /// carry the input identifier in their `file` context.
    pub structures: Vec<Result<Structure, StrudelError>>,
    /// The aggregate report.
    pub report: BatchReport,
}

/// Detect the structure of every input on a bounded worker pool.
///
/// Results are in input order and byte-identical to a sequential
/// [`Strudel::detect_structure`] loop regardless of the thread count:
/// inference is a pure function of (model, input), workers only race for
/// *which* input they claim next.
pub fn detect_all(model: &Strudel, inputs: &[BatchInput], config: &BatchConfig) -> BatchResult {
    let start = Instant::now();
    let threads = resolve_threads(config.n_threads).min(inputs.len()).max(1);
    // With several file-level workers, per-file inference stays on one
    // thread; a single worker may fan out over samples instead.
    let inner_threads = if threads > 1 { 1 } else { 0 };

    let next = AtomicUsize::new(0);
    type Slot = (Result<Structure, StrudelError>, FileOutcome);
    let mut slots: Vec<Option<Slot>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let mut stage_timings = StageTimings::default();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, Slot)> = Vec::new();
                    let mut timings = StageTimings::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= inputs.len() {
                            break;
                        }
                        produced.push((
                            i,
                            run_one(
                                model,
                                &inputs[i],
                                inner_threads,
                                &config.limits,
                                &mut timings,
                            ),
                        ));
                    }
                    (produced, timings)
                })
            })
            .collect();
        for handle in handles {
            let (produced, timings) = handle
                .join()
                .expect("batch worker panicked outside catch_unwind");
            stage_timings.merge(&timings);
            for (i, slot) in produced {
                slots[i] = Some(slot);
            }
        }
    });

    let mut structures = Vec::with_capacity(inputs.len());
    let mut outcomes = Vec::with_capacity(inputs.len());
    for slot in slots {
        let (structure, outcome) = slot.expect("every input claimed by a worker");
        structures.push(structure);
        outcomes.push(outcome);
    }
    BatchResult {
        structures,
        report: BatchReport {
            stage_timings,
            outcomes,
            wall: start.elapsed(),
            n_threads: threads,
        },
    }
}

/// Streamed counterpart of [`detect_all`]: every input flows through a
/// [`StreamClassifier`] in [`STREAM_CHUNK_BYTES`] chunks, windows are
/// dropped as soon as they are counted, and path inputs are read
/// incrementally — so per-worker peak memory is O(window), not O(file).
/// Because retaining the structures would defeat exactly that bound, the
/// result is the [`BatchReport`] alone; [`FileOutcome::n_rows`] and
/// [`FileOutcome::n_cells`] aggregate over all windows of each input.
///
/// `config` supplies the worker-pool shape and per-window limits (its
/// `limits` and thread policy override the ones inside `stream`, keeping
/// one source of truth with [`detect_all`]); `stream` supplies the
/// window geometry.
pub fn detect_all_streamed(
    model: &Strudel,
    inputs: &[BatchInput],
    config: &BatchConfig,
    stream: &StreamConfig,
) -> BatchReport {
    let start = Instant::now();
    let threads = resolve_threads(config.n_threads).min(inputs.len()).max(1);
    let inner_threads = if threads > 1 { 1 } else { 0 };

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<FileOutcome>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let mut stage_timings = StageTimings::default();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, FileOutcome)> = Vec::new();
                    let mut timings = StageTimings::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= inputs.len() {
                            break;
                        }
                        let cfg = StreamConfig {
                            limits: config.limits,
                            n_threads: inner_threads,
                            ..stream.clone()
                        };
                        produced.push((i, run_one_streamed(model, &inputs[i], cfg, &mut timings)));
                    }
                    (produced, timings)
                })
            })
            .collect();
        for handle in handles {
            let (produced, timings) = handle
                .join()
                .expect("streamed batch worker panicked outside catch_unwind");
            stage_timings.merge(&timings);
            for (i, outcome) in produced {
                slots[i] = Some(outcome);
            }
        }
    });

    BatchReport {
        stage_timings,
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every input claimed by a worker"))
            .collect(),
        wall: start.elapsed(),
        n_threads: threads,
    }
}

/// Stream one input through a fresh classifier, counting rows/cells per
/// window and dropping each window immediately.
fn run_one_streamed(
    model: &Strudel,
    input: &BatchInput,
    config: StreamConfig,
    timings: &mut StageTimings,
) -> FileOutcome {
    let id = input.id();
    let file_start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| match input {
        BatchInput::Path(p) => {
            let mut file = std::fs::File::open(p).map_err(|e| StrudelError::io(&e, None))?;
            stream_one(model, &mut file, config, timings)
        }
        BatchInput::Text { text, .. } => stream_one(model, &mut text.as_bytes(), config, timings),
    }));
    let result = match caught {
        Ok(r) => r,
        Err(payload) => Err(StrudelError::Internal {
            file: None,
            reason: panic_message(payload.as_ref()).to_string(),
        }),
    };
    match result {
        Ok((n_bytes, n_rows, n_cells)) => FileOutcome {
            id,
            n_rows,
            n_cells,
            n_bytes,
            elapsed: file_start.elapsed(),
            error: None,
            category: None,
        },
        Err(error) => {
            let error = error.with_file(id.clone());
            FileOutcome {
                id,
                n_rows: 0,
                n_cells: 0,
                n_bytes: 0,
                elapsed: file_start.elapsed(),
                error: Some(error.to_string()),
                category: Some(error.category()),
            }
        }
    }
}

/// The bounded-memory inner loop of [`run_one_streamed`]: chunked reads,
/// windows counted and dropped on the spot. Timings merge even when the
/// stream fails, so partial work still shows up in the report.
fn stream_one<R: std::io::Read>(
    model: &Strudel,
    reader: &mut R,
    config: StreamConfig,
    timings: &mut StageTimings,
) -> Result<(usize, usize, usize), StrudelError> {
    let mut classifier = StreamClassifier::new(model, config);
    let mut n_cells = 0usize;
    let mut chunk = vec![0u8; STREAM_CHUNK_BYTES];
    let result = (|| {
        loop {
            let n = reader
                .read(&mut chunk)
                .map_err(|e| StrudelError::io(&e, None))?;
            if n == 0 {
                break;
            }
            classifier.push(&chunk[..n])?;
            for w in classifier.drain_windows() {
                n_cells += w.structure.cells.len();
            }
        }
        let summary = classifier.finish()?;
        for w in classifier.drain_windows() {
            n_cells += w.structure.cells.len();
        }
        Ok((summary.total_bytes as usize, summary.n_rows, n_cells))
    })();
    timings.merge(classifier.timings());
    result
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface does not exist.
/// The streamed batch path reports it so the O(window) memory claim is
/// checkable from scripts and CI, not just asserted in prose.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Process one input end to end. Failures are typed [`StrudelError`]s
/// from the guarded pipeline; `catch_unwind` remains as a true last
/// resort for bugs, surfacing as [`StrudelError::Internal`].
fn run_one(
    model: &Strudel,
    input: &BatchInput,
    inner_threads: usize,
    limits: &Limits,
    timings: &mut StageTimings,
) -> (Result<Structure, StrudelError>, FileOutcome) {
    let id = input.id();
    let file_start = Instant::now();
    let fail = |error: StrudelError, n_bytes: usize, elapsed: Duration| {
        let error = error.with_file(id.clone());
        let outcome = FileOutcome {
            id: id.clone(),
            n_rows: 0,
            n_cells: 0,
            n_bytes,
            elapsed,
            error: Some(error.to_string()),
            category: Some(error.category()),
        };
        (Err(error), outcome)
    };

    let owned;
    let bytes: &[u8] = match input {
        BatchInput::Path(p) => match std::fs::read(p) {
            Ok(b) => {
                owned = b;
                &owned
            }
            Err(e) => return fail(StrudelError::io(&e, None), 0, file_start.elapsed()),
        },
        BatchInput::Text { text, .. } => text.as_bytes(),
    };

    // The per-file wall-clock budget starts once the bytes are in
    // memory; it is polled at stage boundaries and inside the parser.
    let deadline = limits.start_deadline();
    let detected = catch_unwind(AssertUnwindSafe(|| {
        let text = strudel_dialect::decode_utf8(bytes)?;
        model.try_detect_structure_guarded(text, limits, deadline, inner_threads, timings)
    }));
    match detected {
        Ok(Ok(structure)) => {
            let outcome = FileOutcome {
                id,
                n_rows: structure.table.n_rows(),
                n_cells: structure.cells.len(),
                n_bytes: bytes.len(),
                elapsed: file_start.elapsed(),
                error: None,
                category: None,
            };
            (Ok(structure), outcome)
        }
        Ok(Err(error)) => fail(error, bytes.len(), file_start.elapsed()),
        Err(payload) => fail(
            StrudelError::Internal {
                file: None,
                reason: panic_message(payload.as_ref()).to_string(),
            },
            bytes.len(),
            file_start.elapsed(),
        ),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_classifier::StrudelCellConfig;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use strudel_ml::ForestConfig;

    fn fitted() -> Strudel {
        let corpus = tiny_corpus(6);
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(12, 1),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(12, 2),
            ..StrudelCellConfig::default()
        };
        Strudel::fit(&corpus.files, &config)
    }

    fn sample_texts(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "Report {i},,\nState,2019,2020\nBerlin,{},{}\nHamburg,{},{}\nTotal,{},{}\nSource: police,,\n",
                    i + 1,
                    i + 2,
                    i + 3,
                    i + 4,
                    2 * i + 4,
                    2 * i + 6,
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_for_any_thread_count() {
        let model = fitted();
        let texts = sample_texts(7);
        let inputs: Vec<BatchInput> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| BatchInput::text(format!("file-{i}"), t.clone()))
            .collect();
        let sequential: Vec<Structure> = texts.iter().map(|t| model.detect_structure(t)).collect();
        for n_threads in [1, 4] {
            let result = detect_all(
                &model,
                &inputs,
                &BatchConfig {
                    n_threads,
                    ..BatchConfig::default()
                },
            );
            assert_eq!(result.structures.len(), texts.len());
            for (got, want) in result.structures.iter().zip(&sequential) {
                assert_eq!(got.as_ref().unwrap(), want);
            }
            assert_eq!(result.report.n_ok(), texts.len());
            assert_eq!(result.report.n_failed(), 0);
        }
    }

    #[test]
    fn malformed_input_fails_alone() {
        let model = fitted();
        // Write a file that is not valid UTF-8.
        let dir = std::env::temp_dir().join(format!("strudel-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad_utf8 = dir.join("bad.csv");
        std::fs::write(&bad_utf8, [0xFF, 0xFE, 0x00, 0x41]).unwrap();

        let texts = sample_texts(2);
        let inputs = vec![
            BatchInput::text("good-0", texts[0].clone()),
            BatchInput::path(dir.join("does-not-exist.csv")),
            BatchInput::path(&bad_utf8),
            BatchInput::text("good-1", texts[1].clone()),
        ];
        let result = detect_all(
            &model,
            &inputs,
            &BatchConfig {
                n_threads: 2,
                ..BatchConfig::default()
            },
        );
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(result.structures.len(), 4);
        assert!(result.structures[0].is_ok());
        assert!(result.structures[3].is_ok());
        let missing = result.structures[1].as_ref().unwrap_err();
        assert!(missing.file().unwrap().ends_with("does-not-exist.csv"));
        assert_eq!(missing.category(), "io");
        let utf8 = result.structures[2].as_ref().unwrap_err();
        assert_eq!(utf8.category(), "parse");
        assert!(utf8.to_string().contains("invalid UTF-8"));
        assert_eq!(result.report.n_ok(), 2);
        assert_eq!(result.report.n_failed(), 2);
        // Outcomes stay aligned with inputs.
        assert!(result.report.outcomes[0].is_ok());
        assert!(!result.report.outcomes[1].is_ok());
        assert_eq!(result.report.outcomes[1].id, inputs[1].id());
    }

    #[test]
    fn report_counts_stages_per_successful_file() {
        let model = fitted();
        let texts = sample_texts(3);
        let inputs: Vec<BatchInput> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| BatchInput::text(format!("f{i}"), t.clone()))
            .collect();
        let result = detect_all(
            &model,
            &inputs,
            &BatchConfig {
                n_threads: 1,
                ..BatchConfig::default()
            },
        );
        for stage in Stage::ALL {
            // Whole-file batch runs never touch the streaming stage or
            // the container encode/decode stages.
            let want = if matches!(stage, Stage::Stream | Stage::Pack | Stage::Unpack) {
                0
            } else {
                3
            };
            assert_eq!(result.report.stage_timings.count(stage), want);
        }
        assert!(result.report.files_per_second() > 0.0);
        assert!(result.report.bytes_per_second() > 0.0);
        let total_bytes: usize = result.report.outcomes.iter().map(|o| o.n_bytes).sum();
        assert_eq!(total_bytes, texts.iter().map(String::len).sum::<usize>());
    }

    #[test]
    fn empty_batch() {
        let model = fitted();
        let result = detect_all(&model, &[], &BatchConfig::default());
        assert!(result.structures.is_empty());
        assert_eq!(result.report.n_ok(), 0);
        let json = result.report.to_json();
        assert!(json.contains("\"n_files\": 0"));
    }

    #[test]
    fn json_report_schema_and_escaping() {
        let model = fitted();
        let inputs = vec![
            BatchInput::text("quo\"ted\nid", sample_texts(1)[0].clone()),
            BatchInput::path("/definitely/not/here.csv"),
        ];
        let result = detect_all(
            &model,
            &inputs,
            &BatchConfig {
                n_threads: 1,
                ..BatchConfig::default()
            },
        );
        let json = result.report.to_json();
        for key in [
            "\"n_files\": 2",
            "\"ok\": 1",
            "\"failed\": 1",
            "\"wall_ms\"",
            "\"files_per_second\"",
            "\"stages_ms\"",
            "\"dialect\"",
            "\"cell_classify\"",
            "\"files\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("quo\\\"ted\\nid"));
        assert!(json.contains("\"ok\": false"));
    }

    #[test]
    fn throughput_guards_zero_elapsed() {
        // A report whose wall clock never advanced (possible on coarse
        // timers, or when rendering metrics immediately after startup)
        // must report zero throughput, not inf/NaN — `strudel serve`
        // renders these numbers into /metrics where NaN is invalid.
        let report = BatchReport {
            stage_timings: StageTimings::default(),
            outcomes: vec![FileOutcome {
                id: "x".into(),
                n_rows: 1,
                n_cells: 1,
                n_bytes: 100,
                elapsed: Duration::ZERO,
                error: None,
                category: None,
            }],
            wall: Duration::ZERO,
            n_threads: 1,
        };
        assert_eq!(report.files_per_second(), 0.0);
        assert_eq!(report.bytes_per_second(), 0.0);
        assert!(report.files_per_second().is_finite());

        // The shared helper itself: zero elapsed, zero count, and the
        // normal case.
        assert_eq!(rate(5.0, Duration::ZERO), 0.0);
        assert_eq!(rate(0.0, Duration::from_secs(2)), 0.0);
        assert_eq!(rate(6.0, Duration::from_secs(2)), 3.0);
    }

    #[test]
    fn streamed_batch_matches_whole_file_counts_and_isolates_failures() {
        let model = fitted();
        let texts = sample_texts(5);
        let mut inputs: Vec<BatchInput> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| BatchInput::text(format!("f{i}"), t.clone()))
            .collect();
        inputs.push(BatchInput::path("/definitely/not/here.csv"));
        let config = BatchConfig {
            n_threads: 2,
            ..BatchConfig::default()
        };
        let whole = detect_all(&model, &inputs, &config);
        let streamed = detect_all_streamed(&model, &inputs, &config, &StreamConfig::default());
        assert_eq!(streamed.outcomes.len(), whole.report.outcomes.len());
        // Every text fits in one default window, so the streamed counts
        // come from the identical whole-file pipeline.
        for (s, w) in streamed.outcomes.iter().zip(&whole.report.outcomes) {
            assert_eq!(s.id, w.id);
            assert_eq!(s.n_rows, w.n_rows, "{}", s.id);
            assert_eq!(s.n_cells, w.n_cells, "{}", s.id);
            assert_eq!(s.n_bytes, w.n_bytes, "{}", s.id);
            assert_eq!(s.category, w.category, "{}", s.id);
        }
        assert_eq!(streamed.n_ok(), texts.len());
        assert_eq!(streamed.n_failed(), 1);
        assert_eq!(
            streamed.stage_timings.count(Stage::Stream),
            texts.len() as u64
        );
        assert_eq!(streamed.stage_timings.stream_windows(), texts.len() as u64);
        // The report schema is unchanged — the stream stage key simply
        // carries time now.
        assert!(streamed.to_json().contains("\"stream\":"));
    }

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM available on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn resolve_threads_explicit_request_wins() {
        // The env fallback is exercised end-to-end by the CLI tests
        // (subprocess-scoped env); in-process we only pin the explicit
        // path, which must ignore the environment entirely.
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }
}
