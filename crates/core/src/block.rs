//! Algorithm 1: block-size calculation (Section 5.2).
//!
//! The `BlockSize` cell feature is the size of the 4-connected component
//! of non-empty cells containing a cell, normalised by the table size.
//! Non-data regions (metadata blurbs, note blocks, aggregation fragments)
//! tend to form much smaller connected components than table bodies.
//!
//! The implementation is the paper's Algorithm 1: an iterative depth-first
//! flood fill visiting every non-empty cell exactly once — `O(n)` in the
//! number of non-empty cells.

use strudel_table::{CellView, GridView, Table};

/// Per-cell block sizes, normalised to `[0, 1]` by the table size.
///
/// Returns an `n_rows × n_cols` grid; empty cells keep `0.0` (they belong
/// to no block). The normaliser is `table.size()` (total cell positions),
/// matching the paper's "normalized ... by the size of the file".
pub fn block_sizes(table: &Table) -> Vec<Vec<f64>> {
    block_sizes_view(table.view())
}

/// [`block_sizes`] over any cell grid — owned tables and the borrowed
/// grids of the zero-copy detection path run the same flood fill.
pub fn block_sizes_view<C: CellView>(table: GridView<'_, C>) -> Vec<Vec<f64>> {
    let (rows, cols) = (table.n_rows(), table.n_cols());
    let mut out = vec![vec![0.0; cols]; rows];
    if rows == 0 || cols == 0 {
        return out;
    }
    let size = table.size() as f64;
    let mut visited = vec![false; rows * cols];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut component: Vec<(usize, usize)> = Vec::new();

    for start_r in 0..rows {
        for start_c in 0..cols {
            if visited[start_r * cols + start_c] || table.cell(start_r, start_c).is_empty() {
                continue;
            }
            // Flood-fill one connected component.
            component.clear();
            stack.push((start_r, start_c));
            visited[start_r * cols + start_c] = true;
            while let Some((r, c)) = stack.pop() {
                component.push((r, c));
                let neighbours = [
                    (r.wrapping_sub(1), c),
                    (r + 1, c),
                    (r, c.wrapping_sub(1)),
                    (r, c + 1),
                ];
                for (nr, nc) in neighbours {
                    if nr < rows
                        && nc < cols
                        && !visited[nr * cols + nc]
                        && !table.cell(nr, nc).is_empty()
                    {
                        visited[nr * cols + nc] = true;
                        stack.push((nr, nc));
                    }
                }
            }
            let bs = component.len() as f64 / size;
            for &(r, c) in &component {
                out[r][c] = bs;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_covers_table() {
        let t = Table::from_rows(vec![vec!["a", "b"], vec!["c", "d"]]);
        let bs = block_sizes(&t);
        for row in &bs {
            for &v in row {
                assert!((v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn disconnected_blocks_have_own_sizes() {
        // Block of 1 (top-left), block of 2 (bottom row), separated by
        // empties; table size 3x3 = 9.
        let t = Table::from_rows(vec![
            vec!["x", "", ""],
            vec!["", "", ""],
            vec!["", "a", "b"],
        ]);
        let bs = block_sizes(&t);
        assert!((bs[0][0] - 1.0 / 9.0).abs() < 1e-12);
        assert!((bs[2][1] - 2.0 / 9.0).abs() < 1e-12);
        assert!((bs[2][2] - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(bs[1][1], 0.0);
    }

    #[test]
    fn diagonal_cells_are_not_connected() {
        let t = Table::from_rows(vec![vec!["a", ""], vec!["", "b"]]);
        let bs = block_sizes(&t);
        assert!((bs[0][0] - 0.25).abs() < 1e-12);
        assert!((bs[1][1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn l_shaped_component_is_one_block() {
        let t = Table::from_rows(vec![
            vec!["a", "", ""],
            vec!["b", "", ""],
            vec!["c", "d", "e"],
        ]);
        let bs = block_sizes(&t);
        let expected = 5.0 / 9.0;
        for &(r, c) in &[(0usize, 0usize), (1, 0), (2, 0), (2, 1), (2, 2)] {
            assert!((bs[r][c] - expected).abs() < 1e-12, "cell {r},{c}");
        }
    }

    #[test]
    fn empty_table_yields_empty_grid() {
        let t = Table::from_rows(Vec::<Vec<String>>::new());
        assert!(block_sizes(&t).is_empty());
    }

    #[test]
    fn all_empty_cells_stay_zero() {
        let t = Table::from_rows(vec![vec!["", ""], vec!["", ""]]);
        let bs = block_sizes(&t);
        assert!(bs.iter().all(|row| row.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn snake_connectivity_spans_whole_path() {
        // A winding path must be discovered as one component regardless of
        // DFS start point.
        let t = Table::from_rows(vec![
            vec!["1", "2", "3"],
            vec!["", "", "4"],
            vec!["7", "6", "5"],
        ]);
        let bs = block_sizes(&t);
        let expected = 7.0 / 9.0;
        for (r, row) in bs.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if !t.cell(r, c).is_empty() {
                    assert!((v - expected).abs() < 1e-12);
                }
            }
        }
    }
}
