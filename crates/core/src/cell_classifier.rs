//! `Strudel^C`: the cell classifier (Section 5).
//!
//! A multi-class random forest over the 37 cell features of Table 2. A
//! `Strudel^L` model is trained first; its per-line probability vectors
//! become the `LineClassProbability` features (Section 5.4), so the cell
//! model can lean on line structure while still overriding it for cells
//! that deviate from their line's majority class (e.g. the leading group
//! cell of a derived line).

use crate::analysis::{compute_analyses, TableAnalysis};
use crate::cell_features::{
    extract_cell_features_view, extract_cell_features_with, CellFeatureConfig, N_CELL_FEATURES,
};
use crate::line_classifier::{StrudelLine, StrudelLineConfig};
use strudel_ml::{Dataset, ForestConfig, RandomForest};
use strudel_table::{CellView, ElementClass, GridView, LabeledFile, Table};

/// Configuration of `Strudel^C`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrudelCellConfig {
    /// Configuration of the upstream `Strudel^L` stage.
    pub line: StrudelLineConfig,
    /// Cell feature extraction parameters.
    pub features: CellFeatureConfig,
    /// Random forest hyper-parameters of the cell stage.
    pub forest: ForestConfig,
}

/// One classified cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPrediction {
    /// Row of the cell.
    pub row: usize,
    /// Column of the cell.
    pub col: usize,
    /// Predicted class.
    pub class: ElementClass,
    /// Class probability vector.
    pub probs: Vec<f64>,
}

/// A fitted `Strudel^C` model (owns its upstream `Strudel^L`).
pub struct StrudelCell {
    line_model: StrudelLine,
    forest: RandomForest,
    features: CellFeatureConfig,
}

impl StrudelCell {
    /// Fit the full two-stage model: `Strudel^L` first, then the cell
    /// forest on features that embed the line model's probabilities.
    ///
    /// # Panics
    /// Panics when `files` contains no labeled cells.
    pub fn fit(files: &[LabeledFile], config: &StrudelCellConfig) -> StrudelCell {
        // One analysis per file serves the line stage (fit + the
        // probability pass below) and the cell feature extraction.
        let analyses = compute_analyses(files, config.line.features.derived);
        let line_model = StrudelLine::fit_with_analyses(files, &config.line, &analyses);
        let dataset = Self::build_dataset_with(files, &line_model, &config.features, &analyses);
        assert!(
            !dataset.is_empty(),
            "no labeled cells in the training files"
        );
        StrudelCell {
            forest: RandomForest::fit(&dataset, &config.forest),
            line_model,
            features: config.features,
        }
    }

    /// Fit the cell stage on top of an already-fitted line model.
    pub fn fit_with_line_model(
        files: &[LabeledFile],
        line_model: StrudelLine,
        features: CellFeatureConfig,
        forest: &ForestConfig,
    ) -> StrudelCell {
        let dataset = Self::build_dataset(files, &line_model, &features);
        assert!(
            !dataset.is_empty(),
            "no labeled cells in the training files"
        );
        StrudelCell {
            forest: RandomForest::fit(&dataset, forest),
            line_model,
            features,
        }
    }

    /// Assemble the supervised cell dataset of a file collection: one
    /// sample per labeled non-empty cell, with `LineClassProbability`
    /// features produced by `line_model`.
    pub fn build_dataset(
        files: &[LabeledFile],
        line_model: &StrudelLine,
        features: &CellFeatureConfig,
    ) -> Dataset {
        let analyses = compute_analyses(files, line_model.feature_config().derived);
        Self::build_dataset_with(files, line_model, features, &analyses)
    }

    /// [`build_dataset`](Self::build_dataset) reusing precomputed
    /// per-file analyses (one per file, in file order).
    pub(crate) fn build_dataset_with(
        files: &[LabeledFile],
        line_model: &StrudelLine,
        features: &CellFeatureConfig,
        analyses: &[TableAnalysis],
    ) -> Dataset {
        let mut dataset = Dataset::new(N_CELL_FEATURES, ElementClass::COUNT);
        for (file, analysis) in files.iter().zip(analyses) {
            let probs = line_model.predict_probs_with_analysis(&file.table, analysis, 0);
            for cf in extract_cell_features_with(&file.table, &probs, features, analysis) {
                if let Some(label) = file.cell_labels[cf.row][cf.col] {
                    dataset.push(&cf.features, label.index());
                }
            }
        }
        dataset
    }

    /// Classify every non-empty cell of a table.
    pub fn predict(&self, table: &Table) -> Vec<CellPrediction> {
        let analysis = TableAnalysis::compute(table, self.line_model.feature_config().derived);
        let probs = self
            .line_model
            .predict_probs_with_analysis(table, &analysis, 0);
        self.predict_with_probs_analysed(table, &probs, 0, &analysis)
    }

    /// Classify every non-empty cell given precomputed line probability
    /// vectors (one per row), walking the forest across `n_threads`
    /// worker threads (`0` = available parallelism, `1` = serial).
    ///
    /// The pipeline computes the line probabilities once and shares them
    /// between the line and cell stages; results are identical to
    /// [`predict`](Self::predict) for every thread count.
    pub fn predict_with_probs(
        &self,
        table: &Table,
        line_probs: &[Vec<f64>],
        n_threads: usize,
    ) -> Vec<CellPrediction> {
        let analysis = TableAnalysis::compute(table, self.features.derived);
        self.predict_with_probs_analysed(table, line_probs, n_threads, &analysis)
    }

    /// [`predict_with_probs`](Self::predict_with_probs) reusing a
    /// precomputed [`TableAnalysis`] (the pipeline computes one per
    /// table and shares it across the line and cell stages).
    pub fn predict_with_probs_analysed(
        &self,
        table: &Table,
        line_probs: &[Vec<f64>],
        n_threads: usize,
        analysis: &TableAnalysis,
    ) -> Vec<CellPrediction> {
        self.predict_with_probs_view(table.view(), line_probs, n_threads, analysis)
    }

    /// [`predict_with_probs_analysed`](Self::predict_with_probs_analysed)
    /// over any cell grid: the zero-copy detection path classifies the
    /// borrowed grid directly, with predictions identical to the
    /// owned-table entry points.
    pub fn predict_with_probs_view<C: CellView>(
        &self,
        table: GridView<'_, C>,
        line_probs: &[Vec<f64>],
        n_threads: usize,
        analysis: &TableAnalysis,
    ) -> Vec<CellPrediction> {
        let cell_features = extract_cell_features_view(table, line_probs, &self.features, analysis);
        let samples: Vec<&[f64]> = cell_features
            .iter()
            .map(|cf| cf.features.as_slice())
            .collect();
        let predicted = self.forest.predict_proba_batch(&samples, n_threads);
        cell_features
            .into_iter()
            .zip(predicted)
            .map(|(cf, p)| {
                let class = ElementClass::from_index(strudel_ml::argmax(&p));
                CellPrediction {
                    row: cf.row,
                    col: cf.col,
                    class,
                    probs: p,
                }
            })
            .collect()
    }

    /// The upstream line model.
    pub fn line_model(&self) -> &StrudelLine {
        &self.line_model
    }

    /// The underlying cell forest (used by permutation importance).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// The cell feature configuration the model was fitted with.
    pub fn feature_config(&self) -> &CellFeatureConfig {
        &self.features
    }

    /// Reassemble a model from deserialized parts.
    pub fn from_parts(
        line_model: StrudelLine,
        forest: RandomForest,
        features: CellFeatureConfig,
    ) -> StrudelCell {
        StrudelCell {
            line_model,
            forest,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;

    fn fast_config() -> StrudelCellConfig {
        StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(15, 3),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(15, 4),
            ..StrudelCellConfig::default()
        }
    }

    #[test]
    fn learns_cell_classes_including_group_in_derived_line() {
        let corpus = tiny_corpus(8);
        let model = StrudelCell::fit(&corpus.files, &fast_config());
        let probe = &corpus.files[0];
        let preds = model.predict(&probe.table);
        assert_eq!(preds.len(), probe.non_empty_cell_count());
        let mut correct = 0;
        for p in &preds {
            if Some(p.class) == probe.cell_labels[p.row][p.col] {
                correct += 1;
            }
        }
        // The tiny corpus is fully learnable, including the Group cell
        // leading each Derived line (which Line^C by construction misses).
        assert_eq!(correct, preds.len());
    }

    #[test]
    fn probability_vectors_are_normalised() {
        let corpus = tiny_corpus(4);
        let model = StrudelCell::fit(&corpus.files, &fast_config());
        for p in model.predict(&corpus.files[0].table) {
            assert_eq!(p.probs.len(), ElementClass::COUNT);
            assert!((p.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dataset_has_one_sample_per_labeled_cell() {
        let corpus = tiny_corpus(2);
        let line_model = StrudelLine::fit(&corpus.files, &fast_config().line);
        let ds =
            StrudelCell::build_dataset(&corpus.files, &line_model, &CellFeatureConfig::default());
        let expected: usize = corpus.files.iter().map(|f| f.non_empty_cell_count()).sum();
        assert_eq!(ds.n_samples(), expected);
        assert_eq!(ds.n_features(), N_CELL_FEATURES);
    }
}
