//! Cell-classification features (Table 2, Section 5).
//!
//! Each *non-empty* cell is described by 37 features in three groups:
//!
//! - **content** — `ValueLength`, `DataType`, `HasDerivedKeywords`,
//!   `Row/ColumnHasDerivedKeywords`, `Row/ColumnPosition`, and the
//!   six-dimensional `LineClassProbability` produced by a prior
//!   `Strudel^L` run (Section 5.4);
//! - **contextual** — emptiness of the adjacent row/column, row/column
//!   empty-cell ratios, `BlockSize` (Algorithm 1), and the *neighbour
//!   profile* (Section 5.3): value length and data type of each of the
//!   eight surrounding cells, with `-1` for positions beyond the margin;
//! - **computational** — `IsAggregation` from the derived-cell detector
//!   (Algorithm 2).

use crate::analysis::TableAnalysis;
use crate::block::block_sizes_view;
use crate::derived::DerivedConfig;
use crate::keywords::has_aggregation_keyword;
use strudel_table::{CellView, ElementClass, GridView, Table};

/// Names of the 37 cell features, in vector order.
pub const CELL_FEATURE_NAMES: [&str; 37] = [
    "ValueLength",
    "DataType",
    "HasDerivedKeywords",
    "RowHasDerivedKeywords",
    "ColumnHasDerivedKeywords",
    "RowPosition",
    "ColumnPosition",
    "LineProbMetadata",
    "LineProbHeader",
    "LineProbGroup",
    "LineProbData",
    "LineProbDerived",
    "LineProbNotes",
    "IsEmptyRowBefore",
    "IsEmptyRowAfter",
    "IsEmptyColumnLeft",
    "IsEmptyColumnRight",
    "RowEmptyCellRatio",
    "ColumnEmptyCellRatio",
    "BlockSize",
    "NeighborValueLengthN",
    "NeighborValueLengthNE",
    "NeighborValueLengthE",
    "NeighborValueLengthSE",
    "NeighborValueLengthS",
    "NeighborValueLengthSW",
    "NeighborValueLengthW",
    "NeighborValueLengthNW",
    "NeighborDataTypeN",
    "NeighborDataTypeNE",
    "NeighborDataTypeE",
    "NeighborDataTypeSE",
    "NeighborDataTypeS",
    "NeighborDataTypeSW",
    "NeighborDataTypeW",
    "NeighborDataTypeNW",
    "IsAggregation",
];

/// Number of cell features.
pub const N_CELL_FEATURES: usize = CELL_FEATURE_NAMES.len();

/// The eight neighbour offsets of the neighbour profile, in
/// N, NE, E, SE, S, SW, W, NW order.
const NEIGHBOUR_OFFSETS: [(isize, isize); 8] = [
    (-1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, -1),
];

/// Configuration of the cell feature extractor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellFeatureConfig {
    /// Parameters of the derived-cell detector feeding `IsAggregation`.
    pub derived: DerivedConfig,
}

/// Feature vector plus position for one non-empty cell.
#[derive(Debug, Clone)]
pub struct CellFeatures {
    /// Row of the cell.
    pub row: usize,
    /// Column of the cell.
    pub col: usize,
    /// The 37-dimensional feature vector.
    pub features: Vec<f64>,
}

/// Extract features for every non-empty cell of a table.
///
/// `line_probs[r]` is the `Strudel^L` class-probability vector of row `r`
/// ([`ElementClass::COUNT`] entries); empty rows may carry any vector
/// (typically uniform) — they only feed the feature and are never
/// classified themselves.
///
/// # Panics
/// Panics when `line_probs` does not have one entry of length
/// [`ElementClass::COUNT`] per table row.
pub fn extract_cell_features(
    table: &Table,
    line_probs: &[Vec<f64>],
    config: &CellFeatureConfig,
) -> Vec<CellFeatures> {
    let analysis = TableAnalysis::compute(table, config.derived);
    extract_cell_features_with(table, line_probs, config, &analysis)
}

/// [`extract_cell_features`] reusing a precomputed [`TableAnalysis`], so
/// one derived-cell detection per file serves the line, cell, and column
/// extractors (the mask is recomputed if `analysis` was built for a
/// different [`DerivedConfig`]).
///
/// # Panics
/// Panics when `line_probs` does not have one entry of length
/// [`ElementClass::COUNT`] per table row.
pub fn extract_cell_features_with(
    table: &Table,
    line_probs: &[Vec<f64>],
    config: &CellFeatureConfig,
    analysis: &TableAnalysis,
) -> Vec<CellFeatures> {
    extract_cell_features_view(table.view(), line_probs, config, analysis)
}

/// [`extract_cell_features_with`] over any cell grid — owned tables
/// (training, compatibility API) and the borrowed grids of the
/// zero-copy detection path produce byte-identical feature vectors.
///
/// # Panics
/// Panics when `line_probs` does not have one entry of length
/// [`ElementClass::COUNT`] per table row.
pub fn extract_cell_features_view<C: CellView>(
    table: GridView<'_, C>,
    line_probs: &[Vec<f64>],
    config: &CellFeatureConfig,
    analysis: &TableAnalysis,
) -> Vec<CellFeatures> {
    let (n_rows, n_cols) = (table.n_rows(), table.n_cols());
    assert_eq!(line_probs.len(), n_rows, "one probability vector per row");
    assert!(
        line_probs.iter().all(|p| p.len() == ElementClass::COUNT),
        "probability vectors must have {} entries",
        ElementClass::COUNT
    );
    if n_rows == 0 || n_cols == 0 {
        return Vec::new();
    }

    let blocks = block_sizes_view(table);
    let derived = analysis.derived_for_view(table, &config.derived);

    // ValueLength is min–max normalised per file over non-empty cells.
    let mut len_min = f64::INFINITY;
    let mut len_max = f64::NEG_INFINITY;
    for r in 0..n_rows {
        for cell in table.row(r) {
            if !cell.is_empty() {
                let l = cell.len() as f64;
                len_min = len_min.min(l);
                len_max = len_max.max(l);
            }
        }
    }
    if !len_min.is_finite() {
        return Vec::new(); // all cells empty
    }
    let len_span = (len_max - len_min).max(f64::EPSILON);
    let norm_len = |l: f64| (l - len_min) / len_span;

    // Row/column keyword flags and empty-cell ratios.
    let row_kw: Vec<f64> = (0..n_rows)
        .map(|r| {
            f64::from(
                table
                    .row(r)
                    .any(|c| !c.is_empty() && has_aggregation_keyword(c.raw())),
            )
        })
        .collect();
    let col_kw: Vec<f64> = (0..n_cols)
        .map(|c| {
            f64::from(
                table
                    .column(c)
                    .any(|cell| !cell.is_empty() && has_aggregation_keyword(cell.raw())),
            )
        })
        .collect();
    let row_empty_ratio: Vec<f64> = (0..n_rows)
        .map(|r| table.row(r).filter(|c| c.is_empty()).count() as f64 / n_cols as f64)
        .collect();
    let col_empty_ratio: Vec<f64> = (0..n_cols)
        .map(|c| table.column(c).filter(|cell| cell.is_empty()).count() as f64 / n_rows as f64)
        .collect();
    let row_all_empty: Vec<bool> = (0..n_rows).map(|r| table.row_is_empty(r)).collect();
    let col_all_empty: Vec<bool> = (0..n_cols).map(|c| table.col_is_empty(c)).collect();

    let mut out = Vec::with_capacity(table.non_empty_count());
    for r in 0..n_rows {
        for c in 0..n_cols {
            let cell = table.cell(r, c);
            if cell.is_empty() {
                continue;
            }
            let mut f = Vec::with_capacity(N_CELL_FEATURES);

            // --- content ---
            f.push(norm_len(cell.len() as f64)); // ValueLength
            f.push(cell.dtype().code()); // DataType
            f.push(f64::from(has_aggregation_keyword(cell.raw()))); // HasDerivedKeywords
            f.push(row_kw[r]); // RowHasDerivedKeywords
            f.push(col_kw[c]); // ColumnHasDerivedKeywords
            f.push(r as f64 / (n_rows - 1).max(1) as f64); // RowPosition
            f.push(c as f64 / (n_cols - 1).max(1) as f64); // ColumnPosition
            f.extend_from_slice(&line_probs[r]); // LineClassProbability (6)

            // --- contextual ---
            // Rows/columns beyond the margin count as empty.
            f.push(f64::from(r == 0 || row_all_empty[r - 1])); // IsEmptyRowBefore
            f.push(f64::from(r + 1 >= n_rows || row_all_empty[r + 1])); // IsEmptyRowAfter
            f.push(f64::from(c == 0 || col_all_empty[c - 1])); // IsEmptyColumnLeft
            f.push(f64::from(c + 1 >= n_cols || col_all_empty[c + 1])); // IsEmptyColumnRight
            f.push(row_empty_ratio[r]); // RowEmptyCellRatio
            f.push(col_empty_ratio[c]); // ColumnEmptyCellRatio
            f.push(blocks[r][c]); // BlockSize

            // Neighbour profile: value lengths then data types, -1 beyond
            // the margin (Section 5.3).
            for &(dr, dc) in &NEIGHBOUR_OFFSETS {
                match table.get(r as isize + dr, c as isize + dc) {
                    Some(n) => f.push(norm_len(n.len() as f64)),
                    None => f.push(-1.0),
                }
            }
            for &(dr, dc) in &NEIGHBOUR_OFFSETS {
                match table.get(r as isize + dr, c as isize + dc) {
                    Some(n) => f.push(n.dtype().code()),
                    None => f.push(-1.0),
                }
            }

            // --- computational ---
            f.push(f64::from(derived[r][c])); // IsAggregation

            debug_assert_eq!(f.len(), N_CELL_FEATURES);
            out.push(CellFeatures {
                row: r,
                col: c,
                features: f,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(name: &str) -> usize {
        CELL_FEATURE_NAMES.iter().position(|&n| n == name).unwrap()
    }

    fn uniform_probs(n_rows: usize) -> Vec<Vec<f64>> {
        vec![vec![1.0 / 6.0; 6]; n_rows]
    }

    fn sample() -> Table {
        Table::from_rows(vec![
            vec!["Report", "", ""],
            vec!["", "", ""],
            vec!["State", "2019", "2020"],
            vec!["Berlin", "100", "120"],
            vec!["Total", "100", "120"],
        ])
    }

    fn features_at(feats: &[CellFeatures], row: usize, col: usize) -> &CellFeatures {
        feats
            .iter()
            .find(|f| f.row == row && f.col == col)
            .expect("cell present")
    }

    #[test]
    fn only_non_empty_cells_get_features() {
        let t = sample();
        let feats = extract_cell_features(&t, &uniform_probs(5), &CellFeatureConfig::default());
        assert_eq!(feats.len(), t.non_empty_count());
        assert!(feats.iter().all(|f| f.features.len() == N_CELL_FEATURES));
    }

    #[test]
    fn datatype_codes() {
        let t = sample();
        let feats = extract_cell_features(&t, &uniform_probs(5), &CellFeatureConfig::default());
        assert_eq!(features_at(&feats, 2, 0).features[idx("DataType")], 2.0); // string
        assert_eq!(features_at(&feats, 3, 1).features[idx("DataType")], 0.0); // int
    }

    #[test]
    fn keyword_flags_propagate_to_row_and_column() {
        let t = sample();
        let feats = extract_cell_features(&t, &uniform_probs(5), &CellFeatureConfig::default());
        let total_row_num = features_at(&feats, 4, 1);
        assert_eq!(total_row_num.features[idx("HasDerivedKeywords")], 0.0);
        assert_eq!(total_row_num.features[idx("RowHasDerivedKeywords")], 1.0);
        // Column 0 contains "Total".
        let header = features_at(&feats, 2, 0);
        assert_eq!(header.features[idx("ColumnHasDerivedKeywords")], 1.0);
        let num_col = features_at(&feats, 2, 1);
        assert_eq!(num_col.features[idx("ColumnHasDerivedKeywords")], 0.0);
    }

    #[test]
    fn positions_span_unit_interval() {
        let t = sample();
        let feats = extract_cell_features(&t, &uniform_probs(5), &CellFeatureConfig::default());
        assert_eq!(features_at(&feats, 0, 0).features[idx("RowPosition")], 0.0);
        assert_eq!(features_at(&feats, 4, 2).features[idx("RowPosition")], 1.0);
        assert_eq!(
            features_at(&feats, 4, 2).features[idx("ColumnPosition")],
            1.0
        );
    }

    #[test]
    fn line_probs_are_embedded() {
        let t = Table::from_rows(vec![vec!["a"]]);
        let mut probs = uniform_probs(1);
        probs[0] = vec![0.5, 0.1, 0.1, 0.1, 0.1, 0.1];
        let feats = extract_cell_features(&t, &probs, &CellFeatureConfig::default());
        assert_eq!(feats[0].features[idx("LineProbMetadata")], 0.5);
        assert_eq!(feats[0].features[idx("LineProbNotes")], 0.1);
    }

    #[test]
    fn empty_row_flags_count_margins_as_empty() {
        let t = sample();
        let feats = extract_cell_features(&t, &uniform_probs(5), &CellFeatureConfig::default());
        let top = features_at(&feats, 0, 0);
        assert_eq!(top.features[idx("IsEmptyRowBefore")], 1.0); // margin
        assert_eq!(top.features[idx("IsEmptyRowAfter")], 1.0); // blank row 1
        let header = features_at(&feats, 2, 0);
        assert_eq!(header.features[idx("IsEmptyRowBefore")], 1.0);
        assert_eq!(header.features[idx("IsEmptyRowAfter")], 0.0);
        assert_eq!(header.features[idx("IsEmptyColumnLeft")], 1.0); // margin
        assert_eq!(header.features[idx("IsEmptyColumnRight")], 0.0);
    }

    #[test]
    fn neighbour_profile_uses_margin_sentinel() {
        let t = Table::from_rows(vec![vec!["ab", "c"], vec!["d", "e"]]);
        let feats = extract_cell_features(&t, &uniform_probs(2), &CellFeatureConfig::default());
        let tl = features_at(&feats, 0, 0);
        // North neighbour of (0,0) does not exist.
        assert_eq!(tl.features[idx("NeighborValueLengthN")], -1.0);
        assert_eq!(tl.features[idx("NeighborDataTypeN")], -1.0);
        assert_eq!(tl.features[idx("NeighborDataTypeNW")], -1.0);
        // East neighbour exists: "c" is a string.
        assert_eq!(tl.features[idx("NeighborDataTypeE")], 2.0);
    }

    #[test]
    fn block_size_feature_present() {
        let t = Table::from_rows(vec![vec!["a", "b"], vec!["c", "d"]]);
        let feats = extract_cell_features(&t, &uniform_probs(2), &CellFeatureConfig::default());
        assert_eq!(feats[0].features[idx("BlockSize")], 1.0);
    }

    #[test]
    fn is_aggregation_marks_detected_cells() {
        let t = Table::from_rows(vec![vec!["a", "10"], vec!["b", "20"], vec!["Total", "30"]]);
        let feats = extract_cell_features(&t, &uniform_probs(3), &CellFeatureConfig::default());
        assert_eq!(
            features_at(&feats, 2, 1).features[idx("IsAggregation")],
            1.0
        );
        assert_eq!(
            features_at(&feats, 0, 1).features[idx("IsAggregation")],
            0.0
        );
    }

    #[test]
    fn all_empty_table_yields_nothing() {
        let t = Table::from_rows(vec![vec!["", ""]]);
        let feats = extract_cell_features(&t, &uniform_probs(1), &CellFeatureConfig::default());
        assert!(feats.is_empty());
    }

    #[test]
    #[should_panic(expected = "one probability vector per row")]
    fn mismatched_probs_panic() {
        let t = sample();
        let _ = extract_cell_features(&t, &uniform_probs(2), &CellFeatureConfig::default());
    }
}
