//! Column classification — the paper's proposed future work (§7:
//! "whether column classification can help boost the classification
//! quality").
//!
//! A verbose CSV file's columns have their own semantics: a left label
//! column, numeric value columns, a derived aggregate column, mostly
//! empty layout columns. [`StrudelColumn`] classifies each column into
//! the six-class taxonomy (labeled by the majority class of its
//! non-empty cells), and [`ColumnBoostedCell`] appends the column
//! probability vector to the cell features — the experiment the
//! `ablation_column_features` binary runs.

use crate::analysis::{compute_analyses, TableAnalysis};
use crate::cell_classifier::{CellPrediction, StrudelCell, StrudelCellConfig};
use crate::cell_features::{extract_cell_features_with, CellFeatureConfig, N_CELL_FEATURES};
use crate::derived::DerivedConfig;
use crate::keywords::has_aggregation_keyword;
use crate::line_classifier::StrudelLine;
use strudel_ml::{Classifier, Dataset, ForestConfig, RandomForest};
use strudel_table::{DataType, ElementClass, LabeledFile, Table};

/// Names of the per-column features, in vector order.
pub const COLUMN_FEATURE_NAMES: [&str; 13] = [
    "ColEmptyCellRatio",
    "ColNumericRatio",
    "ColStringRatio",
    "ColDateRatio",
    "ColHasDerivedKeywords",
    "ColPosition",
    "ColIsFirst",
    "ColIsLast",
    "ColMeanValueLength",
    "ColValueLengthSpread",
    "ColTypeHomogeneity",
    "ColDerivedCellRatio",
    "ColTopCellIsText",
];

/// Number of column features.
pub const N_COLUMN_FEATURES: usize = COLUMN_FEATURE_NAMES.len();

/// Extract one feature row per table column.
pub fn extract_column_features(table: &Table, derived: &DerivedConfig) -> Vec<Vec<f64>> {
    let analysis = TableAnalysis::compute(table, *derived);
    extract_column_features_with(table, derived, &analysis)
}

/// [`extract_column_features`] reusing a precomputed [`TableAnalysis`],
/// so one derived-cell detection per file serves the line, cell, and
/// column extractors (the mask is recomputed if `analysis` was built for
/// a different [`DerivedConfig`]).
pub fn extract_column_features_with(
    table: &Table,
    derived: &DerivedConfig,
    analysis: &TableAnalysis,
) -> Vec<Vec<f64>> {
    let (n_rows, n_cols) = (table.n_rows(), table.n_cols());
    if n_rows == 0 || n_cols == 0 {
        return Vec::new();
    }
    let derived_cells = analysis.derived_for(table, derived);

    // Per-file value-length normaliser (as for the cell features).
    let mut len_max = 1.0f64;
    for r in 0..n_rows {
        for cell in table.row(r) {
            len_max = len_max.max(cell.len() as f64);
        }
    }

    (0..n_cols)
        .map(|c| {
            let mut empty = 0usize;
            let mut numeric = 0usize;
            let mut strings = 0usize;
            let mut dates = 0usize;
            let mut keyword = false;
            let mut lengths: Vec<f64> = Vec::new();
            let mut derived_count = 0usize;
            let mut type_counts = [0usize; 5];
            let mut top_cell_text = 0.0;
            let mut seen_top = false;
            for (r, derived_row) in derived_cells.iter().enumerate() {
                let cell = table.cell(r, c);
                match cell.dtype() {
                    DataType::Empty => empty += 1,
                    DataType::Int | DataType::Float => numeric += 1,
                    DataType::Str => strings += 1,
                    DataType::Date => dates += 1,
                }
                if !cell.is_empty() {
                    if !seen_top {
                        seen_top = true;
                        top_cell_text = f64::from(cell.dtype() == DataType::Str);
                    }
                    type_counts[cell.dtype().code() as usize] += 1;
                    lengths.push(cell.len() as f64);
                    if has_aggregation_keyword(cell.raw()) {
                        keyword = true;
                    }
                    if derived_row[c] {
                        derived_count += 1;
                    }
                }
            }
            let non_empty = lengths.len().max(1) as f64;
            let mean_len = lengths.iter().sum::<f64>() / non_empty;
            let spread =
                (lengths.iter().map(|l| (l - mean_len).powi(2)).sum::<f64>() / non_empty).sqrt();
            let homogeneity = *type_counts.iter().max().expect("non-empty") as f64 / non_empty;
            vec![
                empty as f64 / n_rows as f64,
                numeric as f64 / n_rows as f64,
                strings as f64 / n_rows as f64,
                dates as f64 / n_rows as f64,
                f64::from(keyword),
                c as f64 / (n_cols - 1).max(1) as f64,
                f64::from(c == 0),
                f64::from(c + 1 == n_cols),
                mean_len / len_max,
                spread / len_max,
                homogeneity,
                derived_count as f64 / non_empty,
                top_cell_text,
            ]
        })
        .collect()
}

/// Majority cell class of each column (`None` for all-empty columns).
pub fn column_labels(file: &LabeledFile) -> Vec<Option<ElementClass>> {
    (0..file.table.n_cols())
        .map(|c| {
            let mut counts = [0usize; ElementClass::COUNT];
            for row in &file.cell_labels {
                if let Some(class) = row[c] {
                    counts[class.index()] += 1;
                }
            }
            let max = *counts.iter().max().expect("six classes");
            if max == 0 {
                return None;
            }
            ElementClass::ALL
                .into_iter()
                .find(|cl| counts[cl.index()] == max)
        })
        .collect()
}

/// A fitted column classifier.
pub struct StrudelColumn {
    forest: RandomForest,
    derived: DerivedConfig,
}

impl StrudelColumn {
    /// Fit on the majority-labeled columns of the given files.
    ///
    /// # Panics
    /// Panics when `files` contains no labeled columns.
    pub fn fit(
        files: &[LabeledFile],
        derived: DerivedConfig,
        forest: &ForestConfig,
    ) -> StrudelColumn {
        let analyses = compute_analyses(files, derived);
        Self::fit_with_analyses(files, derived, forest, &analyses)
    }

    /// [`fit`](Self::fit) reusing precomputed per-file analyses (one per
    /// file, in file order).
    pub(crate) fn fit_with_analyses(
        files: &[LabeledFile],
        derived: DerivedConfig,
        forest: &ForestConfig,
        analyses: &[TableAnalysis],
    ) -> StrudelColumn {
        let mut dataset = Dataset::new(N_COLUMN_FEATURES, ElementClass::COUNT);
        for (file, analysis) in files.iter().zip(analyses) {
            let features = extract_column_features_with(&file.table, &derived, analysis);
            for (c, label) in column_labels(file).into_iter().enumerate() {
                if let Some(label) = label {
                    dataset.push(&features[c], label.index());
                }
            }
        }
        assert!(
            !dataset.is_empty(),
            "no labeled columns in the training files"
        );
        StrudelColumn {
            forest: RandomForest::fit(&dataset, forest),
            derived,
        }
    }

    /// Class probability vectors for every column.
    pub fn predict_probs(&self, table: &Table) -> Vec<Vec<f64>> {
        let analysis = TableAnalysis::compute(table, self.derived);
        self.predict_probs_with_analysis(table, &analysis)
    }

    /// [`predict_probs`](Self::predict_probs) reusing a precomputed
    /// [`TableAnalysis`].
    pub fn predict_probs_with_analysis(
        &self,
        table: &Table,
        analysis: &TableAnalysis,
    ) -> Vec<Vec<f64>> {
        extract_column_features_with(table, &self.derived, analysis)
            .iter()
            .map(|f| self.forest.predict_proba(f))
            .collect()
    }

    /// Hard class predictions per column.
    pub fn predict(&self, table: &Table) -> Vec<ElementClass> {
        extract_column_features(table, &self.derived)
            .iter()
            .map(|f| ElementClass::from_index(self.forest.predict(f)))
            .collect()
    }
}

/// `Strudel^C` extended with column class probabilities: each cell's 37
/// features gain the 6-dimensional probability vector of its column.
pub struct ColumnBoostedCell {
    line_model: StrudelLine,
    column_model: StrudelColumn,
    forest: RandomForest,
    features: CellFeatureConfig,
}

impl ColumnBoostedCell {
    /// Total feature width (cell + column probabilities).
    pub const N_FEATURES: usize = N_CELL_FEATURES + ElementClass::COUNT;

    /// Fit all three stages (line, column, boosted cell forest). One
    /// [`TableAnalysis`] per file is computed up front and shared by the
    /// line, column, and cell feature extractors.
    pub fn fit(files: &[LabeledFile], config: &StrudelCellConfig) -> ColumnBoostedCell {
        let analyses = compute_analyses(files, config.line.features.derived);
        let line_model = StrudelLine::fit_with_analyses(files, &config.line, &analyses);
        let column_model = StrudelColumn::fit_with_analyses(
            files,
            config.features.derived,
            &config.forest,
            &analyses,
        );
        let dataset = Self::build_dataset(
            files,
            &line_model,
            &column_model,
            &config.features,
            &analyses,
        );
        assert!(
            !dataset.is_empty(),
            "no labeled cells in the training files"
        );
        ColumnBoostedCell {
            forest: RandomForest::fit(&dataset, &config.forest),
            line_model,
            column_model,
            features: config.features,
        }
    }

    fn build_dataset(
        files: &[LabeledFile],
        line_model: &StrudelLine,
        column_model: &StrudelColumn,
        features: &CellFeatureConfig,
        analyses: &[TableAnalysis],
    ) -> Dataset {
        let mut dataset = Dataset::new(Self::N_FEATURES, ElementClass::COUNT);
        for (file, analysis) in files.iter().zip(analyses) {
            let line_probs = line_model.predict_probs_with_analysis(&file.table, analysis, 0);
            let col_probs = column_model.predict_probs_with_analysis(&file.table, analysis);
            for cf in extract_cell_features_with(&file.table, &line_probs, features, analysis) {
                if let Some(label) = file.cell_labels[cf.row][cf.col] {
                    let mut row = cf.features;
                    row.extend_from_slice(&col_probs[cf.col]);
                    dataset.push(&row, label.index());
                }
            }
        }
        dataset
    }

    /// Classify every non-empty cell.
    pub fn predict(&self, table: &Table) -> Vec<CellPrediction> {
        let analysis = TableAnalysis::compute(table, self.line_model.feature_config().derived);
        let line_probs = self
            .line_model
            .predict_probs_with_analysis(table, &analysis, 0);
        let col_probs = self
            .column_model
            .predict_probs_with_analysis(table, &analysis);
        extract_cell_features_with(table, &line_probs, &self.features, &analysis)
            .into_iter()
            .map(|cf| {
                let mut row = cf.features;
                row.extend_from_slice(&col_probs[cf.col]);
                let probs = self.forest.predict_proba(&row);
                CellPrediction {
                    row: cf.row,
                    col: cf.col,
                    class: ElementClass::from_index(strudel_ml::argmax(&probs)),
                    probs,
                }
            })
            .collect()
    }

    /// The column stage (for inspection).
    pub fn column_model(&self) -> &StrudelColumn {
        &self.column_model
    }
}

/// Convenience: fit both the plain and the boosted model with the same
/// configuration (used by the ablation experiment).
pub fn fit_plain_and_boosted(
    files: &[LabeledFile],
    config: &StrudelCellConfig,
) -> (StrudelCell, ColumnBoostedCell) {
    (
        StrudelCell::fit(files, config),
        ColumnBoostedCell::fit(files, config),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;

    #[test]
    fn column_features_shape() {
        let t = Table::from_rows(vec![
            vec!["Region", "2019", "Total"],
            vec!["a", "10", "10"],
            vec!["b", "20", "20"],
        ]);
        let f = extract_column_features(&t, &DerivedConfig::default());
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|row| row.len() == N_COLUMN_FEATURES));
        let idx = |n: &str| COLUMN_FEATURE_NAMES.iter().position(|&x| x == n).unwrap();
        assert_eq!(f[0][idx("ColIsFirst")], 1.0);
        assert_eq!(f[2][idx("ColIsLast")], 1.0);
        assert_eq!(f[2][idx("ColHasDerivedKeywords")], 1.0);
        assert_eq!(f[0][idx("ColHasDerivedKeywords")], 0.0);
        assert!(f[1][idx("ColNumericRatio")] > 0.6);
        assert_eq!(f[0][idx("ColTopCellIsText")], 1.0);
    }

    #[test]
    fn column_labels_majority() {
        let corpus = tiny_corpus(1);
        let labels = column_labels(&corpus.files[0]);
        // Column 0 holds metadata/header/data/group/notes cells — data
        // dominates; columns 1-2 are data-dominated too.
        assert_eq!(labels, vec![Some(ElementClass::Data); 3]);
    }

    #[test]
    fn column_classifier_learns_derived_columns() {
        // Corpus where the last column is a keyword-less aggregate: the
        // column classifier should learn it from the derived-cell ratio
        // and positional cues.
        use crate::cell_classifier::StrudelCellConfig;
        let corpus = tiny_corpus(8);
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(10, 0),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(10, 1),
            ..StrudelCellConfig::default()
        };
        let model = ColumnBoostedCell::fit(&corpus.files, &config);
        let preds = model.predict(&corpus.files[0].table);
        let correct = preds
            .iter()
            .filter(|p| Some(p.class) == corpus.files[0].cell_labels[p.row][p.col])
            .count();
        assert!(correct * 10 >= preds.len() * 9, "{correct}/{}", preds.len());
        // Column predictions are well-formed.
        let cols = model.column_model().predict(&corpus.files[0].table);
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn empty_table_column_features() {
        let t = Table::from_rows(Vec::<Vec<String>>::new());
        assert!(extract_column_features(&t, &DerivedConfig::default()).is_empty());
    }
}
