//! Algorithm 2: derived-cell detection (Section 5.5).
//!
//! A derived cell aggregates the values of other numeric cells in its row
//! or column. The algorithm exploits three observations from the paper:
//! (i) derived cells aggregate within their own row or column, (ii) they
//! aggregate values *close* to them, and (iii) sum and mean dominate as
//! aggregation functions.
//!
//! Candidate rows/columns are *anchored* by cells containing an
//! aggregation keyword (Section 4's dictionary); for each anchor, the
//! algorithm accumulates numeric values row-by-row upwards then downwards
//! (and column-by-column left/right), and whenever the running sum — or
//! the running mean — is element-wise within `delta` of the candidates for
//! more than a `coverage` fraction of them, all numeric cells of the
//! anchored row/column are reported as derived.

use crate::keywords::has_aggregation_keyword;
use strudel_table::{CellView, GridView, Table};

/// Parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedConfig {
    /// Element-wise slack `d` when comparing a candidate with the running
    /// aggregate (the paper sets 0.1, enough to absorb rounded means).
    pub delta: f64,
    /// Fraction `c` of candidates that must match for a detection
    /// (the paper sets 0.5).
    pub coverage: f64,
    /// Also test running minima and maxima — the "recognizing more
    /// aggregation functions" extension the paper's conclusion proposes.
    /// Off by default to match the published algorithm (sum and mean
    /// only); the `ablation_derived_params` experiment measures its
    /// effect.
    pub detect_min_max: bool,
}

impl Default for DerivedConfig {
    fn default() -> Self {
        DerivedConfig {
            delta: 0.1,
            coverage: 0.5,
            detect_min_max: false,
        }
    }
}

/// Detect derived cells; returns an `n_rows × n_cols` boolean grid.
pub fn detect_derived_cells(table: &Table, config: &DerivedConfig) -> Vec<Vec<bool>> {
    detect_derived_cells_view(table.view(), config)
}

/// [`detect_derived_cells`] over any cell grid — owned tables and the
/// borrowed grids of the zero-copy detection path run the same code.
pub fn detect_derived_cells_view<C: CellView>(
    table: GridView<'_, C>,
    config: &DerivedConfig,
) -> Vec<Vec<bool>> {
    let (rows, cols) = (table.n_rows(), table.n_cols());
    let mut out = vec![vec![false; cols]; rows];
    if rows == 0 || cols == 0 {
        return out;
    }

    // Line 2: anchoring cells — any cell containing an aggregation keyword.
    let mut anchors: Vec<(usize, usize)> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let cell = table.cell(r, c);
            if !cell.is_empty() && has_aggregation_keyword(cell.raw()) {
                anchors.push((r, c));
            }
        }
    }

    for &(ar, ac) in &anchors {
        // Candidates in the anchor's row: numeric cells and their columns.
        let row_candidates: Vec<(usize, f64)> = (0..cols)
            .filter_map(|c| table.cell(ar, c).numeric().map(|v| (c, v)))
            .collect();
        if !row_candidates.is_empty() {
            let detected = scan_rows(table, ar, &row_candidates, config, Direction::Up)
                || scan_rows(table, ar, &row_candidates, config, Direction::Down);
            if detected {
                for &(c, _) in &row_candidates {
                    out[ar][c] = true;
                }
            }
        }

        // Candidates in the anchor's column: numeric cells and their rows.
        let col_candidates: Vec<(usize, f64)> = (0..rows)
            .filter_map(|r| table.cell(r, ac).numeric().map(|v| (r, v)))
            .collect();
        if !col_candidates.is_empty() {
            let detected = scan_cols(table, ac, &col_candidates, config, Direction::Up)
                || scan_cols(table, ac, &col_candidates, config, Direction::Down);
            if detected {
                for &(r, _) in &col_candidates {
                    out[r][ac] = true;
                }
            }
        }
    }
    out
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Towards smaller indices (upwards for rows, leftwards for columns).
    Up,
    /// Towards larger indices (downwards / rightwards).
    Down,
}

/// Running aggregates over the scanned prefix: sums always; minima and
/// maxima when the extension is enabled.
struct Accumulator {
    sums: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    steps: usize,
}

impl Accumulator {
    fn new(n: usize) -> Accumulator {
        Accumulator {
            sums: vec![0.0; n],
            mins: vec![f64::INFINITY; n],
            maxs: vec![f64::NEG_INFINITY; n],
            steps: 0,
        }
    }

    fn push(&mut self, k: usize, v: f64) {
        self.sums[k] += v;
        self.mins[k] = self.mins[k].min(v);
        self.maxs[k] = self.maxs[k].max(v);
    }
}

/// Scan rows away from `anchor_row`, accumulating values at the candidate
/// columns; report whether any enabled aggregate ever covers the
/// candidates.
fn scan_rows<C: CellView>(
    table: GridView<'_, C>,
    anchor_row: usize,
    candidates: &[(usize, f64)],
    config: &DerivedConfig,
    direction: Direction,
) -> bool {
    let mut acc = Accumulator::new(candidates.len());
    let mut r = anchor_row as isize;
    loop {
        r += match direction {
            Direction::Up => -1,
            Direction::Down => 1,
        };
        if r < 0 || r as usize >= table.n_rows() {
            return false;
        }
        acc.steps += 1;
        for (k, &(c, _)) in candidates.iter().enumerate() {
            if let Some(v) = table.cell(r as usize, c).numeric() {
                acc.push(k, v);
            }
        }
        if covered(candidates, &acc, config) {
            return true;
        }
    }
}

/// Column-direction counterpart of [`scan_rows`].
fn scan_cols<C: CellView>(
    table: GridView<'_, C>,
    anchor_col: usize,
    candidates: &[(usize, f64)],
    config: &DerivedConfig,
    direction: Direction,
) -> bool {
    let mut acc = Accumulator::new(candidates.len());
    let mut c = anchor_col as isize;
    loop {
        c += match direction {
            Direction::Up => -1,
            Direction::Down => 1,
        };
        if c < 0 || c as usize >= table.n_cols() {
            return false;
        }
        acc.steps += 1;
        for (k, &(r, _)) in candidates.iter().enumerate() {
            if let Some(v) = table.cell(r, c as usize).numeric() {
                acc.push(k, v);
            }
        }
        if covered(candidates, &acc, config) {
            return true;
        }
    }
}

/// Coverage test of lines 16/27: the fraction of candidates element-wise
/// within `delta` of the running sum — or of the running mean (and, with
/// the extension, min/max) — must exceed `coverage`.
fn covered(candidates: &[(usize, f64)], acc: &Accumulator, config: &DerivedConfig) -> bool {
    let n = candidates.len() as f64;
    let close = |aggregate: &dyn Fn(usize) -> f64| {
        candidates
            .iter()
            .enumerate()
            .filter(|(k, (_, v))| (v - aggregate(*k)).abs() < config.delta)
            .count() as f64
            / n
    };
    // `steps == 1` makes sum == mean; requiring more than one accumulated
    // line for the mean check would reject legitimate two-line tables, so
    // both checks run from the first step.
    if close(&|k| acc.sums[k]) > config.coverage
        || close(&|k| acc.sums[k] / acc.steps as f64) > config.coverage
    {
        return true;
    }
    if config.detect_min_max && acc.steps >= 2 {
        // min/max over a single line is the identity — require two lines
        // so plain data rows do not self-match.
        if close(&|k| acc.mins[k]) > config.coverage || close(&|k| acc.maxs[k]) > config.coverage {
            return true;
        }
    }
    false
}

/// Per-line derived coverage: the fraction of a line's numeric cells that
/// Algorithm 2 recognises as derived (the `DerivedCoverage` line feature).
pub fn derived_coverage_per_line(table: &Table, derived: &[Vec<bool>]) -> Vec<f64> {
    derived_coverage_per_line_view(table.view(), derived)
}

/// [`derived_coverage_per_line`] over any cell grid.
pub fn derived_coverage_per_line_view<C: CellView>(
    table: GridView<'_, C>,
    derived: &[Vec<bool>],
) -> Vec<f64> {
    (0..table.n_rows())
        .map(|r| {
            let mut numeric = 0usize;
            let mut hit = 0usize;
            for (c, &is_derived) in derived[r].iter().enumerate() {
                if table.cell(r, c).dtype().is_numeric() {
                    numeric += 1;
                    if is_derived {
                        hit += 1;
                    }
                }
            }
            if numeric == 0 {
                0.0
            } else {
                hit as f64 / numeric as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect(rows: Vec<Vec<&str>>) -> Vec<Vec<bool>> {
        detect_derived_cells(&Table::from_rows(rows), &DerivedConfig::default())
    }

    #[test]
    fn sum_row_below_data_is_detected() {
        let grid = detect(vec![
            vec!["Region", "2019", "2020"],
            vec!["North", "10", "20"],
            vec!["South", "30", "40"],
            vec!["Total", "40", "60"],
        ]);
        assert!(grid[3][1]);
        assert!(grid[3][2]);
        assert!(!grid[1][1]);
        assert!(!grid[2][2]);
    }

    #[test]
    fn mean_row_is_detected() {
        let grid = detect(vec![
            vec!["North", "10", "20"],
            vec!["South", "30", "40"],
            vec!["Average", "20", "30"],
        ]);
        assert!(grid[2][1]);
        assert!(grid[2][2]);
    }

    #[test]
    fn sum_column_right_of_data_is_detected() {
        let grid = detect(vec![
            vec!["Region", "A", "B", "Total"],
            vec!["North", "1", "2", "3"],
            vec!["South", "4", "5", "9"],
        ]);
        assert!(grid[1][3]);
        assert!(grid[2][3]);
        assert!(!grid[1][1]);
    }

    #[test]
    fn no_keyword_means_no_candidates() {
        // The 40/60 line is a genuine sum but has no anchoring keyword —
        // the paper's error analysis (derived-as-data) hinges on this.
        let grid = detect(vec![
            vec!["North", "10", "20"],
            vec!["South", "30", "40"],
            vec!["Everything", "40", "60"],
        ]);
        assert!(grid.iter().all(|row| row.iter().all(|&v| !v)));
    }

    #[test]
    fn wrong_sums_are_not_detected() {
        let grid = detect(vec![
            vec!["North", "10", "20"],
            vec!["South", "30", "40"],
            vec!["Total", "99", "99"],
        ]);
        assert!(!grid[2][1]);
        assert!(!grid[2][2]);
    }

    #[test]
    fn coverage_threshold_allows_partial_match() {
        // 2 of 3 candidates match (66% > 50%): all three cells in the
        // anchored line are marked, matching the algorithm's
        // "C_D ← C_D ∪ C_R" semantics.
        let grid = detect(vec![
            vec!["North", "10", "20", "1"],
            vec!["South", "30", "40", "2"],
            vec!["Total", "40", "60", "999"],
        ]);
        assert!(grid[2][1]);
        assert!(grid[2][2]);
        assert!(grid[2][3]);
    }

    #[test]
    fn sum_over_non_adjacent_span() {
        // Aggregation across four data lines: detection happens at the
        // prefix depth where the running sum matches.
        let grid = detect(vec![
            vec!["a", "1"],
            vec!["b", "2"],
            vec!["c", "3"],
            vec!["d", "4"],
            vec!["All", "10"],
        ]);
        assert!(grid[4][1]);
    }

    #[test]
    fn anchor_with_no_numeric_neighbours_is_harmless() {
        let grid = detect(vec![vec!["Total notes about methods"], vec!["text"]]);
        assert!(grid.iter().all(|row| row.iter().all(|&v| !v)));
    }

    #[test]
    fn delta_tolerates_rounded_means() {
        // Mean of 10 and 15 is 12.5, reported rounded to 12.55 (within
        // delta 0.1).
        let grid = detect(vec![
            vec!["x", "10"],
            vec!["y", "15"],
            vec!["Mean", "12.55"],
        ]);
        assert!(grid[2][1]);
    }

    #[test]
    fn derived_coverage_feature() {
        let table = Table::from_rows(vec![
            vec!["North", "10", "20"],
            vec!["South", "30", "40"],
            vec!["Total", "40", "60"],
        ]);
        let derived = detect_derived_cells(&table, &DerivedConfig::default());
        let cov = derived_coverage_per_line(&table, &derived);
        assert_eq!(cov[0], 0.0);
        assert_eq!(cov[1], 0.0);
        assert!((cov[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table() {
        let grid = detect(vec![]);
        assert!(grid.is_empty());
    }

    #[test]
    fn min_max_detected_only_with_extension() {
        let rows = vec![
            vec!["a", "10", "5"],
            vec!["b", "30", "9"],
            vec!["c", "20", "7"],
            // 10/5 are the column minima; "All" anchors the row. (The sum
            // and mean of the scanned prefixes never match.)
            vec!["All, lowest", "10", "5"],
        ];
        let table = Table::from_rows(rows.clone());
        let base = detect_derived_cells(&table, &DerivedConfig::default());
        assert!(
            !base[3][1] && !base[3][2],
            "published algorithm: sum/mean only"
        );
        let extended = detect_derived_cells(
            &table,
            &DerivedConfig {
                detect_min_max: true,
                ..DerivedConfig::default()
            },
        );
        assert!(extended[3][1] && extended[3][2], "extension detects minima");
    }

    #[test]
    fn min_max_needs_two_scanned_lines() {
        // A lone data line above the anchor would trivially equal its own
        // min/max; the extension must not fire on a single-line prefix
        // when the values differ from that line... but when the anchor row
        // simply repeats the adjacent line, sum-detection already fires,
        // so use values that match neither sum nor mean of one line.
        let table = Table::from_rows(vec![vec!["a", "10"], vec!["All", "7"]]);
        let extended = detect_derived_cells(
            &table,
            &DerivedConfig {
                detect_min_max: true,
                ..DerivedConfig::default()
            },
        );
        assert!(!extended[1][1]);
    }
}
