//! Relational extraction: turn a detected [`Structure`] into clean
//! relational tuples.
//!
//! This is the downstream task the Troy corpus was originally built for
//! (Embley et al., IJDAR 2016: "converting heterogeneous statistical
//! tables on the web to searchable databases") and the payoff of
//! structure detection: once lines and cells are classified, each table
//! region yields a header, its data tuples, and — crucially — the *group
//! context*: group-header lines like `Northern region:` scope the data
//! rows beneath them, so they become a filled-down leading column
//! instead of being lost.

use crate::pipeline::Structure;
use strudel_table::ElementClass;

/// One extracted relational table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationalTable {
    /// Column names: a synthetic `group` column (when the region has
    /// group headers) followed by the detected header names (or
    /// `col_<i>` placeholders when a column has no header).
    pub columns: Vec<String>,
    /// Data tuples, one per data line, aligned with `columns`.
    pub rows: Vec<Vec<String>>,
}

impl RelationalTable {
    /// Render as RFC 4180 CSV text.
    pub fn to_csv(&self) -> String {
        let render = |row: &[String]| {
            row.iter()
                .map(|v| {
                    if v.contains([',', '"', '\n']) {
                        format!("\"{}\"", v.replace('"', "\"\""))
                    } else {
                        v.clone()
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut out = render(&self.columns);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }
}

/// Extract one relational table per detected table region.
///
/// - multi-line headers are joined cell-wise with a space;
/// - group lines (and the leading group cell of derived lines) fill
///   down into a synthetic `group` column;
/// - derived lines/cells are dropped (they are recomputable);
/// - trailing all-empty columns of a region are trimmed.
pub fn to_relational(structure: &Structure) -> Vec<RelationalTable> {
    let n_cols = structure.table.n_cols();
    // Per-cell class lookup.
    let mut cell_class = vec![vec![None; n_cols]; structure.table.n_rows()];
    for c in &structure.cells {
        cell_class[c.row][c.col] = Some(c.class);
    }

    structure
        .tables()
        .iter()
        .filter(|region| !region.body_rows.is_empty())
        .map(|region| {
            // Header names: cell-wise join of the region's header rows.
            let mut header = vec![String::new(); n_cols];
            for &r in &region.header_rows {
                for (c, slot) in header.iter_mut().enumerate() {
                    let v = structure.table.cell(r, c).raw().trim();
                    if !v.is_empty() {
                        if !slot.is_empty() {
                            slot.push(' ');
                        }
                        slot.push_str(v);
                    }
                }
            }

            // Body: fill group context; keep data lines only.
            let mut group_context = String::new();
            let mut has_groups = false;
            let mut blanked_derived = vec![false; n_cols];
            let mut tuples: Vec<(String, Vec<String>)> = Vec::new();
            for &r in &region.body_rows {
                match structure.lines[r] {
                    Some(ElementClass::Group) => {
                        group_context = first_non_empty(structure, r);
                        has_groups = true;
                    }
                    Some(ElementClass::Derived)
                        // A derived line may still *open* a group via its
                        // leading group cell (e.g. "Sale/Manufacturing:").
                        if cell_class[r]
                            .iter()
                            .flatten()
                            .any(|&c| c == ElementClass::Group)
                        => {
                            has_groups = true;
                        }
                    Some(ElementClass::Data) => {
                        let values: Vec<String> = (0..n_cols)
                            .map(|c| {
                                // Derived-column cells inside data lines are
                                // recomputable aggregates: drop them.
                                if cell_class[r][c] == Some(ElementClass::Derived) {
                                    blanked_derived[c] = true;
                                    String::new()
                                } else {
                                    structure.table.cell(r, c).raw().to_string()
                                }
                            })
                            .collect();
                        tuples.push((group_context.clone(), values));
                    }
                    _ => {}
                }
            }

            // Trim columns with no remaining tuple values — including
            // headed columns whose body was entirely derived (an
            // aggregate column leaves only its header behind).
            let keep: Vec<usize> = (0..n_cols)
                .filter(|&c| {
                    tuples.iter().any(|(_, vals)| !vals[c].is_empty())
                        || (!header[c].is_empty() && !blanked_derived[c])
                })
                .collect();

            let mut columns: Vec<String> = Vec::new();
            if has_groups {
                columns.push("group".to_string());
            }
            for &c in &keep {
                columns.push(if header[c].is_empty() {
                    format!("col_{c}")
                } else {
                    header[c].clone()
                });
            }
            let rows: Vec<Vec<String>> = tuples
                .into_iter()
                .map(|(group, vals)| {
                    let mut row = Vec::with_capacity(columns.len());
                    if has_groups {
                        row.push(group);
                    }
                    row.extend(keep.iter().map(|&c| vals[c].clone()));
                    row
                })
                .collect();
            RelationalTable { columns, rows }
        })
        .collect()
}

fn first_non_empty(structure: &Structure, row: usize) -> String {
    (0..structure.table.n_cols())
        .map(|c| structure.table.cell(row, c).raw().trim())
        .find(|v| !v.is_empty())
        .unwrap_or("")
        .trim_end_matches(':')
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_classifier::CellPrediction;
    use strudel_dialect::Dialect;
    use strudel_table::Table;

    use ElementClass::*;

    /// Build a Structure directly from known classes (extraction is a
    /// pure function of them).
    fn structure(
        rows: Vec<Vec<&str>>,
        line_classes: Vec<Option<ElementClass>>,
        cell_overrides: Vec<(usize, usize, ElementClass)>,
    ) -> Structure {
        let table = Table::from_rows(rows);
        let mut cells = Vec::new();
        for (r, line_class) in line_classes.iter().enumerate() {
            for c in 0..table.n_cols() {
                if table.cell(r, c).is_empty() {
                    continue;
                }
                let class = cell_overrides
                    .iter()
                    .find(|(orow, ocol, _)| *orow == r && *ocol == c)
                    .map(|(_, _, cl)| *cl)
                    .or(*line_class)
                    .unwrap_or(Data);
                let mut probs = vec![0.0; ElementClass::COUNT];
                probs[class.index()] = 1.0;
                cells.push(CellPrediction {
                    row: r,
                    col: c,
                    class,
                    probs,
                });
            }
        }
        let line_probs = vec![vec![1.0 / 6.0; 6]; table.n_rows()];
        Structure::new(Dialect::rfc4180(), table, line_classes, line_probs, cells)
    }

    #[test]
    fn group_context_fills_down() {
        let s = structure(
            vec![
                vec!["", "2019", "2020"],
                vec!["North:", "", ""],
                vec!["Kent", "1", "2"],
                vec!["Surrey", "3", "4"],
                vec!["South:", "", ""],
                vec!["Dorset", "5", "6"],
            ],
            vec![
                Some(Header),
                Some(Group),
                Some(Data),
                Some(Data),
                Some(Group),
                Some(Data),
            ],
            vec![],
        );
        let tables = to_relational(&s);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.columns, vec!["group", "col_0", "2019", "2020"]);
        assert_eq!(t.rows[0], vec!["North", "Kent", "1", "2"]);
        assert_eq!(t.rows[2], vec!["South", "Dorset", "5", "6"]);
    }

    #[test]
    fn derived_lines_and_cells_are_dropped() {
        let s = structure(
            vec![
                vec!["", "A", "Total"],
                vec!["x", "1", "1"],
                vec!["Total", "1", "1"],
            ],
            vec![Some(Header), Some(Data), Some(Derived)],
            vec![(1, 2, Derived), (2, 0, Group)],
        );
        let tables = to_relational(&s);
        let t = &tables[0];
        // Derived column is blanked and trimmed; derived line dropped.
        assert_eq!(t.rows.len(), 1);
        assert!(!t.columns.contains(&"Total".to_string()));
        assert_eq!(t.rows[0], vec!["", "x", "1"]);
    }

    #[test]
    fn multi_line_headers_join() {
        let s = structure(
            vec![
                vec!["Area", "Rate"],
                vec!["", "(per 100)"],
                vec!["Kent", "3"],
            ],
            vec![Some(Header), Some(Header), Some(Data)],
            vec![],
        );
        let tables = to_relational(&s);
        assert_eq!(tables[0].columns, vec!["Area", "Rate (per 100)"]);
    }

    #[test]
    fn stacked_regions_yield_separate_tables() {
        let s = structure(
            vec![
                vec!["T1", ""],
                vec!["a", "1"],
                vec!["T2 caption", ""],
                vec!["b", "2"],
            ],
            vec![Some(Metadata), Some(Data), Some(Metadata), Some(Data)],
            vec![],
        );
        let tables = to_relational(&s);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows, vec![vec!["a", "1"]]);
        assert_eq!(tables[1].rows, vec![vec!["b", "2"]]);
    }

    #[test]
    fn csv_rendering_quotes() {
        let t = RelationalTable {
            columns: vec!["a,b".to_string(), "c".to_string()],
            rows: vec![vec!["say \"hi\"".to_string(), "2".to_string()]],
        };
        let csv = t.to_csv();
        assert_eq!(csv, "\"a,b\",c\n\"say \"\"hi\"\"\",2\n");
    }

    #[test]
    fn region_without_data_is_skipped() {
        let s = structure(vec![vec!["just a note"]], vec![Some(Notes)], vec![]);
        assert!(to_relational(&s).is_empty());
    }
}
