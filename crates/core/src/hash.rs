//! Shared content fingerprinting: 2×FNV-1a-64 plus length.
//!
//! One hashing implementation serves every consumer that needs a cheap,
//! deterministic content identity: the `strudel serve` result cache keys
//! classification results by it, and the packed container format
//! (`strudel-pack`) checksums every block and the whole original input
//! with it. FNV is not cryptographic, but a collision requires the
//! *same* pair of independent 64-bit digests and the same length —
//! vanishingly unlikely for accidental corruption or repeat traffic, and
//! neither consumer treats the hash as a trust boundary (a cache
//! collision poisons only the attacker's own deployment; a container
//! checksum guards against truncation and bit rot, not forgery).

/// A 136-bit content fingerprint: two independent FNV-1a 64-bit digests
/// (different offset bases) plus the input length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentHash {
    /// FNV-1a digest from the standard offset basis.
    pub h1: u64,
    /// FNV-1a digest from the alternate (golden-ratio) offset basis.
    pub h2: u64,
    /// Input length in bytes.
    pub len: u64,
}

/// The standard FNV-1a 64-bit offset basis.
const FNV_BASIS_1: u64 = 0xcbf2_9ce4_8422_2325;
/// The alternate offset basis (the 64-bit golden-ratio constant),
/// making the second digest independent of the first.
const FNV_BASIS_2: u64 = 0x9e37_79b9_7f4a_7c15;
/// The FNV 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl ContentHash {
    /// Fingerprint raw bytes.
    pub fn of(bytes: &[u8]) -> ContentHash {
        ContentHash {
            h1: fnv1a(bytes, FNV_BASIS_1),
            h2: fnv1a(bytes, FNV_BASIS_2),
            len: bytes.len() as u64,
        }
    }

    /// Render as 48 lowercase hex digits: `h1` (16) + `h2` (16) +
    /// `len` (16) — compact enough for a URL path segment while keeping
    /// the full fingerprint.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}{:016x}", self.h1, self.h2, self.len)
    }

    /// Parse the representation produced by [`ContentHash::to_hex`].
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 48 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let part = |range: std::ops::Range<usize>| u64::from_str_radix(&s[range], 16).ok();
        Some(ContentHash {
            h1: part(0..16)?,
            h2: part(16..32)?,
            len: part(32..48)?,
        })
    }
}

/// Incremental [`ContentHash`] computation, for callers that see the
/// input in chunks (the packed-container writer hashes the original
/// stream as it flows through without ever buffering it whole).
/// Feeding the same bytes in any chunking yields exactly
/// [`ContentHash::of`] over their concatenation.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    h1: u64,
    h2: u64,
    len: u64,
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// Start a fresh fingerprint.
    pub fn new() -> ContentHasher {
        ContentHasher {
            h1: FNV_BASIS_1,
            h2: FNV_BASIS_2,
            len: 0,
        }
    }

    /// Fold one chunk into the fingerprint.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h1 = (self.h1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.h2 = (self.h2 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    /// The fingerprint of everything fed so far.
    pub fn finish(&self) -> ContentHash {
        ContentHash {
            h1: self.h1,
            h2: self.h2,
            len: self.len,
        }
    }
}

/// FNV-1a over `bytes` from the given offset basis.
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Independent reference FNV-1a, written without reuse of the
    /// production helper, so a typo in one constant cannot hide.
    fn reference_fnv1a(bytes: &[u8], basis: u64) -> u64 {
        bytes.iter().fold(basis, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x100000001B3)
        })
    }

    #[test]
    fn matches_reference_implementation() {
        for input in [
            &b""[..],
            b"a",
            b"State,2019\nBerlin,1\n",
            b"\xff\x00\xfe arbitrary bytes",
        ] {
            let h = ContentHash::of(input);
            assert_eq!(h.h1, reference_fnv1a(input, 0xcbf29ce484222325));
            assert_eq!(h.h2, reference_fnv1a(input, 0x9e3779b97f4a7c15));
            assert_eq!(h.len, input.len() as u64);
        }
    }

    #[test]
    fn known_digest_of_empty_input_is_the_fnv_offset_basis() {
        let h = ContentHash::of(b"");
        assert_eq!(h.h1, 0xcbf2_9ce4_8422_2325);
        assert_eq!(h.h2, 0x9e37_79b9_7f4a_7c15);
        assert_eq!(h.len, 0);
    }

    #[test]
    fn differs_on_content_and_matches_on_equal_content() {
        let a = ContentHash::of(b"State,2019\nBerlin,1\n");
        let b = ContentHash::of(b"State,2019\nBerlin,2\n");
        assert_ne!(a, b);
        assert_eq!(a, ContentHash::of(b"State,2019\nBerlin,1\n"));
    }

    #[test]
    fn incremental_hasher_is_chunking_invariant() {
        let input = b"State,2019\nBerlin,1\nHamburg,2\n";
        let whole = ContentHash::of(input);
        for chunk in [1, 2, 3, 7, input.len()] {
            let mut hasher = ContentHasher::new();
            for piece in input.chunks(chunk) {
                hasher.update(piece);
            }
            assert_eq!(hasher.finish(), whole, "chunk size {chunk}");
        }
        assert_eq!(ContentHasher::new().finish(), ContentHash::of(b""));
    }

    #[test]
    fn hex_roundtrip() {
        for input in [&b""[..], b"x", b"longer input with, commas\n"] {
            let h = ContentHash::of(input);
            let hex = h.to_hex();
            assert_eq!(hex.len(), 48);
            assert_eq!(ContentHash::from_hex(&hex), Some(h));
        }
        assert_eq!(ContentHash::from_hex(""), None);
        assert_eq!(ContentHash::from_hex("zz"), None);
        let valid = ContentHash::of(b"x").to_hex();
        assert_eq!(ContentHash::from_hex(&valid[..47]), None);
        let mut bad = valid.clone();
        bad.replace_range(0..1, "g");
        assert_eq!(ContentHash::from_hex(&bad), None);
    }
}
