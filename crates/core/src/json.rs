//! Minimal JSON rendering shared by the batch report and the structure
//! serializer.
//!
//! The workspace is dependency-free by policy, so the few places that
//! emit JSON (the [`BatchReport`](crate::batch::BatchReport), the
//! `detect --json` CLI output, and the `strudel serve` classify
//! endpoint) share this hand-rolled writer instead of pulling in serde.
//! [`Structure::to_json`] is the *canonical* machine-readable rendering
//! of a detection result: the CLI and the server both emit it verbatim,
//! which is what lets the daemon's integration tests assert that a
//! served response is byte-identical to a one-shot CLI run.

use crate::pipeline::Structure;
use std::fmt::Write;

/// Escape a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Structure {
    /// Render the detected structure as a stable JSON object.
    ///
    /// Schema:
    ///
    /// ```json
    /// {
    ///   "dialect": {"delimiter": ",", "quote": "\"", "escape": null},
    ///   "n_rows": 6,
    ///   "n_cols": 3,
    ///   "lines": ["metadata", "header", "data", null],
    ///   "cells": [{"row": 4, "col": 0, "class": "group"}]
    /// }
    /// ```
    ///
    /// `lines` holds one class name per table row (`null` for empty
    /// rows); `cells` lists only the cells whose predicted class differs
    /// from their line class — the same convention as `detect --cells`
    /// and the golden snapshots, keeping the payload proportional to the
    /// interesting structure rather than to the file size.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let char_field = |c: Option<char>| match c {
            Some(c) => json_string(&c.to_string()),
            None => "null".to_string(),
        };
        writeln!(
            out,
            "  \"dialect\": {{\"delimiter\": {}, \"quote\": {}, \"escape\": {}}},",
            json_string(&self.dialect.delimiter.to_string()),
            char_field(self.dialect.quote),
            char_field(self.dialect.escape),
        )
        .unwrap();
        writeln!(out, "  \"n_rows\": {},", self.table.n_rows()).unwrap();
        writeln!(out, "  \"n_cols\": {},", self.table.n_cols()).unwrap();
        let lines: Vec<String> = self
            .lines
            .iter()
            .map(|l| match l {
                Some(c) => format!("\"{}\"", c.name()),
                None => "null".to_string(),
            })
            .collect();
        writeln!(out, "  \"lines\": [{}],", lines.join(", ")).unwrap();
        let cells: Vec<String> = self
            .cells
            .iter()
            .filter(|cell| Some(cell.class) != self.lines[cell.row])
            .map(|cell| {
                format!(
                    "    {{\"row\": {}, \"col\": {}, \"class\": \"{}\"}}",
                    cell.row,
                    cell.col,
                    cell.class.name()
                )
            })
            .collect();
        if cells.is_empty() {
            out.push_str("  \"cells\": []\n");
        } else {
            out.push_str("  \"cells\": [\n");
            out.push_str(&cells.join(",\n"));
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\u{1}y"), "\"x\\u0001y\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn structure_json_schema() {
        use strudel_table::{ElementClass, Table};
        let table = Table::from_rows(vec![vec!["Title", ""], vec!["a", "1"]]);
        let lines = vec![Some(ElementClass::Metadata), Some(ElementClass::Data)];
        let line_probs = vec![vec![1.0 / 6.0; 6]; 2];
        let s = Structure::new(
            strudel_dialect::Dialect::rfc4180(),
            table,
            lines,
            line_probs,
            Vec::new(),
        );
        let json = s.to_json();
        assert!(json.contains("\"delimiter\": \",\""), "{json}");
        assert!(json.contains("\"quote\": \"\\\"\""), "{json}");
        assert!(json.contains("\"escape\": null"), "{json}");
        assert!(json.contains("\"n_rows\": 2"), "{json}");
        assert!(
            json.contains("\"lines\": [\"metadata\", \"data\"]"),
            "{json}"
        );
        assert!(json.contains("\"cells\": []"), "{json}");
    }
}
