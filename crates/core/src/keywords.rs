//! The aggregation keyword dictionary (Section 4, `AggregationWord`).
//!
//! The paper uses a fixed, case-insensitive dictionary of terms associated
//! with aggregation in tables. The same dictionary drives three different
//! mechanisms: the `AggregationWord` line feature, the
//! `Has/Row/ColumnHasDerivedKeywords` cell features, and the anchoring-cell
//! selection of the derived-cell detection algorithm (Algorithm 2).

/// The aggregation keywords of Section 4 (case-insensitive).
pub const AGGREGATION_KEYWORDS: [&str; 7] =
    ["total", "all", "sum", "average", "avg", "mean", "median"];

/// Whether `text` contains any aggregation keyword as a whole word
/// (case-insensitive). "Total crime" matches; "totally" does not.
pub fn has_aggregation_keyword(text: &str) -> bool {
    words(text).any(|w| {
        AGGREGATION_KEYWORDS
            .iter()
            .any(|k| w.eq_ignore_ascii_case(k))
    })
}

/// Iterator over the alphanumeric words of `text`.
fn words(text: &str) -> impl Iterator<Item = &str> {
    text.split(|ch: char| !ch.is_alphanumeric())
        .filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_keywords_match() {
        for kw in AGGREGATION_KEYWORDS {
            assert!(has_aggregation_keyword(kw), "{kw} should match");
        }
    }

    #[test]
    fn case_insensitive() {
        assert!(has_aggregation_keyword("TOTAL"));
        assert!(has_aggregation_keyword("Average"));
    }

    #[test]
    fn embedded_in_phrases() {
        assert!(has_aggregation_keyword("Total crime"));
        assert!(has_aggregation_keyword("Sale/Manufacturing: total"));
        assert!(has_aggregation_keyword("Grand Total:"));
    }

    #[test]
    fn substrings_do_not_match() {
        assert!(!has_aggregation_keyword("totally"));
        assert!(!has_aggregation_keyword("summary"));
        assert!(!has_aggregation_keyword("meantime"));
        assert!(!has_aggregation_keyword("allocation"));
    }

    #[test]
    fn empty_and_plain_text() {
        assert!(!has_aggregation_keyword(""));
        assert!(!has_aggregation_keyword("Heroin seizures 2020"));
    }
}
