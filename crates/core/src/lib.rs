//! # strudel
//!
//! Reproduction of **Strudel** — *Structure Detection in Verbose CSV
//! Files* (Jiang, Vitagliano, Naumann; EDBT 2021).
//!
//! Verbose CSV files mix `metadata`, `header`, `group`, `data`, `derived`,
//! and `notes` content at arbitrary positions. Strudel classifies every
//! line and every cell of such a file into those six classes with a
//! random forest over content, contextual, and computational features.
//!
//! The crate provides:
//!
//! - the full pipeline ([`Strudel`], Figure 2): dialect detection →
//!   table → [`StrudelLine`] (Section 4) → [`StrudelCell`] (Section 5);
//! - the feature extractors of Tables 1 and 2
//!   ([`extract_line_features`], [`extract_cell_features`]);
//! - Algorithm 1 ([`block_sizes`]) and Algorithm 2
//!   ([`detect_derived_cells`]);
//! - every baseline of the paper's evaluation ([`baselines`]):
//!   `CRF^L`, `Pytheas^L`, `Line^C`, and the `RNN^C` stand-in;
//! - worker-pool batch inference over many files ([`batch`]) with
//!   per-stage wall-clock instrumentation ([`Metrics`], [`StageTimings`]).
//!
//! ```
//! use strudel::{Strudel, StrudelCellConfig, StrudelLineConfig};
//! use strudel_ml::ForestConfig;
//! # use strudel_datagen::{saus, GeneratorConfig};
//! # let corpus = saus(&GeneratorConfig { n_files: 6, seed: 1, ..GeneratorConfig::default() });
//!
//! // `corpus` is any collection of annotated `LabeledFile`s.
//! let config = StrudelCellConfig {
//!     line: StrudelLineConfig { forest: ForestConfig::fast(10, 0), ..Default::default() },
//!     forest: ForestConfig::fast(10, 0),
//!     ..Default::default()
//! };
//! let model = Strudel::fit(&corpus.files, &config);
//! let structure = model.detect_structure("Title,,\nState,2019,2020\nBerlin,1,2\n");
//! assert_eq!(structure.lines.len(), 3);
//! ```

#![warn(missing_docs)]

mod active;
mod analysis;
pub mod baselines;
pub mod batch;
mod block;
mod cell_classifier;
mod cell_features;
mod column;
mod derived;
mod extract;
pub mod hash;
mod json;
mod keywords;
mod line_classifier;
mod line_features;
mod metrics;
mod persist;
mod pipeline;
mod postprocess;
pub mod stream;

pub use active::{file_uncertainty, normalized_entropy, select_most_uncertain, uniform_entropy};
pub use analysis::{compute_analyses, TableAnalysis};
pub use block::{block_sizes, block_sizes_view};
pub use cell_classifier::{CellPrediction, StrudelCell, StrudelCellConfig};
pub use cell_features::{
    extract_cell_features, extract_cell_features_view, CellFeatureConfig, CellFeatures,
    CELL_FEATURE_NAMES, N_CELL_FEATURES,
};
pub use column::{
    column_labels, extract_column_features, fit_plain_and_boosted, ColumnBoostedCell,
    StrudelColumn, COLUMN_FEATURE_NAMES, N_COLUMN_FEATURES,
};
pub use derived::{
    derived_coverage_per_line, derived_coverage_per_line_view, detect_derived_cells,
    detect_derived_cells_view, DerivedConfig,
};
pub use extract::{to_relational, RelationalTable};
pub use hash::{ContentHash, ContentHasher};
pub use keywords::{has_aggregation_keyword, AGGREGATION_KEYWORDS};
pub use line_classifier::{StrudelLine, StrudelLineConfig};
pub use line_features::{
    extract_line_features, extract_line_features_view, LineFeatureConfig, GLOBAL_FEATURE_NAMES,
    LINE_FEATURE_NAMES,
};
pub use metrics::{Metrics, NullMetrics, Stage, StageTimer, StageTimings};
pub use pipeline::{Structure, Strudel, TableRegion};
pub use postprocess::{repair_cells, RepairConfig, RepairReport};
pub use stream::{
    classify_reader, stream_to_json, StreamClassifier, StreamConfig, StreamSummary, StreamWindow,
    STREAM_CHUNK_BYTES,
};

// Re-export the shared error/limit vocabulary so downstream users of the
// fallible API need no direct `strudel-table` dependency, plus the
// borrowed-grid vocabulary the `*_view` entry points speak.
pub use strudel_dialect::Dialect;
pub use strudel_table::{
    CellRef, CellView, Deadline, GridView, LimitKind, Limits, StrudelError, TableRef,
};
