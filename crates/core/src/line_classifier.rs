//! `Strudel^L`: the line classifier (Section 4).
//!
//! A multi-class random forest over the 14 line features of Table 1.
//! Besides hard predictions, the model exposes per-line class probability
//! vectors — these are the `LineClassProbability` features consumed by
//! `Strudel^C` (Section 5.4).

use crate::analysis::{compute_analyses, TableAnalysis};
use crate::line_features::{
    extract_line_features, extract_line_features_view, extract_line_features_with,
    LineFeatureConfig,
};
use strudel_ml::{Classifier, Dataset, ForestConfig, RandomForest};
use strudel_table::{CellView, ElementClass, GridView, LabeledFile, Table};

/// Configuration of `Strudel^L`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrudelLineConfig {
    /// Line feature extraction parameters.
    pub features: LineFeatureConfig,
    /// Random forest hyper-parameters (defaults follow scikit-learn's,
    /// as the paper does).
    pub forest: ForestConfig,
}

/// A fitted `Strudel^L` model.
pub struct StrudelLine {
    forest: RandomForest,
    features: LineFeatureConfig,
}

impl StrudelLine {
    /// Fit on the non-empty, labeled lines of the given files.
    ///
    /// # Panics
    /// Panics when no labeled line exists in `files`.
    pub fn fit(files: &[LabeledFile], config: &StrudelLineConfig) -> StrudelLine {
        let analyses = compute_analyses(files, config.features.derived);
        Self::fit_with_analyses(files, config, &analyses)
    }

    /// [`fit`](Self::fit) reusing precomputed per-file analyses (one per
    /// file, in file order) — the cell and column training paths compute
    /// them once and share them across all stages.
    ///
    /// # Panics
    /// Panics when no labeled line exists in `files`.
    pub(crate) fn fit_with_analyses(
        files: &[LabeledFile],
        config: &StrudelLineConfig,
        analyses: &[TableAnalysis],
    ) -> StrudelLine {
        let dataset = Self::build_dataset_with(files, &config.features, analyses);
        assert!(
            !dataset.is_empty(),
            "no labeled non-empty lines in the training files"
        );
        StrudelLine {
            forest: RandomForest::fit(&dataset, &config.forest),
            features: config.features,
        }
    }

    /// Assemble the supervised line dataset of a file collection: one
    /// sample per labeled non-empty line.
    pub fn build_dataset(files: &[LabeledFile], features: &LineFeatureConfig) -> Dataset {
        let analyses = compute_analyses(files, features.derived);
        Self::build_dataset_with(files, features, &analyses)
    }

    /// [`build_dataset`](Self::build_dataset) reusing precomputed
    /// per-file analyses (one per file, in file order).
    pub(crate) fn build_dataset_with(
        files: &[LabeledFile],
        features: &LineFeatureConfig,
        analyses: &[TableAnalysis],
    ) -> Dataset {
        let mut dataset = Dataset::new(features.n_features(), ElementClass::COUNT);
        for (file, analysis) in files.iter().zip(analyses) {
            let matrix = extract_line_features_with(&file.table, features, analysis);
            for (r, row_features) in matrix.iter().enumerate() {
                if let Some(label) = file.line_labels[r] {
                    dataset.push(row_features, label.index());
                }
            }
        }
        dataset
    }

    /// Class probability vectors for every row of `table` (empty rows get
    /// a uniform vector — they are never classified, but `Strudel^C`
    /// consumes one vector per row).
    pub fn predict_probs(&self, table: &Table) -> Vec<Vec<f64>> {
        self.predict_probs_with_threads(table, 0)
    }

    /// [`predict_probs`](Self::predict_probs) with an explicit worker
    /// thread count for the forest walks (`0` = available parallelism,
    /// `1` = serial). Results are identical for every thread count.
    pub fn predict_probs_with_threads(&self, table: &Table, n_threads: usize) -> Vec<Vec<f64>> {
        let analysis = TableAnalysis::compute(table, self.features.derived);
        self.predict_probs_with_analysis(table, &analysis, n_threads)
    }

    /// [`predict_probs_with_threads`](Self::predict_probs_with_threads)
    /// reusing a precomputed [`TableAnalysis`] — the pipeline and the
    /// cell/column stages compute one per table and share it.
    pub fn predict_probs_with_analysis(
        &self,
        table: &Table,
        analysis: &TableAnalysis,
        n_threads: usize,
    ) -> Vec<Vec<f64>> {
        self.predict_probs_view(table.view(), analysis, n_threads)
    }

    /// [`predict_probs_with_analysis`](Self::predict_probs_with_analysis)
    /// over any cell grid: the zero-copy detection path classifies the
    /// borrowed grid directly, with probabilities identical to the
    /// owned-table entry points.
    pub fn predict_probs_view<C: CellView>(
        &self,
        table: GridView<'_, C>,
        analysis: &TableAnalysis,
        n_threads: usize,
    ) -> Vec<Vec<f64>> {
        let matrix = extract_line_features_view(table, &self.features, analysis);
        let rows: Vec<usize> = (0..table.n_rows())
            .filter(|&r| !table.row_is_empty(r))
            .collect();
        let samples: Vec<&[f64]> = rows.iter().map(|&r| matrix[r].as_slice()).collect();
        let predicted = self.forest.predict_proba_batch(&samples, n_threads);
        let mut probs =
            vec![vec![1.0 / ElementClass::COUNT as f64; ElementClass::COUNT]; table.n_rows()];
        for (r, p) in rows.into_iter().zip(predicted) {
            probs[r] = p;
        }
        probs
    }

    /// Hard class predictions: one per row, `None` for empty rows.
    pub fn predict(&self, table: &Table) -> Vec<Option<ElementClass>> {
        let matrix = extract_line_features(table, &self.features);
        (0..table.n_rows())
            .map(|r| {
                if table.row_is_empty(r) {
                    None
                } else {
                    Some(ElementClass::from_index(self.forest.predict(&matrix[r])))
                }
            })
            .collect()
    }

    /// The underlying forest (used by permutation importance).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// The feature configuration the model was fitted with.
    pub fn feature_config(&self) -> &LineFeatureConfig {
        &self.features
    }

    /// Reassemble a model from a deserialized forest and configuration.
    pub fn from_parts(forest: RandomForest, features: LineFeatureConfig) -> StrudelLine {
        StrudelLine { forest, features }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use strudel_table::{CellLabels, Corpus};

    use ElementClass::*;

    /// A tiny but structurally honest corpus: metadata, header, data,
    /// derived, notes with the usual vertical logic.
    pub(crate) fn tiny_corpus(n_files: usize) -> Corpus {
        let mut corpus = Corpus::new("tiny");
        for i in 0..n_files {
            let a = 10 + i as i64;
            let b = 20 + 2 * i as i64;
            let rows = vec![
                vec!["Report on crime".to_string(), String::new(), String::new()],
                vec!["State".into(), "2019".into(), "2020".into()],
                vec!["Berlin".into(), a.to_string(), b.to_string()],
                vec!["Hamburg".into(), (a + 1).to_string(), (b + 1).to_string()],
                vec![
                    "Total".into(),
                    (2 * a + 1).to_string(),
                    (2 * b + 1).to_string(),
                ],
                vec!["Source: police".into(), String::new(), String::new()],
            ];
            let table = Table::from_rows(rows);
            let classes = [Metadata, Header, Data, Data, Derived, Notes];
            let line_labels: Vec<Option<ElementClass>> = classes.iter().map(|&c| Some(c)).collect();
            let cell_labels: CellLabels = (0..table.n_rows())
                .map(|r| {
                    (0..table.n_cols())
                        .map(|c| {
                            if table.cell(r, c).is_empty() {
                                None
                            } else if classes[r] == Derived && c == 0 {
                                Some(Group)
                            } else {
                                Some(classes[r])
                            }
                        })
                        .collect()
                })
                .collect();
            corpus.files.push(LabeledFile::new(
                format!("f{i}.csv"),
                table,
                line_labels,
                cell_labels,
            ));
        }
        corpus
    }

    fn fast_config() -> StrudelLineConfig {
        StrudelLineConfig {
            forest: ForestConfig::fast(15, 7),
            ..StrudelLineConfig::default()
        }
    }

    #[test]
    fn learns_the_tiny_corpus() {
        let corpus = tiny_corpus(8);
        let model = StrudelLine::fit(&corpus.files, &fast_config());
        let probe = &corpus.files[0];
        let pred = model.predict(&probe.table);
        assert_eq!(pred, probe.line_labels);
    }

    #[test]
    fn probs_align_with_rows_and_sum_to_one() {
        let corpus = tiny_corpus(4);
        let model = StrudelLine::fit(&corpus.files, &fast_config());
        let probs = model.predict_probs(&corpus.files[0].table);
        assert_eq!(probs.len(), 6);
        for p in &probs {
            assert_eq!(p.len(), ElementClass::COUNT);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_rows_get_uniform_probs() {
        let corpus = tiny_corpus(4);
        let model = StrudelLine::fit(&corpus.files, &fast_config());
        let t = Table::from_rows(vec![vec!["a", "1"], vec!["", ""], vec!["b", "2"]]);
        let probs = model.predict_probs(&t);
        assert!(probs[1].iter().all(|&p| (p - 1.0 / 6.0).abs() < 1e-12));
        let pred = model.predict(&t);
        assert_eq!(pred[1], None);
    }

    #[test]
    fn dataset_counts_only_labeled_lines() {
        let corpus = tiny_corpus(2);
        let ds = StrudelLine::build_dataset(&corpus.files, &LineFeatureConfig::default());
        assert_eq!(ds.n_samples(), 12);
        assert_eq!(ds.n_features(), 14);
    }

    #[test]
    #[should_panic(expected = "no labeled non-empty lines")]
    fn empty_training_set_panics() {
        let _ = StrudelLine::fit(&[], &fast_config());
    }
}
