//! Line-classification features (Table 1, Section 4).
//!
//! Each line of a verbose CSV file is described by 14 local features in
//! three groups:
//!
//! - **content** — `EmptyCellRatio`, `DiscountedCumulativeGain`,
//!   `AggregationWord`, `WordAmount`, `NumericalCellRatio`,
//!   `StringCellRatio`, `LinePosition`;
//! - **contextual** — `DataTypeMatching`, `EmptyNeighboringLines`,
//!   `CellLengthDifference`, each computed twice (against the closest
//!   non-empty line above and below);
//! - **computational** — `DerivedCoverage`, the fraction of the line's
//!   numeric cells recognised by the derived-cell detector (Algorithm 2).
//!
//! The optional *global* features (file emptiness, width, length, empty
//! blocks) that the paper tested and found unhelpful are available behind
//! [`LineFeatureConfig::include_global`] so the ablation experiment can
//! reproduce that finding.

use crate::analysis::TableAnalysis;
use crate::derived::{derived_coverage_per_line_view, DerivedConfig};
use crate::keywords::has_aggregation_keyword;
use strudel_table::{CellView, DataType, GridView, Table};

/// Names of the 14 local line features, in vector order.
pub const LINE_FEATURE_NAMES: [&str; 14] = [
    "EmptyCellRatio",
    "DiscountedCumulativeGain",
    "AggregationWord",
    "WordAmount",
    "NumericalCellRatio",
    "StringCellRatio",
    "LinePosition",
    "DataTypeMatchingAbove",
    "DataTypeMatchingBelow",
    "EmptyNeighboringLinesAbove",
    "EmptyNeighboringLinesBelow",
    "CellLengthDifferenceAbove",
    "CellLengthDifferenceBelow",
    "DerivedCoverage",
];

/// Names of the global features appended when
/// [`LineFeatureConfig::include_global`] is set. The paper reports these
/// had no positive impact (Section 4); the ablation bench verifies that.
pub const GLOBAL_FEATURE_NAMES: [&str; 4] = [
    "FileEmptyLineRatio",
    "FileWidth",
    "FileLength",
    "FileEmptyLineBlocks",
];

/// Configuration of the line feature extractor.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineFeatureConfig {
    /// Parameters of the derived-cell detector feeding `DerivedCoverage`.
    pub derived: DerivedConfig,
    /// Append the four global (whole-file) features.
    pub include_global: bool,
}

impl LineFeatureConfig {
    /// Number of features produced per line under this configuration.
    pub fn n_features(&self) -> usize {
        LINE_FEATURE_NAMES.len()
            + if self.include_global {
                GLOBAL_FEATURE_NAMES.len()
            } else {
                0
            }
    }

    /// Feature names in vector order under this configuration.
    pub fn feature_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = LINE_FEATURE_NAMES.to_vec();
        if self.include_global {
            names.extend(GLOBAL_FEATURE_NAMES);
        }
        names
    }
}

/// Number of neighbouring lines inspected by `EmptyNeighboringLines`.
const NEIGHBOUR_WINDOW: usize = 5;

/// Extract one feature row per table line (empty lines included — callers
/// classify only non-empty lines but indices stay aligned with rows).
pub fn extract_line_features(table: &Table, config: &LineFeatureConfig) -> Vec<Vec<f64>> {
    let analysis = TableAnalysis::compute(table, config.derived);
    extract_line_features_with(table, config, &analysis)
}

/// [`extract_line_features`] reusing a precomputed [`TableAnalysis`], so
/// one derived-cell detection per file serves the line, cell, and column
/// extractors (the mask is recomputed if `analysis` was built for a
/// different [`DerivedConfig`]).
pub fn extract_line_features_with(
    table: &Table,
    config: &LineFeatureConfig,
    analysis: &TableAnalysis,
) -> Vec<Vec<f64>> {
    extract_line_features_view(table.view(), config, analysis)
}

/// [`extract_line_features_with`] over any cell grid — owned tables
/// (training, compatibility API) and the borrowed grids of the
/// zero-copy detection path produce byte-identical feature matrices.
pub fn extract_line_features_view<C: CellView>(
    table: GridView<'_, C>,
    config: &LineFeatureConfig,
    analysis: &TableAnalysis,
) -> Vec<Vec<f64>> {
    let n_rows = table.n_rows();
    if n_rows == 0 {
        return Vec::new();
    }
    let n_cols = table.n_cols();

    let derived = analysis.derived_for_view(table, &config.derived);
    let derived_cov = derived_coverage_per_line_view(table, &derived);

    // WordAmount is min–max normalised per file over non-empty lines.
    let word_counts: Vec<f64> = (0..n_rows)
        .map(|r| table.row(r).map(|c| c.word_count()).sum::<usize>() as f64)
        .collect();
    let (wc_min, wc_max) = word_counts
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let wc_span = (wc_max - wc_min).max(f64::EPSILON);

    let global = if config.include_global {
        Some(global_features(table))
    } else {
        None
    };

    (0..n_rows)
        .map(|r| {
            let mut f = Vec::with_capacity(config.n_features());

            // --- content features ---
            let empty = table.row(r).filter(|c| c.is_empty()).count() as f64;
            f.push(empty / n_cols.max(1) as f64); // EmptyCellRatio
            f.push(dcg(table, r)); // DiscountedCumulativeGain
            let has_kw = table
                .row(r)
                .any(|c| !c.is_empty() && has_aggregation_keyword(c.raw()));
            f.push(f64::from(has_kw)); // AggregationWord
            f.push((word_counts[r] - wc_min) / wc_span); // WordAmount
            let numeric = table.row(r).filter(|c| c.dtype().is_numeric()).count() as f64;
            f.push(numeric / n_cols.max(1) as f64); // NumericalCellRatio
            let strings = table.row(r).filter(|c| c.dtype() == DataType::Str).count() as f64;
            f.push(strings / n_cols.max(1) as f64); // StringCellRatio
            f.push(r as f64 / (n_rows - 1).max(1) as f64); // LinePosition

            // --- contextual features (closest non-empty line above/below) ---
            let above = table.prev_non_empty_row(r);
            let below = table.next_non_empty_row(r);
            f.push(data_type_matching(table, r, above)); // DataTypeMatchingAbove
            f.push(data_type_matching(table, r, below)); // DataTypeMatchingBelow
            f.push(empty_neighbouring(table, r, Direction::Above)); // EmptyNeighboringLinesAbove
            f.push(empty_neighbouring(table, r, Direction::Below)); // EmptyNeighboringLinesBelow
            f.push(cell_length_difference(table, r, above)); // CellLengthDifferenceAbove
            f.push(cell_length_difference(table, r, below)); // CellLengthDifferenceBelow

            // --- computational feature ---
            f.push(derived_cov[r]); // DerivedCoverage

            if let Some(g) = &global {
                f.extend_from_slice(g);
            }
            f
        })
        .collect()
}

/// Discounted cumulative gain over the non-emptiness vector of a line,
/// normalised by the ideal DCG (all cells non-empty). Left-more positions
/// weigh more, modelling users laying out content left to right.
fn dcg<C: CellView>(table: GridView<'_, C>, row: usize) -> f64 {
    let mut gain = 0.0;
    let mut ideal = 0.0;
    for (i, cell) in table.row(row).enumerate() {
        let discount = 1.0 / ((i + 2) as f64).log2();
        ideal += discount;
        if !cell.is_empty() {
            gain += discount;
        }
    }
    if ideal == 0.0 {
        0.0
    } else {
        gain / ideal
    }
}

/// Percentage of cells whose data type matches the same column of the
/// adjacent (closest non-empty) line; 0 when no such line exists.
fn data_type_matching<C: CellView>(
    table: GridView<'_, C>,
    row: usize,
    other: Option<usize>,
) -> f64 {
    let Some(other) = other else { return 0.0 };
    let n_cols = table.n_cols();
    if n_cols == 0 {
        return 0.0;
    }
    let matches = (0..n_cols)
        .filter(|&c| table.cell(row, c).dtype() == table.cell(other, c).dtype())
        .count();
    matches as f64 / n_cols as f64
}

enum Direction {
    Above,
    Below,
}

/// Fraction of empty lines among the five lines above/below; positions
/// beyond the file boundary count as empty (the file margin is blank).
fn empty_neighbouring<C: CellView>(
    table: GridView<'_, C>,
    row: usize,
    direction: Direction,
) -> f64 {
    let mut empty = 0usize;
    for step in 1..=NEIGHBOUR_WINDOW {
        let r = match direction {
            Direction::Above => row as isize - step as isize,
            Direction::Below => row as isize + step as isize,
        };
        if r < 0 || r as usize >= table.n_rows() || table.row_is_empty(r as usize) {
            empty += 1;
        }
    }
    empty as f64 / NEIGHBOUR_WINDOW as f64
}

/// Histogram bins for cell value lengths (log-ish spacing). Bins are wide
/// enough that same-domain values of slightly different widths ("80" vs
/// "120", "Berlin" vs "Hamburg") share a bin, while prose-length values
/// land far away.
const LENGTH_BINS: [usize; 6] = [0, 1, 4, 8, 16, 32];

fn length_bin(len: usize) -> usize {
    LENGTH_BINS.iter().rposition(|&lo| len >= lo).unwrap_or(0)
}

/// Bhattacharyya distance between the cell-length histograms of a line
/// and its closest non-empty neighbour; 1.0 (maximal difference) when no
/// neighbour exists.
fn cell_length_difference<C: CellView>(
    table: GridView<'_, C>,
    row: usize,
    other: Option<usize>,
) -> f64 {
    let Some(other) = other else { return 1.0 };
    let hist = |r: usize| {
        let mut h = [0.0f64; LENGTH_BINS.len()];
        let mut n = 0.0;
        for cell in table.row(r) {
            h[length_bin(cell.len())] += 1.0;
            n += 1.0;
        }
        if n > 0.0 {
            for v in &mut h {
                *v /= n;
            }
        }
        h
    };
    let (p, q) = (hist(row), hist(other));
    let bc: f64 = p
        .iter()
        .zip(&q)
        .map(|(&a, &b)| (a * b).sqrt())
        .sum::<f64>()
        .min(1.0);
    (1.0 - bc).sqrt()
}

/// The four global features of the paper's negative ablation: empty-line
/// ratio, width, length, and count of empty-line blocks (each scaled to a
/// comparable range).
fn global_features<C: CellView>(table: GridView<'_, C>) -> Vec<f64> {
    let n_rows = table.n_rows();
    let empty_lines = (0..n_rows).filter(|&r| table.row_is_empty(r)).count();
    let mut blocks = 0usize;
    let mut in_block = false;
    for r in 0..n_rows {
        if table.row_is_empty(r) {
            if !in_block {
                blocks += 1;
                in_block = true;
            }
        } else {
            in_block = false;
        }
    }
    vec![
        empty_lines as f64 / n_rows.max(1) as f64,
        (table.n_cols() as f64).ln_1p(),
        (n_rows as f64).ln_1p(),
        blocks as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(name: &str) -> usize {
        LINE_FEATURE_NAMES.iter().position(|&n| n == name).unwrap()
    }

    fn sample() -> Table {
        Table::from_rows(vec![
            vec!["Crime report 2020", "", ""],
            vec!["", "", ""],
            vec!["State", "2019", "2020"],
            vec!["Berlin", "100", "120"],
            vec!["Hamburg", "80", "85"],
            vec!["Total", "180", "205"],
        ])
    }

    #[test]
    fn feature_count_matches_names() {
        let config = LineFeatureConfig::default();
        let feats = extract_line_features(&sample(), &config);
        assert_eq!(feats.len(), 6);
        assert!(feats.iter().all(|f| f.len() == config.n_features()));
        assert_eq!(config.n_features(), 14);
    }

    #[test]
    fn global_features_appended_when_enabled() {
        let config = LineFeatureConfig {
            include_global: true,
            ..LineFeatureConfig::default()
        };
        let feats = extract_line_features(&sample(), &config);
        assert_eq!(feats[0].len(), 18);
        assert_eq!(config.feature_names().len(), 18);
        // FileEmptyLineRatio: 1 of 6 lines empty.
        assert!((feats[0][14] - 1.0 / 6.0).abs() < 1e-12);
        // One empty-line block.
        assert_eq!(feats[0][17], 1.0);
    }

    #[test]
    fn empty_cell_ratio() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        assert!((feats[0][idx("EmptyCellRatio")] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(feats[3][idx("EmptyCellRatio")], 0.0);
        assert_eq!(feats[1][idx("EmptyCellRatio")], 1.0);
    }

    #[test]
    fn dcg_weighs_left_positions_higher() {
        let left = Table::from_rows(vec![vec!["x", "", ""]]);
        let right = Table::from_rows(vec![vec!["", "", "x"]]);
        let fl = extract_line_features(&left, &LineFeatureConfig::default());
        let fr = extract_line_features(&right, &LineFeatureConfig::default());
        let i = idx("DiscountedCumulativeGain");
        assert!(fl[0][i] > fr[0][i]);
    }

    #[test]
    fn dcg_full_line_is_one() {
        let t = Table::from_rows(vec![vec!["a", "b", "c"]]);
        let f = extract_line_features(&t, &LineFeatureConfig::default());
        assert!((f[0][idx("DiscountedCumulativeGain")] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregation_word_flag() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let i = idx("AggregationWord");
        assert_eq!(feats[5][i], 1.0); // "Total" line
        assert_eq!(feats[3][i], 0.0);
    }

    #[test]
    fn word_amount_is_minmax_normalised() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let i = idx("WordAmount");
        assert_eq!(feats[1][i], 0.0); // empty line: fewest words
        assert!(feats.iter().all(|f| (0.0..=1.0).contains(&f[i])));
        assert!(feats.iter().any(|f| (f[i] - 1.0).abs() < 1e-12));
    }

    #[test]
    fn numerical_and_string_ratios() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        assert!((feats[3][idx("NumericalCellRatio")] - 2.0 / 3.0).abs() < 1e-12);
        assert!((feats[3][idx("StringCellRatio")] - 1.0 / 3.0).abs() < 1e-12);
        // Header line: 2019/2020 parse as ints.
        assert!((feats[2][idx("NumericalCellRatio")] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn line_position_spans_unit_interval() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let i = idx("LinePosition");
        assert_eq!(feats[0][i], 0.0);
        assert_eq!(feats[5][i], 1.0);
    }

    #[test]
    fn data_type_matching_skips_empty_lines() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        // Row 2 (header) vs closest non-empty above = row 0 (metadata):
        // col0 Str==Str, col1 Int vs Empty, col2 Int vs Empty → 1/3.
        assert!((feats[2][idx("DataTypeMatchingAbove")] - 1.0 / 3.0).abs() < 1e-12);
        // Data rows 3 and 4 match fully.
        assert!((feats[4][idx("DataTypeMatchingAbove")] - 1.0).abs() < 1e-12);
        // Top line has no line above.
        assert_eq!(feats[0][idx("DataTypeMatchingAbove")], 0.0);
    }

    #[test]
    fn empty_neighbouring_counts_margins_as_empty() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let above = idx("EmptyNeighboringLinesAbove");
        // Row 0: all five "lines above" are beyond the margin.
        assert_eq!(feats[0][above], 1.0);
        // Row 3: above are rows 2 (full), 1 (empty), 0 (full), -1, -2.
        assert!((feats[3][above] - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cell_length_difference_low_for_similar_lines() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let i = idx("CellLengthDifferenceAbove");
        // Data row 4 vs data row 3: similar lengths → small distance.
        assert!(feats[4][i] < 0.5);
        // Top row has no neighbour above → maximal difference.
        assert_eq!(feats[0][i], 1.0);
    }

    #[test]
    fn derived_coverage_marks_total_line() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        let i = idx("DerivedCoverage");
        assert!((feats[5][i] - 1.0).abs() < 1e-12);
        assert_eq!(feats[3][i], 0.0);
    }

    #[test]
    fn empty_table_yields_no_features() {
        let t = Table::from_rows(Vec::<Vec<String>>::new());
        assert!(extract_line_features(&t, &LineFeatureConfig::default()).is_empty());
    }

    #[test]
    fn all_features_in_unit_range() {
        let feats = extract_line_features(&sample(), &LineFeatureConfig::default());
        for row in &feats {
            for (j, &v) in row.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "feature {} = {v} out of range",
                    LINE_FEATURE_NAMES[j]
                );
            }
        }
    }

    #[test]
    fn length_bins_are_monotone() {
        assert_eq!(length_bin(0), 0);
        assert_eq!(length_bin(1), 1);
        assert_eq!(length_bin(3), 1);
        assert_eq!(length_bin(4), 2);
        assert_eq!(length_bin(100), LENGTH_BINS.len() - 1);
    }
}
