//! Pipeline instrumentation: per-stage wall-clock timing.
//!
//! Structure detection runs six stages: dialect detection, table
//! parsing (borrowed, zero-copy), the shared per-table derived-cell
//! analysis (Algorithm 2, computed once per table and reused by both
//! classifiers), `Strudel^L` line classification, `Strudel^C` cell
//! classification, and finally materialisation of the owned output
//! table from the borrowed grid. Streaming classification adds a
//! seventh, [`Stage::Stream`], covering its windowing bookkeeping, and
//! the packed container format adds [`Stage::Pack`]/[`Stage::Unpack`]
//! for container encode/decode. The
//! [`Metrics`] sink trait lets callers observe how
//! long each stage took without the pipeline knowing who is listening:
//! [`detect_structure_metered`](crate::Strudel::detect_structure_metered)
//! reports into any sink, the plain
//! [`detect_structure`](crate::Strudel::detect_structure) discards the
//! observations through [`NullMetrics`], and the batch engine
//! ([`crate::batch`]) aggregates one [`StageTimings`] per worker.

use std::time::{Duration, Instant};

/// One stage of the structure-detection pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Dialect detection over the raw text.
    Dialect,
    /// Parsing the text into a [`strudel_table::Table`].
    Parse,
    /// The shared per-table analysis ([`crate::TableAnalysis`]): one
    /// derived-cell detection (Algorithm 2) reused by both classifiers.
    DerivedCells,
    /// `Strudel^L` line classification.
    LineClassify,
    /// `Strudel^C` cell classification.
    CellClassify,
    /// Materialising the owned output [`strudel_table::Table`] from the
    /// borrowed grid the classifiers ran over — the single point at
    /// which cell text is copied out of the input buffer.
    Materialize,
    /// Streaming bookkeeping of the bounded-memory classifier
    /// ([`crate::stream`]): incremental UTF-8 validation, record
    /// tracking, and window management. Recorded once per streamed
    /// input with the total bookkeeping time; the per-window pipeline
    /// stages are recorded under their own names as usual.
    Stream,
    /// Encoding a classified input into the packed columnar container
    /// (`strudel-pack`): skeleton/column stream splitting, block
    /// sealing, and directory writing. The classification feeding the
    /// packer records its own stages as usual.
    Pack,
    /// Decoding a packed container back into CSV text — full unpack or
    /// selective table/column extraction.
    Unpack,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 9] = [
        Stage::Dialect,
        Stage::Parse,
        Stage::DerivedCells,
        Stage::LineClassify,
        Stage::CellClassify,
        Stage::Materialize,
        Stage::Stream,
        Stage::Pack,
        Stage::Unpack,
    ];

    /// Stable snake_case name (used as a JSON key by the batch report).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Dialect => "dialect",
            Stage::Parse => "parse",
            Stage::DerivedCells => "derived_cells",
            Stage::LineClassify => "line_classify",
            Stage::CellClassify => "cell_classify",
            Stage::Materialize => "materialize",
            Stage::Stream => "stream",
            Stage::Pack => "pack",
            Stage::Unpack => "unpack",
        }
    }

    /// Position of the stage in [`Stage::ALL`].
    pub fn index(self) -> usize {
        match self {
            Stage::Dialect => 0,
            Stage::Parse => 1,
            Stage::DerivedCells => 2,
            Stage::LineClassify => 3,
            Stage::CellClassify => 4,
            Stage::Materialize => 5,
            Stage::Stream => 6,
            Stage::Pack => 7,
            Stage::Unpack => 8,
        }
    }
}

/// A sink for stage observations.
///
/// The pipeline calls [`record`](Metrics::record) once per executed
/// stage. Implementations decide what to keep: [`NullMetrics`] drops
/// everything, [`StageTimings`] accumulates totals.
pub trait Metrics {
    /// Observe that `stage` ran for `elapsed`.
    fn record(&mut self, stage: Stage, elapsed: Duration);

    /// Observe that the parse stage scanned the input in `chunks`
    /// chunks (`1` = serial scan). Sinks that only care about timing
    /// keep the default no-op.
    fn record_parse_chunks(&mut self, chunks: u64) {
        let _ = chunks;
    }

    /// Observe that the streaming classifier closed and emitted
    /// `windows` windows. Sinks that only care about timing keep the
    /// default no-op.
    fn record_stream_windows(&mut self, windows: u64) {
        let _ = windows;
    }
}

/// The discard sink: structure detection without instrumentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMetrics;

impl Metrics for NullMetrics {
    fn record(&mut self, _stage: Stage, _elapsed: Duration) {}
}

/// Accumulated per-stage totals and observation counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StageTimings {
    totals: [Duration; 9],
    counts: [u64; 9],
    parse_chunks: u64,
    stream_windows: u64,
}

impl StageTimings {
    /// Total time recorded for `stage`.
    pub fn total(&self, stage: Stage) -> Duration {
        self.totals[stage.index()]
    }

    /// Number of observations recorded for `stage` (one per file in a
    /// batch run).
    pub fn count(&self, stage: Stage) -> u64 {
        self.counts[stage.index()]
    }

    /// Total scan chunks across all recorded parse stages (a serial
    /// parse contributes `1`; a chunk-parallel one contributes its
    /// chunk count).
    pub fn parse_chunks(&self) -> u64 {
        self.parse_chunks
    }

    /// Total windows emitted by streaming classification runs.
    pub fn stream_windows(&self) -> u64 {
        self.stream_windows
    }

    /// Sum over all stages.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Fold another accumulator into this one (used to merge per-worker
    /// timings after a batch run, and by concurrent sinks such as the
    /// `strudel serve` metrics registry). Merging is commutative and
    /// order-independent: any partition of the same observations into
    /// accumulators folds to the same result.
    pub fn merge(&mut self, other: &StageTimings) {
        for i in 0..self.totals.len() {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
        self.parse_chunks += other.parse_chunks;
        self.stream_windows += other.stream_windows;
    }

    /// Render the accumulated totals in Prometheus text exposition
    /// format: two counter families, `<prefix>_stage_seconds_total` and
    /// `<prefix>_stage_observations_total`, one sample per
    /// [`Stage`] with a `stage="<name>"` label, in [`Stage::ALL`] order.
    ///
    /// Both families are monotone counters as long as the accumulator
    /// only ever grows (via [`record`](Metrics::record) or
    /// [`merge`](StageTimings::merge)), which is how `strudel serve`
    /// uses it behind `/metrics`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# TYPE {prefix}_stage_seconds_total counter\n"));
        for stage in Stage::ALL {
            out.push_str(&format!(
                "{prefix}_stage_seconds_total{{stage=\"{}\"}} {:.9}\n",
                stage.name(),
                self.total(stage).as_secs_f64()
            ));
        }
        out.push_str(&format!(
            "# TYPE {prefix}_stage_observations_total counter\n"
        ));
        for stage in Stage::ALL {
            out.push_str(&format!(
                "{prefix}_stage_observations_total{{stage=\"{}\"}} {}\n",
                stage.name(),
                self.count(stage)
            ));
        }
        out.push_str(&format!("# TYPE {prefix}_parse_chunks_total counter\n"));
        out.push_str(&format!(
            "{prefix}_parse_chunks_total {}\n",
            self.parse_chunks
        ));
        out.push_str(&format!("# TYPE {prefix}_stream_windows_total counter\n"));
        out.push_str(&format!(
            "{prefix}_stream_windows_total {}\n",
            self.stream_windows
        ));
        out
    }
}

/// A lock-guarded [`StageTimings`] is itself a [`Metrics`] sink, so
/// concurrent pipelines (the `strudel serve` workers) can report into
/// one shared accumulator. Workers that batch many observations should
/// still accumulate locally and [`merge`](StageTimings::merge) once to
/// keep lock traffic down; this impl is the convenience path for
/// one-off metered calls.
impl Metrics for &std::sync::Mutex<StageTimings> {
    fn record(&mut self, stage: Stage, elapsed: Duration) {
        if let Ok(mut guard) = self.lock() {
            guard.record(stage, elapsed);
        }
    }

    fn record_parse_chunks(&mut self, chunks: u64) {
        if let Ok(mut guard) = self.lock() {
            guard.record_parse_chunks(chunks);
        }
    }

    fn record_stream_windows(&mut self, windows: u64) {
        if let Ok(mut guard) = self.lock() {
            guard.record_stream_windows(windows);
        }
    }
}

impl Metrics for StageTimings {
    fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.totals[stage.index()] += elapsed;
        self.counts[stage.index()] += 1;
    }

    fn record_parse_chunks(&mut self, chunks: u64) {
        self.parse_chunks += chunks;
    }

    fn record_stream_windows(&mut self, windows: u64) {
        self.stream_windows += windows;
    }
}

/// A running wall-clock timer for one stage.
///
/// ```
/// use strudel::{Metrics, Stage, StageTimer, StageTimings};
/// let mut sink = StageTimings::default();
/// let timer = StageTimer::start(Stage::Parse);
/// // ... do the work of the stage ...
/// timer.stop(&mut sink);
/// assert_eq!(sink.count(Stage::Parse), 1);
/// ```
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Instant,
}

impl StageTimer {
    /// Start timing `stage` now.
    pub fn start(stage: Stage) -> StageTimer {
        StageTimer {
            stage,
            start: Instant::now(),
        }
    }

    /// Stop the timer and record the elapsed time into `sink`.
    pub fn stop(self, sink: &mut dyn Metrics) {
        sink.record(self.stage, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "dialect",
                "parse",
                "derived_cells",
                "line_classify",
                "cell_classify",
                "materialize",
                "stream",
                "pack",
                "unpack"
            ]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn timings_accumulate_and_merge() {
        let mut a = StageTimings::default();
        a.record(Stage::Parse, Duration::from_millis(5));
        a.record(Stage::Parse, Duration::from_millis(7));
        a.record(Stage::Dialect, Duration::from_millis(1));
        assert_eq!(a.total(Stage::Parse), Duration::from_millis(12));
        assert_eq!(a.count(Stage::Parse), 2);
        assert_eq!(a.grand_total(), Duration::from_millis(13));

        let mut b = StageTimings::default();
        b.record(Stage::CellClassify, Duration::from_millis(3));
        b.merge(&a);
        assert_eq!(b.total(Stage::Parse), Duration::from_millis(12));
        assert_eq!(b.total(Stage::CellClassify), Duration::from_millis(3));
        assert_eq!(b.count(Stage::Dialect), 1);
    }

    #[test]
    fn parse_chunks_accumulate_merge_and_render() {
        let mut a = StageTimings::default();
        a.record_parse_chunks(1);
        a.record_parse_chunks(4);
        assert_eq!(a.parse_chunks(), 5);
        let mut b = StageTimings::default();
        b.record_parse_chunks(2);
        b.merge(&a);
        assert_eq!(b.parse_chunks(), 7);
        let text = b.to_prometheus("strudel");
        assert!(text.contains("# TYPE strudel_parse_chunks_total counter"));
        assert!(text.contains("strudel_parse_chunks_total 7"));
    }

    #[test]
    fn stream_windows_accumulate_merge_and_render() {
        let mut a = StageTimings::default();
        a.record_stream_windows(2);
        a.record_stream_windows(3);
        assert_eq!(a.stream_windows(), 5);
        let mut b = StageTimings::default();
        b.record_stream_windows(1);
        b.merge(&a);
        assert_eq!(b.stream_windows(), 6);
        let text = b.to_prometheus("strudel");
        assert!(text.contains("# TYPE strudel_stream_windows_total counter"));
        assert!(text.contains("strudel_stream_windows_total 6"));
        assert!(text.contains("stage=\"stream\""));
    }

    #[test]
    fn timer_records_into_sink() {
        let mut sink = StageTimings::default();
        let t = StageTimer::start(Stage::LineClassify);
        t.stop(&mut sink);
        assert_eq!(sink.count(Stage::LineClassify), 1);
        // Durations are non-negative by construction; the observation
        // itself must exist even for instantaneous work.
        assert_eq!(sink.count(Stage::Parse), 0);
    }

    #[test]
    fn null_metrics_discards() {
        let mut sink = NullMetrics;
        sink.record(Stage::Dialect, Duration::from_secs(1));
        // Nothing to observe: the type is a unit struct. This test only
        // pins that the call compiles through the trait object path.
        let dyn_sink: &mut dyn Metrics = &mut sink;
        dyn_sink.record(Stage::Parse, Duration::ZERO);
    }
}
