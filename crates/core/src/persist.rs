//! Persistence of fitted Strudel models.
//!
//! A [`Strudel`] model (both stages plus their feature configurations)
//! serializes to the compact binary format of `strudel_ml::serialize`,
//! so a model trained on an annotated corpus can be shipped and used for
//! classification without retraining — the workflow behind the
//! `strudel-cli` tool.
//!
//! Model files are untrusted input: [`Strudel::read_from`] returns a
//! typed [`StrudelError::Model`] for any structural defect (truncation,
//! bad magic or version, malformed forests) and additionally validates
//! the loaded forests against the pipeline's feature arity and class
//! count, so a corrupt file can never panic at predict time.

use crate::cell_classifier::StrudelCell;
use crate::cell_features::{CellFeatureConfig, N_CELL_FEATURES};
use crate::derived::DerivedConfig;
use crate::line_classifier::StrudelLine;
use crate::line_features::LineFeatureConfig;
use crate::pipeline::Strudel;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use strudel_ml::{ModelReader, ModelWriter, RandomForest};
use strudel_table::{ElementClass, StrudelError};

fn write_derived<W: Write>(w: &mut ModelWriter<W>, d: &DerivedConfig) -> io::Result<()> {
    w.f64(d.delta)?;
    w.f64(d.coverage)?;
    w.bool(d.detect_min_max)
}

fn read_derived<R: Read>(r: &mut ModelReader<R>) -> io::Result<DerivedConfig> {
    Ok(DerivedConfig {
        delta: r.f64()?,
        coverage: r.f64()?,
        detect_min_max: r.bool()?,
    })
}

/// Map an I/O error raised while decoding a model stream to a typed
/// error. `InvalidData` and `UnexpectedEof` mean the *content* is bad
/// (bad magic, bad version, truncation, malformed forest); anything else
/// is a genuine I/O failure of the underlying reader.
fn model_error(e: io::Error) -> StrudelError {
    match e.kind() {
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => StrudelError::Model {
            file: None,
            reason: e.to_string(),
        },
        _ => StrudelError::io(&e, None),
    }
}

/// Reject a deserialized forest whose shape does not match the pipeline
/// stage it is about to serve. `from_raw_parts` already validates the
/// internal tree structure; this checks the *external* contract — the
/// class count must be [`ElementClass::COUNT`] (class indices are mapped
/// back through `ElementClass::from_index`, which panics out of range)
/// and every split's feature index must be addressable in the feature
/// vectors the stage produces.
fn validate_forest(
    forest: &RandomForest,
    stage: &str,
    n_features: usize,
) -> Result<(), StrudelError> {
    let n_classes = forest.n_classes_raw();
    if n_classes != ElementClass::COUNT {
        return Err(StrudelError::Model {
            file: None,
            reason: format!(
                "{stage} forest has {n_classes} classes, expected {}",
                ElementClass::COUNT
            ),
        });
    }
    if let Some(max) = forest.max_feature_index() {
        if max >= n_features {
            return Err(StrudelError::Model {
                file: None,
                reason: format!(
                    "{stage} forest references feature index {max}, but the stage \
                     produces only {n_features} features"
                ),
            });
        }
    }
    Ok(())
}

impl StrudelLine {
    /// Serialize the fitted line model (forest + feature configuration).
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        let features = self.feature_config();
        write_derived(w, &features.derived)?;
        w.bool(features.include_global)?;
        self.forest().write_to(w)
    }

    /// Deserialize a line model written by [`StrudelLine::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> Result<StrudelLine, StrudelError> {
        let derived = read_derived(r).map_err(model_error)?;
        let include_global = r.bool().map_err(model_error)?;
        let forest = RandomForest::read_from(r).map_err(model_error)?;
        let features = LineFeatureConfig {
            derived,
            include_global,
        };
        validate_forest(&forest, "line", features.n_features())?;
        Ok(StrudelLine::from_parts(forest, features))
    }
}

impl StrudelCell {
    /// Serialize the full two-stage model.
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        self.line_model().write_to(w)?;
        write_derived(w, &self.feature_config().derived)?;
        self.forest().write_to(w)
    }

    /// Deserialize a model written by [`StrudelCell::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> Result<StrudelCell, StrudelError> {
        let line_model = StrudelLine::read_from(r)?;
        let derived = read_derived(r).map_err(model_error)?;
        let forest = RandomForest::read_from(r).map_err(model_error)?;
        validate_forest(&forest, "cell", N_CELL_FEATURES)?;
        Ok(StrudelCell::from_parts(
            line_model,
            forest,
            CellFeatureConfig { derived },
        ))
    }
}

impl Strudel {
    /// Serialize the pipeline model to any writer.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), StrudelError> {
        let inner = || -> io::Result<()> {
            let mut w = ModelWriter::new(writer)?;
            self.cell_model().write_to(&mut w)?;
            w.finish().flush()
        };
        inner().map_err(|e| StrudelError::io(&e, None))
    }

    /// Deserialize a pipeline model from any reader. Truncated streams,
    /// bad magic/version, malformed forests, and forests inconsistent
    /// with the pipeline's feature arity or class count all yield a
    /// typed error — never a panic, neither here nor at predict time.
    pub fn read_from<R: Read>(reader: R) -> Result<Strudel, StrudelError> {
        let mut r = ModelReader::new(reader).map_err(model_error)?;
        Ok(Strudel::from_cell_model(StrudelCell::read_from(&mut r)?))
    }

    /// Save the model to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StrudelError> {
        let name = path.as_ref().display().to_string();
        let file = File::create(path.as_ref()).map_err(|e| StrudelError::io(&e, Some(&name)))?;
        self.write_to(BufWriter::new(file))
            .map_err(|e| e.with_file(name))
    }

    /// Load a model from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Strudel, StrudelError> {
        let name = path.as_ref().display().to_string();
        let file = File::open(path.as_ref()).map_err(|e| StrudelError::io(&e, Some(&name)))?;
        Strudel::read_from(BufReader::new(file)).map_err(|e| e.with_file(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_classifier::StrudelCellConfig;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use strudel_ml::ForestConfig;

    /// `unwrap_err` without requiring `Debug` on the (large) model types.
    fn expect_err<T>(r: Result<T, StrudelError>) -> StrudelError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected a StrudelError"),
        }
    }

    fn fitted() -> Strudel {
        let corpus = tiny_corpus(6);
        Strudel::fit(
            &corpus.files,
            &StrudelCellConfig {
                line: StrudelLineConfig {
                    forest: ForestConfig::fast(8, 1),
                    ..StrudelLineConfig::default()
                },
                forest: ForestConfig::fast(8, 2),
                ..StrudelCellConfig::default()
            },
        )
    }

    fn serialized() -> Vec<u8> {
        let mut buf = Vec::new();
        fitted().write_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_structure_detection() {
        let model = fitted();
        let mut buf = Vec::new();
        model.write_to(&mut buf).unwrap();
        let loaded = Strudel::read_from(buf.as_slice()).unwrap();

        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nTotal,14,28\n";
        let a = model.detect_structure(text);
        let b = loaded.detect_structure(text);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.class, cb.class);
            assert_eq!(ca.probs, cb.probs);
        }
    }

    #[test]
    fn save_and_load_via_file() {
        let model = fitted();
        let path =
            std::env::temp_dir().join(format!("strudel-model-test-{}.bin", std::process::id()));
        model.save(&path).unwrap();
        let loaded = Strudel::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let text = "a,1\nb,2\n";
        assert_eq!(
            model.detect_structure(text).lines,
            loaded.detect_structure(text).lines
        );
    }

    #[test]
    fn load_missing_file_is_io_error_with_path() {
        let err = expect_err(Strudel::load("/nonexistent/strudel-no-such-model.bin"));
        assert_eq!(err.category(), "io");
        assert!(err.file().unwrap().contains("strudel-no-such-model.bin"));
    }

    #[test]
    fn garbage_file_rejected() {
        let err = expect_err(Strudel::read_from(&b"garbage"[..]));
        // Either too short (truncation) or bad magic — both are Model.
        assert_eq!(err.category(), "model");
    }

    #[test]
    fn truncated_model_rejected_at_every_prefix() {
        let buf = serialized();
        // Every strict prefix must fail with a typed Model error; step by
        // a prime so the test stays fast on multi-kilobyte models.
        for len in (0..buf.len()).step_by(211) {
            let err = match Strudel::read_from(&buf[..len]) {
                Err(e) => e,
                Ok(_) => panic!("accepted a {len}-byte prefix of a {}-byte model", buf.len()),
            };
            assert_eq!(err.category(), "model", "prefix length {len}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = serialized();
        buf[0] ^= 0xFF;
        let err = expect_err(Strudel::read_from(buf.as_slice()));
        assert_eq!(err.category(), "model");
        assert!(
            err.to_string().contains("not a Strudel model"),
            "got: {err}"
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = serialized();
        // The version u32 follows the 8-byte magic.
        buf[8] = 0xFF;
        let err = expect_err(Strudel::read_from(buf.as_slice()));
        assert_eq!(err.category(), "model");
        assert!(err.to_string().contains("version"), "got: {err}");
    }

    #[test]
    fn out_of_range_class_count_rejected() {
        // Serialize a structurally valid forest with an inflated class
        // count: the forest itself decodes fine, but the pipeline
        // contract (n_classes == ElementClass::COUNT) is violated.
        let arity = ElementClass::COUNT + 3;
        let tree = strudel_ml::DecisionTree::from_raw_parts(
            vec![strudel_ml::RawNode::Leaf {
                proba: vec![1.0 / arity as f64; arity],
            }],
            arity,
        )
        .unwrap();
        let bogus = RandomForest::from_raw_parts(vec![tree], arity).unwrap();
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        write_derived(&mut w, &DerivedConfig::default()).unwrap();
        w.bool(false).unwrap();
        bogus.write_to(&mut w).unwrap();
        w.finish().flush().unwrap();

        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        let err = expect_err(StrudelLine::read_from(&mut r));
        assert_eq!(err.category(), "model");
        assert!(err.to_string().contains("classes"), "got: {err}");
    }

    #[test]
    fn out_of_range_feature_index_rejected() {
        // A forest splitting on feature 999 is structurally valid but can
        // never be served by the line stage (14 + 4 features at most).
        let leaf = strudel_ml::RawNode::Leaf {
            proba: vec![1.0 / ElementClass::COUNT as f64; ElementClass::COUNT],
        };
        let tree = strudel_ml::DecisionTree::from_raw_parts(
            vec![
                strudel_ml::RawNode::Split {
                    feature: 999,
                    threshold: 0.5,
                    left: 1,
                    right: 2,
                },
                leaf.clone(),
                leaf,
            ],
            ElementClass::COUNT,
        )
        .unwrap();
        let bogus = RandomForest::from_raw_parts(vec![tree], ElementClass::COUNT).unwrap();

        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        write_derived(&mut w, &DerivedConfig::default()).unwrap();
        w.bool(false).unwrap();
        bogus.write_to(&mut w).unwrap();
        w.finish().flush().unwrap();

        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        let err = expect_err(StrudelLine::read_from(&mut r));
        assert_eq!(err.category(), "model");
        assert!(err.to_string().contains("feature index 999"), "got: {err}");
    }

    #[test]
    fn config_fields_roundtrip() {
        let corpus = tiny_corpus(4);
        let mut config = StrudelLineConfig {
            forest: ForestConfig::fast(5, 0),
            ..StrudelLineConfig::default()
        };
        config.features.derived.delta = 0.25;
        config.features.derived.detect_min_max = true;
        config.features.include_global = true;
        let model = StrudelLine::fit(&corpus.files, &config);
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        model.write_to(&mut w).unwrap();
        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        let loaded = StrudelLine::read_from(&mut r).unwrap();
        assert_eq!(loaded.feature_config().derived.delta, 0.25);
        assert!(loaded.feature_config().derived.detect_min_max);
        assert!(loaded.feature_config().include_global);
    }
}
