//! Persistence of fitted Strudel models.
//!
//! A [`Strudel`] model (both stages plus their feature configurations)
//! serializes to the compact binary format of `strudel_ml::serialize`,
//! so a model trained on an annotated corpus can be shipped and used for
//! classification without retraining — the workflow behind the
//! `strudel-cli` tool.

use crate::cell_classifier::StrudelCell;
use crate::cell_features::CellFeatureConfig;
use crate::derived::DerivedConfig;
use crate::line_classifier::StrudelLine;
use crate::line_features::LineFeatureConfig;
use crate::pipeline::Strudel;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use strudel_ml::{ModelReader, ModelWriter, RandomForest};

fn write_derived<W: Write>(w: &mut ModelWriter<W>, d: &DerivedConfig) -> io::Result<()> {
    w.f64(d.delta)?;
    w.f64(d.coverage)?;
    w.bool(d.detect_min_max)
}

fn read_derived<R: Read>(r: &mut ModelReader<R>) -> io::Result<DerivedConfig> {
    Ok(DerivedConfig {
        delta: r.f64()?,
        coverage: r.f64()?,
        detect_min_max: r.bool()?,
    })
}

impl StrudelLine {
    /// Serialize the fitted line model (forest + feature configuration).
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        let features = self.feature_config();
        write_derived(w, &features.derived)?;
        w.bool(features.include_global)?;
        self.forest().write_to(w)
    }

    /// Deserialize a line model written by [`StrudelLine::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> io::Result<StrudelLine> {
        let derived = read_derived(r)?;
        let include_global = r.bool()?;
        let forest = RandomForest::read_from(r)?;
        Ok(StrudelLine::from_parts(
            forest,
            LineFeatureConfig {
                derived,
                include_global,
            },
        ))
    }
}

impl StrudelCell {
    /// Serialize the full two-stage model.
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        self.line_model().write_to(w)?;
        write_derived(w, &self.feature_config().derived)?;
        self.forest().write_to(w)
    }

    /// Deserialize a model written by [`StrudelCell::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> io::Result<StrudelCell> {
        let line_model = StrudelLine::read_from(r)?;
        let derived = read_derived(r)?;
        let forest = RandomForest::read_from(r)?;
        Ok(StrudelCell::from_parts(
            line_model,
            forest,
            CellFeatureConfig { derived },
        ))
    }
}

impl Strudel {
    /// Serialize the pipeline model to any writer.
    pub fn write_to<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = ModelWriter::new(writer)?;
        self.cell_model().write_to(&mut w)?;
        w.finish().flush()
    }

    /// Deserialize a pipeline model from any reader.
    pub fn read_from<R: Read>(reader: R) -> io::Result<Strudel> {
        let mut r = ModelReader::new(reader)?;
        Ok(Strudel::from_cell_model(StrudelCell::read_from(&mut r)?))
    }

    /// Save the model to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(BufWriter::new(File::create(path)?))
    }

    /// Load a model from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Strudel> {
        Strudel::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_classifier::StrudelCellConfig;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use strudel_ml::ForestConfig;

    fn fitted() -> Strudel {
        let corpus = tiny_corpus(6);
        Strudel::fit(
            &corpus.files,
            &StrudelCellConfig {
                line: StrudelLineConfig {
                    forest: ForestConfig::fast(8, 1),
                    ..StrudelLineConfig::default()
                },
                forest: ForestConfig::fast(8, 2),
                ..StrudelCellConfig::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_structure_detection() {
        let model = fitted();
        let mut buf = Vec::new();
        model.write_to(&mut buf).unwrap();
        let loaded = Strudel::read_from(buf.as_slice()).unwrap();

        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nTotal,14,28\n";
        let a = model.detect_structure(text);
        let b = loaded.detect_structure(text);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.class, cb.class);
            assert_eq!(ca.probs, cb.probs);
        }
    }

    #[test]
    fn save_and_load_via_file() {
        let model = fitted();
        let path =
            std::env::temp_dir().join(format!("strudel-model-test-{}.bin", std::process::id()));
        model.save(&path).unwrap();
        let loaded = Strudel::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let text = "a,1\nb,2\n";
        assert_eq!(
            model.detect_structure(text).lines,
            loaded.detect_structure(text).lines
        );
    }

    #[test]
    fn garbage_file_rejected() {
        let err = match Strudel::read_from(&b"garbage"[..]) {
            Err(e) => e,
            Ok(_) => panic!("garbage accepted"),
        };
        // Either too short (UnexpectedEof) or bad magic (InvalidData).
        assert!(matches!(
            err.kind(),
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn config_fields_roundtrip() {
        let corpus = tiny_corpus(4);
        let mut config = StrudelLineConfig {
            forest: ForestConfig::fast(5, 0),
            ..StrudelLineConfig::default()
        };
        config.features.derived.delta = 0.25;
        config.features.derived.detect_min_max = true;
        config.features.include_global = true;
        let model = StrudelLine::fit(&corpus.files, &config);
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        model.write_to(&mut w).unwrap();
        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        let loaded = StrudelLine::read_from(&mut r).unwrap();
        assert_eq!(loaded.feature_config().derived.delta, 0.25);
        assert!(loaded.feature_config().derived.detect_min_max);
        assert!(loaded.feature_config().include_global);
    }
}
