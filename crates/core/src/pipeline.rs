//! The end-to-end Strudel pipeline (Figure 2).
//!
//! Raw text → dialect detection → verbose CSV table → `Strudel^L` line
//! classification → `Strudel^C` cell classification. [`Strudel`] bundles
//! the two fitted stages and exposes one-call structure detection for raw
//! text or pre-parsed tables.

use crate::analysis::TableAnalysis;
use crate::cell_classifier::{CellPrediction, StrudelCell, StrudelCellConfig};
use crate::line_classifier::StrudelLine;
use crate::metrics::{Metrics, NullMetrics, Stage, StageTimer};
use std::collections::HashMap;
use strudel_dialect::{decode_utf8, try_detect_dialect, try_read_table_ref_with, Dialect};
use strudel_table::{
    CellView, Deadline, ElementClass, GridView, LabeledFile, LimitKind, Limits, StrudelError, Table,
};

/// The detected structure of one verbose CSV file.
///
/// Built through [`Structure::new`], which indexes the cell predictions
/// by position so [`cell_class`](Structure::cell_class) is a hash lookup
/// rather than a scan.
#[derive(Debug, Clone)]
pub struct Structure {
    /// The dialect the file was parsed with.
    pub dialect: Dialect,
    /// The parsed table.
    pub table: Table,
    /// Per-line class (`None` for empty lines).
    pub lines: Vec<Option<ElementClass>>,
    /// Per-line class probability vectors (uniform for empty lines).
    pub line_probs: Vec<Vec<f64>>,
    /// Per-cell predictions for all non-empty cells.
    pub cells: Vec<CellPrediction>,
    /// Position → index into `cells`. Cell *positions* never change after
    /// construction (post-processing only rewrites predicted classes), so
    /// the index stays valid for the lifetime of the value.
    cell_index: HashMap<(usize, usize), usize>,
}

impl PartialEq for Structure {
    fn eq(&self, other: &Structure) -> bool {
        // The index is derived from `cells`; comparing it would be
        // redundant.
        self.dialect == other.dialect
            && self.table == other.table
            && self.lines == other.lines
            && self.line_probs == other.line_probs
            && self.cells == other.cells
    }
}

impl Structure {
    /// Assemble a structure from its parts, building the position index
    /// over the cell predictions.
    pub fn new(
        dialect: Dialect,
        table: Table,
        lines: Vec<Option<ElementClass>>,
        line_probs: Vec<Vec<f64>>,
        cells: Vec<CellPrediction>,
    ) -> Structure {
        let cell_index = cells
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.row, c.col), i))
            .collect();
        Structure {
            dialect,
            table,
            lines,
            line_probs,
            cells,
            cell_index,
        }
    }

    /// The predicted class of the cell at `(row, col)`, or `None` when the
    /// cell is empty.
    pub fn cell_class(&self, row: usize, col: usize) -> Option<ElementClass> {
        self.cell_index
            .get(&(row, col))
            .map(|&i| self.cells[i].class)
    }

    /// The full prediction of the cell at `(row, col)`, or `None` when
    /// the cell is empty.
    pub fn cell_prediction(&self, row: usize, col: usize) -> Option<&CellPrediction> {
        self.cell_index.get(&(row, col)).map(|&i| &self.cells[i])
    }

    /// Extract the data region as rows of raw values: every line whose
    /// predicted class is `data`, restricted to cells predicted `data`.
    /// This is the "make the file machine-readable" payoff the paper's
    /// introduction motivates.
    pub fn data_rows(&self) -> Vec<Vec<String>> {
        let mut cell_class = vec![vec![None; self.table.n_cols()]; self.table.n_rows()];
        for c in &self.cells {
            cell_class[c.row][c.col] = Some(c.class);
        }
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Some(ElementClass::Data))
            .map(|(r, _)| {
                (0..self.table.n_cols())
                    .map(|c| {
                        if cell_class[r][c] == Some(ElementClass::Data) {
                            self.table.cell(r, c).raw().to_string()
                        } else {
                            String::new()
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The predicted header line, as raw values, if any: the first line
    /// classified `header`, falling back to the first line holding a
    /// majority of `header` *cells* — the cell stage often recovers
    /// numeric year headers that the line stage absorbed into the data
    /// area (the paper's "header as data" error).
    pub fn header_row(&self) -> Option<Vec<String>> {
        let by_line = self
            .lines
            .iter()
            .position(|l| *l == Some(ElementClass::Header));
        let r = by_line.or_else(|| {
            (0..self.table.n_rows()).find(|&r| {
                let headers = self
                    .cells
                    .iter()
                    .filter(|c| c.row == r && c.class == ElementClass::Header)
                    .count();
                headers > 0 && 2 * headers >= self.table.row_non_empty_count(r)
            })
        })?;
        Some(
            (0..self.table.n_cols())
                .map(|c| self.table.cell(r, c).raw().to_string())
                .collect(),
        )
    }
}

/// One vertically-delimited table region of a verbose CSV file,
/// segmented from the line classes (a verbose file "may include multiple
/// tables", Section 3.1; tables stack vertically per Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableRegion {
    /// Metadata lines introducing the table (caption block).
    pub metadata_rows: Vec<usize>,
    /// Header lines.
    pub header_rows: Vec<usize>,
    /// Body lines: data, group, and derived lines in order.
    pub body_rows: Vec<usize>,
    /// Notes lines following the table.
    pub notes_rows: Vec<usize>,
}

impl TableRegion {
    /// All rows of the region, in order.
    pub fn all_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .metadata_rows
            .iter()
            .chain(&self.header_rows)
            .chain(&self.body_rows)
            .chain(&self.notes_rows)
            .copied()
            .collect();
        rows.sort_unstable();
        rows
    }
}

impl Structure {
    /// Segment the file into its stacked table regions, following the
    /// top-to-bottom reading convention of Section 3.2: a caption block
    /// (metadata) opens a region, header lines follow, then the body
    /// (data / group / derived), then notes; a new metadata or header
    /// line after body content starts the next region.
    pub fn tables(&self) -> Vec<TableRegion> {
        #[derive(PartialEq, Clone, Copy)]
        enum Phase {
            Caption,
            Body,
            Notes,
        }
        let mut regions: Vec<TableRegion> = Vec::new();
        let mut current = TableRegion::default();
        let mut phase = Phase::Caption;
        let mut has_content = false;

        let flush =
            |current: &mut TableRegion, has_content: &mut bool, regions: &mut Vec<TableRegion>| {
                if *has_content {
                    regions.push(std::mem::take(current));
                }
                *has_content = false;
            };

        for (r, line) in self.lines.iter().enumerate() {
            let Some(class) = line else { continue };
            match class {
                ElementClass::Metadata => {
                    if phase != Phase::Caption {
                        flush(&mut current, &mut has_content, &mut regions);
                        phase = Phase::Caption;
                    }
                    current.metadata_rows.push(r);
                }
                ElementClass::Header => {
                    if phase == Phase::Notes {
                        flush(&mut current, &mut has_content, &mut regions);
                        phase = Phase::Caption;
                    }
                    current.header_rows.push(r);
                    has_content = true;
                }
                ElementClass::Data | ElementClass::Group | ElementClass::Derived => {
                    if phase == Phase::Notes {
                        flush(&mut current, &mut has_content, &mut regions);
                    }
                    current.body_rows.push(r);
                    has_content = true;
                    phase = Phase::Body;
                }
                ElementClass::Notes => {
                    current.notes_rows.push(r);
                    phase = Phase::Notes;
                }
            }
        }
        if has_content || !current.metadata_rows.is_empty() || !current.notes_rows.is_empty() {
            regions.push(current);
        }
        regions
    }
}

/// The fitted two-stage Strudel model.
pub struct Strudel {
    cell_model: StrudelCell,
}

impl Strudel {
    /// Fit both stages on annotated files.
    pub fn fit(files: &[LabeledFile], config: &StrudelCellConfig) -> Strudel {
        Strudel {
            cell_model: StrudelCell::fit(files, config),
        }
    }

    /// Wrap an already-fitted cell model.
    pub fn from_cell_model(cell_model: StrudelCell) -> Strudel {
        Strudel { cell_model }
    }

    /// Detect the structure of raw text: dialect detection, parsing, and
    /// both classification stages. A leading UTF-8 BOM is stripped.
    ///
    /// This legacy entry point runs without resource limits and cannot
    /// fail; untrusted input should go through
    /// [`try_detect_structure`](Self::try_detect_structure) instead.
    pub fn detect_structure(&self, text: &str) -> Structure {
        self.detect_structure_metered(text, &mut NullMetrics)
    }

    /// [`detect_structure`](Self::detect_structure) with per-stage timing
    /// reported into `sink` — one [`Metrics::record`] call per pipeline
    /// stage ([`Stage::ALL`]). The detected structure is identical to the
    /// unmetered call.
    pub fn detect_structure_metered(&self, text: &str, sink: &mut dyn Metrics) -> Structure {
        self.detect_structure_with_threads(text, 0, sink)
    }

    /// Full pipeline with explicit inference thread count; `0` picks the
    /// available parallelism, the batch engine pins workers to `1`.
    pub(crate) fn detect_structure_with_threads(
        &self,
        text: &str,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Structure {
        // With unbounded limits and no deadline, no error path of the
        // guarded pipeline is reachable on `&str` input.
        self.try_detect_structure_guarded(
            text,
            &Limits::unbounded(),
            Deadline::none(),
            n_threads,
            sink,
        )
        .expect("unbounded detection cannot fail")
    }

    /// [`detect_structure`](Self::detect_structure) under resource
    /// [`Limits`]: every stage either succeeds or reports a typed
    /// [`StrudelError`] — never a panic, never unbounded memory. Within
    /// the limits the result is identical to the unbounded entry point.
    pub fn try_detect_structure(
        &self,
        text: &str,
        limits: &Limits,
    ) -> Result<Structure, StrudelError> {
        self.try_detect_structure_metered(text, limits, &mut NullMetrics)
    }

    /// [`try_detect_structure`](Self::try_detect_structure) over raw
    /// bytes: decodes UTF-8 first (a typed parse error on failure, with
    /// the offending byte offset), then runs the guarded pipeline. The
    /// entry point for untrusted file contents.
    pub fn try_detect_structure_bytes(
        &self,
        bytes: &[u8],
        limits: &Limits,
    ) -> Result<Structure, StrudelError> {
        self.try_detect_structure_bytes_metered(bytes, limits, 0, &mut NullMetrics)
    }

    /// [`try_detect_structure_bytes`](Self::try_detect_structure_bytes)
    /// with per-stage timing reported into `sink` and an explicit
    /// inference thread count: `0` picks the available parallelism;
    /// resident services running several request workers (the `strudel
    /// serve` daemon) pin `1`, like the batch engine, so per-request
    /// inference never oversubscribes the machine.
    pub fn try_detect_structure_bytes_metered(
        &self,
        bytes: &[u8],
        limits: &Limits,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Result<Structure, StrudelError> {
        if let Some(max) = limits.max_input_bytes {
            if bytes.len() as u64 > max {
                return Err(StrudelError::limit(
                    LimitKind::InputBytes,
                    bytes.len() as u64,
                    max,
                ));
            }
        }
        let text = decode_utf8(bytes)?;
        self.try_detect_structure_guarded(text, limits, limits.start_deadline(), n_threads, sink)
    }

    /// [`try_detect_structure`](Self::try_detect_structure) with
    /// per-stage timing reported into `sink`.
    pub fn try_detect_structure_metered(
        &self,
        text: &str,
        limits: &Limits,
        sink: &mut dyn Metrics,
    ) -> Result<Structure, StrudelError> {
        self.try_detect_structure_guarded(text, limits, limits.start_deadline(), 0, sink)
    }

    /// The guarded pipeline core: limits enforced in every pre-model
    /// stage, the wall-clock deadline polled at stage boundaries and
    /// inside the parser loop.
    pub(crate) fn try_detect_structure_guarded(
        &self,
        text: &str,
        limits: &Limits,
        deadline: Deadline,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Result<Structure, StrudelError> {
        let text = strudel_dialect::strip_bom(text);
        self.try_detect_structure_stripped(text, limits, deadline, n_threads, sink)
    }

    /// [`try_detect_structure_guarded`](Self::try_detect_structure_guarded)
    /// minus the BOM strip: the entry for callers that already consumed
    /// a leading BOM (the streaming classifier strips it at the byte
    /// level, so a second strip here would eat genuine `U+FEFF`
    /// content).
    pub(crate) fn try_detect_structure_stripped(
        &self,
        text: &str,
        limits: &Limits,
        deadline: Deadline,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Result<Structure, StrudelError> {
        if let Some(max) = limits.max_input_bytes {
            if text.len() as u64 > max {
                return Err(StrudelError::limit(
                    LimitKind::InputBytes,
                    text.len() as u64,
                    max,
                ));
            }
        }
        if limits.reject_binary {
            if let Some(pos) = text.bytes().position(|b| b == 0) {
                return Err(StrudelError::Dialect {
                    file: None,
                    reason: format!("binary content: NUL byte at offset {pos}"),
                });
            }
        }
        // Thread knobs resolve exactly once for the whole pipeline
        // (explicit request → STRUDEL_THREADS → available parallelism):
        // the chunk-parallel scanner and both forest walks see the same
        // effective count.
        let n_threads = crate::batch::resolve_threads(n_threads);
        let timer = StageTimer::start(Stage::Dialect);
        let dialect = try_detect_dialect(text, limits, deadline)?;
        timer.stop(sink);
        deadline.check()?;
        let timer = StageTimer::start(Stage::Parse);
        let (table_ref, records) =
            try_read_table_ref_with(text, &dialect, limits, deadline, n_threads)?;
        sink.record_parse_chunks(records.n_chunks() as u64);
        timer.stop(sink);
        deadline.check()?;
        // Classification runs over the borrowed grid — no cell text has
        // been copied out of the input buffer yet.
        let (lines, line_probs, cells) = self.classify_grid(table_ref.view(), n_threads, sink);
        let timer = StageTimer::start(Stage::Materialize);
        let table = table_ref.into_table();
        timer.stop(sink);
        Ok(Structure::new(dialect, table, lines, line_probs, cells))
    }

    /// The guarded pipeline with a *known* dialect: byte-cap and binary
    /// checks, guarded parsing, and both classification stages — dialect
    /// detection is skipped. This is the per-window work unit of the
    /// streaming classifier ([`crate::stream`]): each closed window is
    /// classified exactly as if its text were an independent document
    /// parsed under the stream's prefix-detected dialect, which is also
    /// what the streaming-vs-whole-file differential tests re-run on
    /// window slices to prove the windows were cut and buffered
    /// correctly. Limits apply to `text` as given (so
    /// `max_input_bytes` caps the window, not the whole stream), and the
    /// NUL offset of a `reject_binary` failure is relative to `text`.
    pub fn try_detect_structure_with_dialect(
        &self,
        text: &str,
        dialect: &Dialect,
        limits: &Limits,
        deadline: Deadline,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Result<Structure, StrudelError> {
        if let Some(max) = limits.max_input_bytes {
            if text.len() as u64 > max {
                return Err(StrudelError::limit(
                    LimitKind::InputBytes,
                    text.len() as u64,
                    max,
                ));
            }
        }
        if limits.reject_binary {
            if let Some(pos) = text.bytes().position(|b| b == 0) {
                return Err(StrudelError::Dialect {
                    file: None,
                    reason: format!("binary content: NUL byte at offset {pos}"),
                });
            }
        }
        let n_threads = crate::batch::resolve_threads(n_threads);
        deadline.check()?;
        let timer = StageTimer::start(Stage::Parse);
        let (table_ref, records) =
            try_read_table_ref_with(text, dialect, limits, deadline, n_threads)?;
        sink.record_parse_chunks(records.n_chunks() as u64);
        timer.stop(sink);
        deadline.check()?;
        let (lines, line_probs, cells) = self.classify_grid(table_ref.view(), n_threads, sink);
        let timer = StageTimer::start(Stage::Materialize);
        let table = table_ref.into_table();
        timer.stop(sink);
        Ok(Structure::new(*dialect, table, lines, line_probs, cells))
    }

    /// Detect the structure of a pre-parsed table.
    pub fn detect_structure_of_table(&self, table: Table, dialect: Dialect) -> Structure {
        self.detect_structure_of_table_metered(table, dialect, &mut NullMetrics)
    }

    /// [`detect_structure_of_table`](Self::detect_structure_of_table)
    /// with per-stage timing reported into `sink`. Only the shared
    /// derived-cell analysis and the two classification stages are
    /// recorded — dialect detection and parsing did not run.
    pub fn detect_structure_of_table_metered(
        &self,
        table: Table,
        dialect: Dialect,
        sink: &mut dyn Metrics,
    ) -> Structure {
        self.detect_structure_of_table_with_threads(table, dialect, 0, sink)
    }

    pub(crate) fn detect_structure_of_table_with_threads(
        &self,
        table: Table,
        dialect: Dialect,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> Structure {
        let n_threads = crate::batch::resolve_threads(n_threads);
        let (lines, line_probs, cells) = self.classify_grid(table.view(), n_threads, sink);
        Structure::new(dialect, table, lines, line_probs, cells)
    }

    /// The classification core, shared by the owned-table entry points
    /// and the borrowed zero-copy detection path: one derived-cell
    /// analysis, `Strudel^L` line probabilities (with hard classes as
    /// their argmax — the forest is only walked once per line), and
    /// `Strudel^C` cell predictions, each metered as its own stage.
    fn classify_grid<C: CellView>(
        &self,
        grid: GridView<'_, C>,
        n_threads: usize,
        sink: &mut dyn Metrics,
    ) -> (
        Vec<Option<ElementClass>>,
        Vec<Vec<f64>>,
        Vec<CellPrediction>,
    ) {
        let line_model = self.cell_model.line_model();
        // One derived-cell detection (Algorithm 2) per table, shared by
        // the line and cell feature extractors.
        let timer = StageTimer::start(Stage::DerivedCells);
        let analysis = TableAnalysis::compute_view(grid, line_model.feature_config().derived);
        timer.stop(sink);
        let timer = StageTimer::start(Stage::LineClassify);
        let line_probs = line_model.predict_probs_view(grid, &analysis, n_threads);
        let lines: Vec<Option<ElementClass>> = (0..grid.n_rows())
            .map(|r| {
                if grid.row_is_empty(r) {
                    None
                } else {
                    Some(ElementClass::from_index(strudel_ml::argmax(&line_probs[r])))
                }
            })
            .collect();
        timer.stop(sink);
        let timer = StageTimer::start(Stage::CellClassify);
        let cells =
            self.cell_model
                .predict_with_probs_view(grid, &line_probs, n_threads, &analysis);
        timer.stop(sink);
        (lines, line_probs, cells)
    }

    /// The line stage.
    pub fn line_model(&self) -> &StrudelLine {
        self.cell_model.line_model()
    }

    /// The cell stage.
    pub fn cell_model(&self) -> &StrudelCell {
        &self.cell_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use strudel_ml::ForestConfig;

    fn fitted() -> Strudel {
        let corpus = tiny_corpus(8);
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(15, 1),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(15, 2),
            ..StrudelCellConfig::default()
        };
        Strudel::fit(&corpus.files, &config)
    }

    #[test]
    fn end_to_end_on_raw_text() {
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let s = model.detect_structure(text);
        assert_eq!(s.dialect.delimiter, ',');
        assert_eq!(s.lines[0], Some(ElementClass::Metadata));
        assert_eq!(s.lines[1], Some(ElementClass::Header));
        assert_eq!(s.lines[2], Some(ElementClass::Data));
        assert_eq!(s.lines[4], Some(ElementClass::Derived));
        assert_eq!(s.lines[5], Some(ElementClass::Notes));
    }

    #[test]
    fn data_extraction_returns_data_lines_only() {
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let s = model.detect_structure(text);
        let data = s.data_rows();
        assert_eq!(data.len(), 2);
        assert_eq!(data[0][0], "Berlin");
        assert_eq!(s.header_row().unwrap()[1], "2019");
    }

    #[test]
    fn tables_segments_stacked_regions() {
        // Hand-build a Structure with known line classes — segmentation
        // is a pure function of them.
        use ElementClass::*;
        let table = Table::from_rows(vec![vec!["x"]; 12]);
        let classes = vec![
            Some(Metadata),
            Some(Header),
            Some(Data),
            Some(Derived),
            Some(Notes),
            None,
            Some(Metadata),
            Some(Header),
            Some(Data),
            Some(Group),
            Some(Data),
            Some(Notes),
        ];
        let line_probs = vec![vec![1.0 / 6.0; 6]; table.n_rows()];
        let s = Structure::new(
            strudel_dialect::Dialect::rfc4180(),
            table,
            classes,
            line_probs,
            Vec::new(),
        );
        let regions = s.tables();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].metadata_rows, vec![0]);
        assert_eq!(regions[0].header_rows, vec![1]);
        assert_eq!(regions[0].body_rows, vec![2, 3]);
        assert_eq!(regions[0].notes_rows, vec![4]);
        assert_eq!(regions[1].metadata_rows, vec![6]);
        assert_eq!(regions[1].body_rows, vec![8, 9, 10]);
        assert_eq!(regions[1].all_rows(), vec![6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn tables_of_single_region_file() {
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let s = model.detect_structure(text);
        let regions = s.tables();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].body_rows.len(), 3);
    }

    #[test]
    fn tables_of_empty_structure() {
        let model = fitted();
        let s = model.detect_structure("");
        assert!(s.tables().is_empty());
    }

    #[test]
    fn cell_class_lookup() {
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let s = model.detect_structure(text);
        assert_eq!(s.cell_class(2, 1), Some(ElementClass::Data));
        // Empty cell has no class.
        assert_eq!(s.cell_class(0, 1), None);
    }

    #[test]
    fn cell_index_hit_miss_and_empty() {
        // `cell_class` is index-backed: a hit returns the prediction at
        // that position, an out-of-range miss and an empty cell both
        // return `None`, and every stored prediction is findable.
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let s = model.detect_structure(text);
        for c in &s.cells {
            assert_eq!(s.cell_class(c.row, c.col), Some(c.class));
            assert_eq!(s.cell_prediction(c.row, c.col), Some(c));
        }
        // Miss: far outside the table.
        assert_eq!(s.cell_class(999, 999), None);
        assert!(s.cell_prediction(999, 999).is_none());
        // Empty cell inside the table: row 0 only fills column 0.
        assert!(s.table.cell(0, 2).is_empty());
        assert_eq!(s.cell_class(0, 2), None);
        // A structure with no cell predictions at all.
        let empty = Structure::new(
            strudel_dialect::Dialect::rfc4180(),
            Table::from_rows(Vec::<Vec<&str>>::new()),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(empty.cell_class(0, 0), None);
    }

    #[test]
    fn metered_detection_records_all_stages_and_matches_unmetered() {
        use crate::metrics::{Stage, StageTimings};
        let model = fitted();
        let text = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";
        let mut sink = StageTimings::default();
        let metered = model.detect_structure_metered(text, &mut sink);
        for stage in Stage::ALL {
            // The whole-file pipeline records every stage except the
            // streaming-only bookkeeping stage and the container
            // encode/decode stages.
            let want = u64::from(!matches!(
                stage,
                Stage::Stream | Stage::Pack | Stage::Unpack
            ));
            assert_eq!(sink.count(stage), want, "stage {} recorded", stage.name());
        }
        // A small input scans serially: exactly one chunk.
        assert_eq!(sink.parse_chunks(), 1);
        assert_eq!(metered, model.detect_structure(text));

        // The table entry point skips dialect detection and parsing but
        // still records the shared analysis and both classifiers.
        let mut sink = StageTimings::default();
        let table = strudel_dialect::read_table_with(text, &strudel_dialect::Dialect::rfc4180());
        let s = model.detect_structure_of_table_metered(
            table,
            strudel_dialect::Dialect::rfc4180(),
            &mut sink,
        );
        assert_eq!(sink.count(Stage::Dialect), 0);
        assert_eq!(sink.count(Stage::Parse), 0);
        assert_eq!(sink.count(Stage::DerivedCells), 1);
        assert_eq!(sink.count(Stage::LineClassify), 1);
        assert_eq!(sink.count(Stage::CellClassify), 1);
        // The table was already owned — nothing to materialise.
        assert_eq!(sink.count(Stage::Materialize), 0);
        assert_eq!(sink.parse_chunks(), 0);
        assert_eq!(s.lines.len(), 6);
    }
}
