//! Rule-based repair of cell misclassifications, after Koci et al.
//! (IC3K 2016 — reference \[19\] of the paper).
//!
//! Koci et al. observe that certain *patterns* in a cell classifier's
//! output almost always indicate a misclassification, and repair them in
//! a post-processing pass. We adapt their idea to the six-class taxonomy
//! with four conservative rules, each gated on the classifier's own
//! confidence so that high-confidence predictions are never overridden:
//!
//! 1. **Positional impossibility — header below data.** Headers sit
//!    above the data area of their table (Section 3.2). A low-confidence
//!    `header` cell strictly below the last data line of the file flips
//!    to the runner-up class.
//! 2. **Positional impossibility — metadata below the body.** Metadata
//!    is "descriptive text above a table"; a low-confidence `metadata`
//!    cell below the last data line flips to `notes` (its mirror class).
//! 3. **Positional impossibility — notes above the body.** The converse:
//!    a low-confidence `notes` cell above the first data line flips to
//!    `metadata`.
//! 4. **Lone outlier inside a homogeneous line.** A low-confidence cell
//!    whose class differs from every other non-empty cell of its line —
//!    where those agree on one class that is not a legitimate intra-line
//!    companion (`group`/`derived` co-occur by design, Table 3) — flips
//!    to the line consensus.

use crate::cell_classifier::CellPrediction;
use strudel_ml::argmax;
use strudel_table::{ElementClass, Table};

/// Configuration of the repair pass.
#[derive(Debug, Clone, Copy)]
pub struct RepairConfig {
    /// Maximum winning probability at which a prediction may be
    /// overridden; confident predictions are left alone.
    pub max_confidence: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_confidence: 0.6,
        }
    }
}

/// Statistics of one repair pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Headers below the data area re-labeled.
    pub header_below_data: usize,
    /// Metadata below the data area re-labeled to notes.
    pub metadata_below_data: usize,
    /// Notes above the data area re-labeled to metadata.
    pub notes_above_data: usize,
    /// Lone in-line outliers re-labeled to the line consensus.
    pub lone_outliers: usize,
}

impl RepairReport {
    /// Total number of repaired cells.
    pub fn total(&self) -> usize {
        self.header_below_data
            + self.metadata_below_data
            + self.notes_above_data
            + self.lone_outliers
    }
}

/// The second-most probable class of a prediction.
fn runner_up(probs: &[f64]) -> ElementClass {
    let winner = argmax(probs);
    let mut best = usize::from(winner == 0);
    for i in 0..probs.len() {
        if i != winner && probs[i] > probs[best] {
            best = i;
        }
    }
    ElementClass::from_index(best)
}

/// Repair cell predictions in place; returns per-rule counts.
pub fn repair_cells(
    table: &Table,
    cells: &mut [CellPrediction],
    config: &RepairConfig,
) -> RepairReport {
    let mut report = RepairReport::default();
    if cells.is_empty() {
        return report;
    }

    // Data-area bounds from the current predictions.
    let data_rows: Vec<usize> = cells
        .iter()
        .filter(|c| c.class == ElementClass::Data)
        .map(|c| c.row)
        .collect();
    let first_data = data_rows.iter().min().copied();
    let last_data = data_rows.iter().max().copied();

    // Per-line class counts for rule 4.
    let mut line_counts = vec![[0usize; ElementClass::COUNT]; table.n_rows()];
    for cell in cells.iter() {
        line_counts[cell.row][cell.class.index()] += 1;
    }

    for cell in cells.iter_mut() {
        let confidence = cell.probs[cell.class.index()];
        if confidence > config.max_confidence {
            continue;
        }
        // Rules 1-3: positional impossibilities.
        match cell.class {
            ElementClass::Header => {
                if let Some(last) = last_data {
                    if cell.row > last {
                        line_counts[cell.row][cell.class.index()] -= 1;
                        cell.class = runner_up(&cell.probs);
                        line_counts[cell.row][cell.class.index()] += 1;
                        report.header_below_data += 1;
                        continue;
                    }
                }
            }
            ElementClass::Metadata => {
                if let Some(last) = last_data {
                    if cell.row > last {
                        line_counts[cell.row][cell.class.index()] -= 1;
                        cell.class = ElementClass::Notes;
                        line_counts[cell.row][cell.class.index()] += 1;
                        report.metadata_below_data += 1;
                        continue;
                    }
                }
            }
            ElementClass::Notes => {
                if let Some(first) = first_data {
                    if cell.row < first {
                        line_counts[cell.row][cell.class.index()] -= 1;
                        cell.class = ElementClass::Metadata;
                        line_counts[cell.row][cell.class.index()] += 1;
                        report.notes_above_data += 1;
                        continue;
                    }
                }
            }
            _ => {}
        }
        // Rule 4: lone outlier in a homogeneous line.
        let counts = &line_counts[cell.row];
        let own = cell.class.index();
        if counts[own] == 1 {
            let others: usize = counts.iter().sum::<usize>() - 1;
            if others >= 2 {
                // The rest of the line agrees on exactly one class?
                let consensus = (0..ElementClass::COUNT).find(|&c| c != own && counts[c] == others);
                if let Some(consensus) = consensus {
                    let consensus = ElementClass::from_index(consensus);
                    let legitimate = matches!(
                        (cell.class, consensus),
                        (ElementClass::Group, _)
                            | (ElementClass::Derived, ElementClass::Data)
                            | (ElementClass::Data, ElementClass::Derived)
                    );
                    if !legitimate {
                        line_counts[cell.row][own] -= 1;
                        cell.class = consensus;
                        line_counts[cell.row][consensus.index()] += 1;
                        report.lone_outliers += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(row: usize, col: usize, class: ElementClass, confidence: f64) -> CellPrediction {
        let mut probs = vec![(1.0 - confidence) / 5.0; ElementClass::COUNT];
        probs[class.index()] = confidence;
        CellPrediction {
            row,
            col,
            class,
            probs,
        }
    }

    fn table(rows: usize, cols: usize) -> Table {
        Table::from_rows(vec![vec!["x"; cols]; rows])
    }

    use ElementClass::*;

    #[test]
    fn metadata_below_data_flips_to_notes() {
        let t = table(3, 1);
        let mut cells = vec![
            prediction(0, 0, Data, 0.9),
            prediction(1, 0, Data, 0.9),
            prediction(2, 0, Metadata, 0.4),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.metadata_below_data, 1);
        assert_eq!(cells[2].class, Notes);
    }

    #[test]
    fn notes_above_data_flips_to_metadata() {
        let t = table(3, 1);
        let mut cells = vec![
            prediction(0, 0, Notes, 0.5),
            prediction(1, 0, Data, 0.9),
            prediction(2, 0, Data, 0.9),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.notes_above_data, 1);
        assert_eq!(cells[0].class, Metadata);
    }

    #[test]
    fn confident_predictions_are_never_touched() {
        let t = table(3, 1);
        let mut cells = vec![
            prediction(0, 0, Data, 0.9),
            prediction(1, 0, Data, 0.9),
            prediction(2, 0, Metadata, 0.95),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.total(), 0);
        assert_eq!(cells[2].class, Metadata);
    }

    #[test]
    fn header_below_data_takes_runner_up() {
        let t = table(3, 1);
        let mut cells = vec![
            prediction(0, 0, Data, 0.9),
            prediction(1, 0, Data, 0.9),
            prediction(2, 0, Header, 0.4),
        ];
        // Make `notes` the runner-up.
        cells[2].probs[Notes.index()] = 0.35;
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.header_below_data, 1);
        assert_eq!(cells[2].class, Notes);
    }

    #[test]
    fn lone_outlier_joins_line_consensus() {
        let t = table(1, 4);
        let mut cells = vec![
            prediction(0, 0, Header, 0.9),
            prediction(0, 1, Header, 0.9),
            prediction(0, 2, Metadata, 0.4),
            prediction(0, 3, Header, 0.9),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.lone_outliers, 1);
        assert_eq!(cells[2].class, Header);
    }

    #[test]
    fn group_and_derived_companions_are_legitimate() {
        // A group cell leading a derived line must NOT be flattened, nor
        // a derived-column cell inside a data line.
        let t = table(2, 3);
        let mut cells = vec![
            prediction(0, 0, Group, 0.4),
            prediction(0, 1, Derived, 0.9),
            prediction(0, 2, Derived, 0.9),
            prediction(1, 0, Data, 0.9),
            prediction(1, 1, Data, 0.9),
            prediction(1, 2, Derived, 0.4),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.lone_outliers, 0);
        assert_eq!(cells[0].class, Group);
        assert_eq!(cells[5].class, Derived);
    }

    #[test]
    fn file_without_data_is_untouched() {
        let t = table(2, 1);
        let mut cells = vec![
            prediction(0, 0, Metadata, 0.4),
            prediction(1, 0, Notes, 0.4),
        ];
        let report = repair_cells(&t, &mut cells, &RepairConfig::default());
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn empty_prediction_list() {
        let t = table(1, 1);
        let report = repair_cells(&t, &mut [], &RepairConfig::default());
        assert_eq!(report.total(), 0);
    }
}
