//! Bounded-memory streaming classification.
//!
//! [`StreamClassifier`] classifies a byte stream of unknown length with
//! peak memory proportional to the configured window, not to the input:
//! the dialect is detected on a bounded prefix, bytes flow through the
//! incremental UTF-8 validator and record-boundary tracker of
//! [`strudel_dialect::stream`], and whenever a window's worth of
//! complete records has accumulated the window is classified as an
//! independent document (preferring to cut at blank-line table
//! boundaries) and emitted — line classes, [`Structure`], and extracted
//! relational tables — while its text is dropped from the buffer.
//!
//! **Parity contract.** The output is a pure function of the byte
//! stream and the [`StreamConfig`] — never of how the stream was
//! chunked. A stream that ends before the first window closes (every
//! file smaller than the window, in particular the whole golden corpus
//! under the default configuration) is classified by the *exact*
//! whole-file pipeline over the buffered bytes, so its output —
//! including every limit/deadline error payload — is byte-identical to
//! [`Strudel::try_detect_structure_bytes`]. Dialect detection runs
//! exactly once per input: when the stream crossed the prefix threshold
//! the fallback reuses the prefix-detected dialect rather than
//! re-detecting (detection is bounded by its line budget, so both see
//! the same sample on any input large enough to fill the prefix). Once
//! a stream spans several
//! windows, whole-file identity is impossible by construction (the
//! paper's line features aggregate over the whole file), so each window
//! is classified independently under the prefix-detected dialect; the
//! differential harness then proves every emitted window equals
//! [`Strudel::try_detect_structure_with_dialect`] re-run on that
//! window's slice of the original text.
//!
//! **Limit semantics** (documented divergence from whole-file mode):
//! [`Limits::max_input_bytes`] caps each *window*, not the stream — use
//! [`StreamConfig::max_total_bytes`] to cap the whole stream (checked
//! at record boundaries and at end of stream, `actual` = post-BOM bytes
//! up to the violating boundary). Whole-file mode reports errors in
//! phase order (size cap, then binary check, then dialect, then scan);
//! the multi-window streaming path reports them in stream offset order.
//! Bounded memory itself relies on bounded records: a single record
//! larger than a full window triggers a guarded re-scan of the buffer
//! so `max_line_bytes`/`max_quoted_field_bytes` fire as usual, but with
//! unbounded limits such a record is buffered whole.

use crate::extract::{to_relational, RelationalTable};
use crate::json::json_string;
use crate::metrics::{Metrics, Stage, StageTimings};
use crate::pipeline::{Structure, Strudel};
use std::time::{Duration, Instant};
use strudel_dialect::stream::{RecordEnd, RecordTracker, Utf8Feeder};
use strudel_dialect::{try_detect_dialect, try_scan_records_within, Dialect};
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// Default chunk size used by [`classify_reader`].
pub const STREAM_CHUNK_BYTES: usize = 256 << 10;

/// Configuration of a streaming classification run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Soft cap on records per window. A window becomes closable once
    /// it holds this many records (or [`window_bytes`] worth of them)
    /// and then closes at the next blank record — a table boundary — or
    /// at twice the cap, whichever comes first.
    ///
    /// [`window_bytes`]: StreamConfig::window_bytes
    pub window_rows: usize,
    /// Soft cap on bytes per window (same closing rule as
    /// [`window_rows`](StreamConfig::window_rows); the hard cap is
    /// twice this).
    pub window_bytes: usize,
    /// Bytes buffered before the dialect is detected on the prefix
    /// (trimmed to the last complete line). Streams that end earlier
    /// take the whole-file path outright.
    pub prefix_bytes: usize,
    /// Post-BOM byte cap on the *whole stream*, enforced at record
    /// boundaries and at end of stream. This is the streaming
    /// equivalent of the whole-file `max_input_bytes`, which in
    /// streaming mode caps each window instead.
    pub max_total_bytes: Option<u64>,
    /// Per-window resource limits; `max_file_wall` budgets the whole
    /// stream (one [`Deadline`] is started when the classifier is
    /// created).
    pub limits: Limits,
    /// Threads for per-window parsing and inference; `0` resolves via
    /// [`crate::batch::resolve_threads`].
    pub n_threads: usize,
    /// Retain each window's text on its [`StreamWindow`] instead of
    /// dropping it when the window closes. Off by default (the text
    /// would defeat the O(window) memory story for callers that retain
    /// windows); the packed-container writer turns it on because it
    /// needs the raw bytes to seal one block group per window.
    pub capture_text: bool,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            window_rows: 1 << 16,
            window_bytes: 8 << 20,
            prefix_bytes: 64 << 10,
            max_total_bytes: None,
            limits: Limits::standard(),
            n_threads: 0,
            capture_text: false,
        }
    }
}

/// One classified window of the stream.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    /// 0-based window index.
    pub index: usize,
    /// Global (stream-wide) row index of the window's first row.
    pub first_row: usize,
    /// Post-BOM byte offset of the window's first byte.
    pub start_byte: u64,
    /// Post-BOM byte offset one past the window's last byte.
    pub end_byte: u64,
    /// The window classified as an independent document.
    pub structure: Structure,
    /// Relational tables extracted from the window
    /// ([`crate::to_relational`]).
    pub tables: Vec<RelationalTable>,
    /// The window's post-BOM text, retained only when
    /// [`StreamConfig::capture_text`] is set; empty otherwise.
    pub text: String,
}

/// Aggregate result of a finished stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The dialect the stream was classified under.
    pub dialect: Dialect,
    /// Number of windows emitted.
    pub n_windows: usize,
    /// Total rows across all windows.
    pub n_rows: usize,
    /// Raw bytes consumed, including a stripped BOM.
    pub total_bytes: u64,
}

/// Incremental bounded-memory classifier. See the module docs for the
/// parity contract and limit semantics.
///
/// Push byte chunks with [`push`](StreamClassifier::push), collect
/// emitted windows with [`drain_windows`](StreamClassifier::drain_windows)
/// (undrained windows accumulate, so drain between pushes to keep peak
/// memory at O(window)), and call [`finish`](StreamClassifier::finish)
/// at end of stream. The first error poisons the classifier; further
/// calls fail.
pub struct StreamClassifier<'m> {
    model: &'m Strudel,
    config: StreamConfig,
    deadline: Deadline,
    feeder: Utf8Feeder,
    tracker: Option<RecordTracker>,
    dialect: Option<Dialect>,
    /// Decoded post-BOM text from the current window start onward.
    buf: String,
    /// Post-BOM global offset of `buf[0]`.
    base: u64,
    /// Bytes of `buf` already walked by the tracker.
    buf_fed: usize,
    /// Scratch for tracker output.
    ends: Vec<RecordEnd>,
    /// Completed records in the window being accumulated.
    rows_in_window: usize,
    /// Global row index where the current window starts.
    first_row: usize,
    n_windows: usize,
    /// Config-derived base threshold of the oversized-record guard.
    guard_base: usize,
    /// Post-BOM offset of the record the guard is currently tracking.
    guard_record_start: u64,
    /// Record length at which the guard's next prefix scan runs
    /// (doubles after every scan, resets per record).
    guard_next: usize,
    out: Vec<StreamWindow>,
    timings: StageTimings,
    stream_time: Duration,
    finished: bool,
    poisoned: bool,
}

impl<'m> StreamClassifier<'m> {
    /// Start a stream under `config`. The wall-clock deadline (if any)
    /// starts now.
    pub fn new(model: &'m Strudel, config: StreamConfig) -> StreamClassifier<'m> {
        let deadline = config.limits.start_deadline();
        let guard_base = config
            .window_bytes
            .saturating_mul(3)
            .max(config.prefix_bytes.saturating_mul(2));
        StreamClassifier {
            model,
            config,
            deadline,
            feeder: Utf8Feeder::new(),
            tracker: None,
            dialect: None,
            buf: String::new(),
            base: 0,
            buf_fed: 0,
            ends: Vec::new(),
            rows_in_window: 0,
            first_row: 0,
            n_windows: 0,
            guard_base,
            guard_record_start: 0,
            guard_next: guard_base,
            out: Vec::new(),
            timings: StageTimings::default(),
            stream_time: Duration::ZERO,
            finished: false,
            poisoned: false,
        }
    }

    /// Windows emitted so far (and not yet drained).
    pub fn drain_windows(&mut self) -> Vec<StreamWindow> {
        std::mem::take(&mut self.out)
    }

    /// The dialect, once detected (always set after a successful
    /// [`finish`](StreamClassifier::finish)).
    pub fn dialect(&self) -> Option<Dialect> {
        self.dialect
    }

    /// Per-stage timings accumulated so far (includes
    /// [`Stage::Stream`] once the stream finishes).
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// Consume the classifier, returning its timings.
    pub fn into_timings(self) -> StageTimings {
        self.timings
    }

    /// Feed one chunk of raw bytes.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), StrudelError> {
        self.check_usable()?;
        let t0 = Instant::now();
        let step = (|| {
            self.deadline.check()?;
            // A decode error is deferred, not returned: the feeder has
            // appended the valid prefix preceding it to `buf`, and that
            // prefix must be fully processed first — its dialect,
            // window, and limit errors all concern earlier stream
            // offsets — so the error a byte stream surfaces does not
            // depend on how the stream was chunked.
            let decoded = self.feeder.push(bytes, &mut self.buf);
            if self.dialect.is_none() && self.buf.len() >= self.config.prefix_bytes {
                self.detect_dialect()?;
            }
            Ok(decoded)
        })();
        let decoded = self.guard(step)?;
        self.stream_time += t0.elapsed();
        let adv = self.advance();
        self.guard(adv)?;
        self.guard(decoded)
    }

    /// Signal end of stream, classify the remainder, and summarise.
    pub fn finish(&mut self) -> Result<StreamSummary, StrudelError> {
        self.check_usable()?;
        self.finished = true;
        let t0 = Instant::now();
        let step = (|| {
            self.deadline.check()?;
            self.feeder.finish(&mut self.buf)
        })();
        self.guard(step)?;
        self.stream_time += t0.elapsed();

        if self.n_windows == 0 {
            // The stream fits in one window: discard the incremental
            // state and run the exact whole-file pipeline over the
            // buffered text, for byte-identical output (results *and*
            // errors) with the non-streaming entry points.
            let r = self.finish_whole_file();
            return self.guard(r);
        }

        // Multi-window: flush the tracker and close the final window.
        if let Some(tracker) = self.tracker.as_mut() {
            tracker.finish(&mut self.ends);
        }
        let adv = self.advance();
        self.guard(adv)?;
        let step = (|| {
            let total = self.base + self.buf.len() as u64;
            check_total_bytes(total, self.config.max_total_bytes)?;
            if !self.buf.is_empty() {
                self.close_window(self.buf.len())?;
            }
            Ok(())
        })();
        self.guard(step)?;
        self.timings
            .record(Stage::Stream, std::mem::take(&mut self.stream_time));
        Ok(StreamSummary {
            dialect: self.dialect.expect("multi-window stream has a dialect"),
            n_windows: self.n_windows,
            n_rows: self.first_row,
            total_bytes: self.feeder.validated_bytes(),
        })
    }

    /// Whole-file fallback for single-window streams.
    fn finish_whole_file(&mut self) -> Result<StreamSummary, StrudelError> {
        // Mirror `try_detect_structure_bytes_metered`: the raw byte cap
        // (BOM included) applies before anything else...
        let raw_len = self.feeder.validated_bytes();
        if let Some(max) = self.config.limits.max_input_bytes {
            if raw_len > max {
                return Err(StrudelError::limit(LimitKind::InputBytes, raw_len, max));
            }
        }
        // ...then the streaming-only whole-stream cap.
        check_total_bytes(self.buf.len() as u64, self.config.max_total_bytes)?;
        self.timings
            .record(Stage::Stream, std::mem::take(&mut self.stream_time));
        // The feeder already consumed the BOM, so enter the pipeline
        // past its own strip. When the prefix detector already ran, its
        // dialect is reused — detection happens exactly once per input
        // (pinned by the stage-timings assertion) instead of being
        // recomputed here for every single-window stream that crossed
        // the prefix threshold.
        let structure = match self.dialect {
            Some(dialect) => self.model.try_detect_structure_with_dialect(
                &self.buf,
                &dialect,
                &self.config.limits,
                self.deadline,
                self.config.n_threads,
                &mut self.timings,
            )?,
            None => self.model.try_detect_structure_stripped(
                &self.buf,
                &self.config.limits,
                self.deadline,
                self.config.n_threads,
                &mut self.timings,
            )?,
        };
        self.timings.record_stream_windows(1);
        let dialect = structure.dialect;
        let n_rows = structure.table.n_rows();
        let tables = to_relational(&structure);
        let end_byte = self.buf.len() as u64;
        let text = if self.config.capture_text {
            std::mem::take(&mut self.buf)
        } else {
            String::new()
        };
        self.out.push(StreamWindow {
            index: 0,
            first_row: 0,
            start_byte: 0,
            end_byte,
            structure,
            tables,
            text,
        });
        self.n_windows = 1;
        self.first_row = n_rows;
        self.dialect = Some(dialect);
        self.buf.clear();
        Ok(StreamSummary {
            dialect,
            n_windows: 1,
            n_rows,
            total_bytes: raw_len,
        })
    }

    /// Detect the dialect on the deterministic prefix — the first
    /// `prefix_bytes` of post-BOM text (aligned down to a character
    /// boundary), trimmed to the last complete line — and start the
    /// record tracker from stream offset 0. This is the *only* dialect
    /// detection a streamed input runs: the single-window fallback and
    /// every window close reuse the result, so each input records
    /// exactly one [`Stage::Dialect`] observation.
    fn detect_dialect(&mut self) -> Result<(), StrudelError> {
        let timer = crate::metrics::StageTimer::start(Stage::Dialect);
        let mut cut = self.config.prefix_bytes.min(self.buf.len());
        while cut > 0 && !self.buf.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &self.buf[..cut];
        let sample = match prefix.rfind(['\n', '\r']) {
            Some(i) => &prefix[..i + 1],
            None => prefix,
        };
        let dialect = try_detect_dialect(sample, &self.config.limits, self.deadline)?;
        timer.stop(&mut self.timings);
        self.dialect = Some(dialect);
        self.tracker = Some(RecordTracker::new(dialect));
        self.buf_fed = 0;
        Ok(())
    }

    /// Feed newly decoded text to the tracker and process its record
    /// ends: count rows, enforce the whole-stream byte cap, and close
    /// windows per the blank-boundary rule.
    fn advance(&mut self) -> Result<(), StrudelError> {
        let Some(tracker) = self.tracker.as_mut() else {
            return Ok(());
        };
        let t0 = Instant::now();
        if self.buf_fed < self.buf.len() {
            tracker.feed(&self.buf[self.buf_fed..], &mut self.ends);
            self.buf_fed = self.buf.len();
        }
        let incomplete_start = tracker.record_start() as u64;
        let mut ends = std::mem::take(&mut self.ends);
        self.stream_time += t0.elapsed();
        let mut result = Ok(());
        for e in ends.drain(..) {
            // The guard runs before the boundary is processed: in a
            // byte-at-a-time feed its thresholds are crossed while the
            // record is still incomplete, i.e. before its end exists.
            result = self
                .guard_record(e.start as u64, e.after as u64)
                .and_then(|()| self.record_boundary(e));
            if result.is_err() {
                break;
            }
        }
        self.ends = ends;
        result?;
        self.guard_record(incomplete_start, self.base + self.buf.len() as u64)
    }

    /// Oversized-record guard: a single record can outgrow the window
    /// (blocking every close), so once its buffered length crosses
    /// [`guard_base`](StreamClassifier::guard_base) — and again at each
    /// doubling — the record's prefix of exactly that length runs
    /// through the guarded scanner, making `max_line_bytes` /
    /// `max_quoted_field_bytes` fire instead of the buffer growing with
    /// the file. Trigger points and scanned prefixes are a pure
    /// function of record geometry, so the error surfaced — and its
    /// payload — is independent of how the stream was chunked.
    fn guard_record(&mut self, start: u64, end: u64) -> Result<(), StrudelError> {
        if self.guard_record_start != start {
            self.guard_record_start = start;
            self.guard_next = self.guard_base;
        }
        while end.saturating_sub(start) >= self.guard_next as u64 {
            let dialect = self.dialect.expect("guard implies dialect");
            let local = (start - self.base) as usize;
            let mut cut = local + self.guard_next;
            while !self.buf.is_char_boundary(cut) {
                cut -= 1;
            }
            try_scan_records_within(
                &self.buf[local..cut],
                &dialect,
                &self.config.limits,
                self.deadline,
            )?;
            self.guard_next = self.guard_next.saturating_mul(2);
        }
        Ok(())
    }

    /// One completed record: row bookkeeping, stream cap, window close.
    fn record_boundary(&mut self, e: RecordEnd) -> Result<(), StrudelError> {
        self.rows_in_window += 1;
        check_total_bytes(e.after as u64, self.config.max_total_bytes)?;
        let local = (e.after as u64 - self.base) as usize;
        let soft =
            self.rows_in_window >= self.config.window_rows || local >= self.config.window_bytes;
        let hard = self.rows_in_window >= self.config.window_rows.saturating_mul(2)
            || local >= self.config.window_bytes.saturating_mul(2);
        if (soft && e.is_blank()) || hard {
            self.close_window(local)?;
        }
        Ok(())
    }

    /// Classify `buf[..upto]` as one window, emit it, and drop its text.
    fn close_window(&mut self, upto: usize) -> Result<(), StrudelError> {
        let dialect = self.dialect.expect("window close implies dialect");
        let structure = self.model.try_detect_structure_with_dialect(
            &self.buf[..upto],
            &dialect,
            &self.config.limits,
            self.deadline,
            self.config.n_threads,
            &mut self.timings,
        )?;
        let t0 = Instant::now();
        self.timings.record_stream_windows(1);
        let tables = to_relational(&structure);
        let n_rows = structure.table.n_rows();
        let text = if self.config.capture_text {
            self.buf[..upto].to_string()
        } else {
            String::new()
        };
        self.out.push(StreamWindow {
            index: self.n_windows,
            first_row: self.first_row,
            start_byte: self.base,
            end_byte: self.base + upto as u64,
            structure,
            tables,
            text,
        });
        self.n_windows += 1;
        self.first_row += n_rows;
        self.buf.drain(..upto);
        self.base += upto as u64;
        self.buf_fed -= upto;
        self.rows_in_window = 0;
        self.stream_time += t0.elapsed();
        Ok(())
    }

    fn check_usable(&self) -> Result<(), StrudelError> {
        if self.poisoned {
            return Err(StrudelError::Internal {
                file: None,
                reason: "stream classifier used after an error".to_string(),
            });
        }
        if self.finished {
            return Err(StrudelError::Internal {
                file: None,
                reason: "stream classifier used after finish".to_string(),
            });
        }
        Ok(())
    }

    fn guard<T>(&mut self, r: Result<T, StrudelError>) -> Result<T, StrudelError> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }
}

/// The whole-stream byte cap (post-BOM), shared by the record-boundary
/// and end-of-stream checks.
fn check_total_bytes(actual: u64, max_total: Option<u64>) -> Result<(), StrudelError> {
    if let Some(max) = max_total {
        if actual > max {
            return Err(StrudelError::limit(LimitKind::InputBytes, actual, max));
        }
    }
    Ok(())
}

/// Classify a [`std::io::Read`] source end to end in
/// [`STREAM_CHUNK_BYTES`] chunks, invoking `on_window` for each emitted
/// window as soon as it closes (peak memory stays O(window) as long as
/// the callback does not retain the windows).
pub fn classify_reader<R: std::io::Read>(
    model: &Strudel,
    reader: &mut R,
    config: StreamConfig,
    on_window: &mut dyn FnMut(StreamWindow),
) -> Result<(StreamSummary, StageTimings), StrudelError> {
    let mut classifier = StreamClassifier::new(model, config);
    let mut chunk = vec![0u8; STREAM_CHUNK_BYTES];
    loop {
        let n = reader
            .read(&mut chunk)
            .map_err(|e| StrudelError::io(&e, None))?;
        if n == 0 {
            break;
        }
        classifier.push(&chunk[..n])?;
        for w in classifier.drain_windows() {
            on_window(w);
        }
    }
    let summary = classifier.finish()?;
    for w in classifier.drain_windows() {
        on_window(w);
    }
    Ok((summary, classifier.into_timings()))
}

/// Assemble the canonical [`Structure::to_json`] document from streamed
/// windows: `n_rows` sums, `n_cols` is the widest window, `lines`
/// concatenates, and `cells` carries global row indices. For a
/// single-window stream the output is byte-identical to
/// `windows[0].structure.to_json()` (pinned by test), which is what
/// makes `detect --stream --json` equal to `detect --json` on every
/// input that fits in one window.
pub fn stream_to_json(windows: &[StreamWindow]) -> String {
    use std::fmt::Write;
    let dialect = windows
        .first()
        .map(|w| w.structure.dialect)
        .unwrap_or_else(Dialect::rfc4180);
    let mut out = String::new();
    out.push_str("{\n");
    let char_field = |c: Option<char>| match c {
        Some(c) => json_string(&c.to_string()),
        None => "null".to_string(),
    };
    writeln!(
        out,
        "  \"dialect\": {{\"delimiter\": {}, \"quote\": {}, \"escape\": {}}},",
        json_string(&dialect.delimiter.to_string()),
        char_field(dialect.quote),
        char_field(dialect.escape),
    )
    .unwrap();
    let n_rows: usize = windows.iter().map(|w| w.structure.table.n_rows()).sum();
    let n_cols: usize = windows
        .iter()
        .map(|w| w.structure.table.n_cols())
        .max()
        .unwrap_or(0);
    writeln!(out, "  \"n_rows\": {n_rows},").unwrap();
    writeln!(out, "  \"n_cols\": {n_cols},").unwrap();
    let lines: Vec<String> = windows
        .iter()
        .flat_map(|w| w.structure.lines.iter())
        .map(|l| match l {
            Some(c) => format!("\"{}\"", c.name()),
            None => "null".to_string(),
        })
        .collect();
    writeln!(out, "  \"lines\": [{}],", lines.join(", ")).unwrap();
    let cells: Vec<String> = windows
        .iter()
        .flat_map(|w| {
            w.structure
                .cells
                .iter()
                .filter(|cell| Some(cell.class) != w.structure.lines[cell.row])
                .map(|cell| {
                    format!(
                        "    {{\"row\": {}, \"col\": {}, \"class\": \"{}\"}}",
                        w.first_row + cell.row,
                        cell.col,
                        cell.class.name()
                    )
                })
        })
        .collect();
    if cells.is_empty() {
        out.push_str("  \"cells\": []\n");
    } else {
        out.push_str("  \"cells\": [\n");
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ]\n");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell_classifier::StrudelCellConfig;
    use crate::line_classifier::tests::tiny_corpus;
    use crate::line_classifier::StrudelLineConfig;
    use std::io::Cursor;
    use strudel_ml::ForestConfig;

    fn fitted() -> Strudel {
        let corpus = tiny_corpus(8);
        let config = StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(15, 1),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(15, 2),
            ..StrudelCellConfig::default()
        };
        Strudel::fit(&corpus.files, &config)
    }

    const VERBOSE: &str = "Report on crime,,\nState,2019,2020\nBerlin,14,28\nHamburg,15,29\nTotal,29,57\nSource: police,,\n";

    fn run_stream(
        model: &Strudel,
        bytes: &[u8],
        config: StreamConfig,
        chunk: usize,
    ) -> Result<(StreamSummary, Vec<StreamWindow>), StrudelError> {
        let mut c = StreamClassifier::new(model, config);
        let mut windows = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            c.push(piece)?;
            windows.extend(c.drain_windows());
        }
        let summary = c.finish()?;
        windows.extend(c.drain_windows());
        Ok((summary, windows))
    }

    #[test]
    fn single_window_stream_is_byte_identical_to_whole_file() {
        let model = fitted();
        // BOM + CRLF + quoted newline: the awkward cases all at once.
        let bom = "\u{FEFF}Report,,\r\nState,2019,2020\r\n\"Ber\nlin\",1,2\r\nTotal,1,2\r\n";
        for text in [VERBOSE, bom, "", "a,b\nc,d"] {
            let whole = model
                .try_detect_structure_bytes(text.as_bytes(), &Limits::standard())
                .unwrap();
            for chunk in [1, 3, 7, 64, text.len().max(1)] {
                let (summary, windows) =
                    run_stream(&model, text.as_bytes(), StreamConfig::default(), chunk).unwrap();
                assert_eq!(summary.n_windows, 1);
                assert_eq!(summary.total_bytes, text.len() as u64);
                assert_eq!(windows.len(), 1);
                assert_eq!(stream_to_json(&windows), whole.to_json(), "chunk={chunk}");
                assert_eq!(windows[0].structure.to_json(), whole.to_json());
                assert_eq!(windows[0].tables, to_relational(&whole));
            }
        }
    }

    #[test]
    fn stream_to_json_single_window_equals_structure_to_json() {
        let model = fitted();
        let (_, windows) =
            run_stream(&model, VERBOSE.as_bytes(), StreamConfig::default(), 16).unwrap();
        assert_eq!(stream_to_json(&windows), windows[0].structure.to_json());
    }

    /// Each table of [`multi_table_text`] is 12 records (including its
    /// trailing blank), so a soft cap of 8 rows makes every window
    /// closable mid-table and actually closed at the next blank — one
    /// table per window, with the hard cap (16 rows) never reached.
    fn small_windows() -> StreamConfig {
        StreamConfig {
            window_rows: 8,
            window_bytes: 1 << 20,
            prefix_bytes: 32,
            ..StreamConfig::default()
        }
    }

    fn multi_table_text() -> String {
        let mut text = String::new();
        for t in 0..6 {
            text.push_str(&format!("Table {t} about crime,,\n"));
            text.push_str("State,2019,2020\n");
            for r in 0..8 {
                text.push_str(&format!("City{r},{},{}\n", r + t, r * 2 + t));
            }
            text.push_str("Total,29,57\n\n");
        }
        text
    }

    #[test]
    fn multi_window_output_is_chunk_invariant_and_matches_per_window_oracle() {
        let model = fitted();
        let text = multi_table_text();
        let (summary, windows) =
            run_stream(&model, text.as_bytes(), small_windows(), text.len()).unwrap();
        assert!(summary.n_windows > 1, "fixture must span several windows");
        assert_eq!(summary.n_windows, windows.len());
        assert_eq!(summary.total_bytes, text.len() as u64);
        assert_eq!(
            windows.last().unwrap().end_byte,
            text.len() as u64,
            "windows must tile the whole stream"
        );

        // Chunk invariance: byte-level feeding must not change anything.
        let reference = stream_to_json(&windows);
        for chunk in [1, 2, 5, 13, 100] {
            let (s2, w2) = run_stream(&model, text.as_bytes(), small_windows(), chunk).unwrap();
            assert_eq!(s2, summary, "chunk={chunk}");
            assert_eq!(stream_to_json(&w2), reference, "chunk={chunk}");
            let bounds: Vec<(u64, u64)> = w2.iter().map(|w| (w.start_byte, w.end_byte)).collect();
            let want: Vec<(u64, u64)> =
                windows.iter().map(|w| (w.start_byte, w.end_byte)).collect();
            assert_eq!(bounds, want, "chunk={chunk}");
        }

        // Leg C of the differential harness: every window equals the
        // per-window oracle re-run on its slice of the original text.
        let mut next_start = 0u64;
        let mut next_row = 0usize;
        for w in &windows {
            assert_eq!(w.start_byte, next_start);
            assert_eq!(w.first_row, next_row);
            let slice = &text[w.start_byte as usize..w.end_byte as usize];
            let oracle = model
                .try_detect_structure_with_dialect(
                    slice,
                    &summary.dialect,
                    &Limits::standard(),
                    Deadline::none(),
                    0,
                    &mut crate::metrics::NullMetrics,
                )
                .unwrap();
            assert_eq!(w.structure.to_json(), oracle.to_json());
            assert_eq!(w.tables, to_relational(&oracle));
            next_start = w.end_byte;
            next_row += w.structure.table.n_rows();
        }
    }

    #[test]
    fn windows_prefer_blank_line_boundaries() {
        let model = fitted();
        let text = multi_table_text();
        let (_, windows) = run_stream(&model, text.as_bytes(), small_windows(), 17).unwrap();
        // Every window but the last must end right after a blank record
        // (the '\n\n' table boundary) because the fixture's tables are
        // well under the hard cap.
        for w in &windows[..windows.len() - 1] {
            let end = w.end_byte as usize;
            assert_eq!(&text[end - 2..end], "\n\n", "window {} end", w.index);
        }
    }

    #[test]
    fn max_total_bytes_caps_the_stream_in_both_phases() {
        let model = fitted();
        // Single-window (whole-file fallback) path.
        let config = StreamConfig {
            max_total_bytes: Some(10),
            ..StreamConfig::default()
        };
        let err = run_stream(&model, VERBOSE.as_bytes(), config, 16).unwrap_err();
        assert_eq!(
            err,
            StrudelError::limit(LimitKind::InputBytes, VERBOSE.len() as u64, 10)
        );

        // Multi-window path: the cap fires at the first record boundary
        // past the cap, with `actual` = bytes up to that boundary.
        let text = multi_table_text();
        let config = StreamConfig {
            max_total_bytes: Some(200),
            ..small_windows()
        };
        let err = run_stream(&model, text.as_bytes(), config, 16).unwrap_err();
        match err {
            StrudelError::LimitExceeded {
                limit: LimitKind::InputBytes,
                actual,
                max: 200,
                ..
            } => {
                assert!(actual > 200);
                // `actual` is a record boundary of the stream.
                assert_eq!(text.as_bytes()[actual as usize - 1], b'\n');
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn per_window_input_cap_replaces_whole_file_semantics_in_multi_window_mode() {
        let model = fitted();
        let text = multi_table_text();
        // Far smaller than the stream but big enough for the fallback
        // threshold: with small windows each window still exceeds it.
        let config = StreamConfig {
            limits: Limits {
                max_input_bytes: Some(40),
                ..Limits::standard()
            },
            ..small_windows()
        };
        let err = run_stream(&model, text.as_bytes(), config, 16).unwrap_err();
        match err {
            StrudelError::LimitExceeded {
                limit: LimitKind::InputBytes,
                actual,
                max: 40,
                ..
            } => assert!(
                actual > 40 && actual < text.len() as u64,
                "cap must apply to one window, not the stream (actual={actual})"
            ),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn errors_poison_the_classifier() {
        let model = fitted();
        let mut c = StreamClassifier::new(
            &model,
            StreamConfig {
                max_total_bytes: Some(3),
                ..StreamConfig::default()
            },
        );
        c.push(b"a,b\n").unwrap();
        assert!(c.finish().is_err());
        let again = c.push(b"x").unwrap_err();
        assert_eq!(again.category(), "internal");
    }

    #[test]
    fn decode_error_payload_matches_whole_file() {
        let model = fitted();
        let bad = b"a,b\nc,\xFFd\n";
        let whole = model
            .try_detect_structure_bytes(bad, &Limits::standard())
            .unwrap_err();
        for chunk in [1, 2, 3, bad.len()] {
            let err = run_stream(&model, bad, StreamConfig::default(), chunk).unwrap_err();
            assert_eq!(err, whole, "chunk={chunk}");
        }
    }

    /// The dialect-hoist pin: a streamed input runs dialect detection
    /// exactly once, whether the prefix detector fired (single- or
    /// multi-window) or the single-window fallback detected it.
    #[test]
    fn streamed_input_detects_dialect_exactly_once() {
        let model = fitted();
        let text = multi_table_text();

        // Prefix fired, stream stayed single-window: the fallback must
        // reuse the prefix result instead of re-detecting.
        let config = StreamConfig {
            prefix_bytes: 32,
            ..StreamConfig::default()
        };
        let (summary, windows) = run_stream(&model, text.as_bytes(), config, 16).unwrap();
        assert_eq!(summary.n_windows, 1);
        let mut c = StreamClassifier::new(
            &model,
            StreamConfig {
                prefix_bytes: 32,
                ..StreamConfig::default()
            },
        );
        c.push(text.as_bytes()).unwrap();
        c.finish().unwrap();
        assert_eq!(c.timings().count(Stage::Dialect), 1);
        // The hoisted dialect agrees with whole-file detection, so the
        // output is unchanged by the reuse.
        let whole = model
            .try_detect_structure_bytes(text.as_bytes(), &Limits::standard())
            .unwrap();
        assert_eq!(stream_to_json(&windows), whole.to_json());

        // Prefix fired, multi-window: still exactly one detection.
        let mut c = StreamClassifier::new(&model, small_windows());
        c.push(text.as_bytes()).unwrap();
        c.finish().unwrap();
        assert!(c.timings().stream_windows() > 1);
        assert_eq!(c.timings().count(Stage::Dialect), 1);

        // Prefix never filled (default 64 KiB): the whole-file fallback
        // is the single detection.
        let mut c = StreamClassifier::new(&model, StreamConfig::default());
        c.push(VERBOSE.as_bytes()).unwrap();
        c.finish().unwrap();
        assert_eq!(c.timings().count(Stage::Dialect), 1);
    }

    /// `capture_text` retains each window's exact post-BOM text; off by
    /// default the field stays empty.
    #[test]
    fn capture_text_retains_window_slices() {
        let model = fitted();
        let text = multi_table_text();
        let config = StreamConfig {
            capture_text: true,
            ..small_windows()
        };
        let (_, windows) = run_stream(&model, text.as_bytes(), config, 64).unwrap();
        assert!(windows.len() > 1);
        let joined: String = windows.iter().map(|w| w.text.as_str()).collect();
        assert_eq!(joined, text, "captured texts must tile the stream");
        for w in &windows {
            assert_eq!(
                w.text,
                &text[w.start_byte as usize..w.end_byte as usize],
                "window {}",
                w.index
            );
        }
        let (_, plain) = run_stream(&model, text.as_bytes(), small_windows(), 64).unwrap();
        assert!(plain.iter().all(|w| w.text.is_empty()));

        // Single-window fallback captures too.
        let config = StreamConfig {
            capture_text: true,
            ..StreamConfig::default()
        };
        let (_, one) = run_stream(&model, VERBOSE.as_bytes(), config, 16).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].text, VERBOSE);
    }

    #[test]
    fn classify_reader_streams_a_reader_end_to_end() {
        let model = fitted();
        let text = multi_table_text();
        let mut windows = Vec::new();
        let (summary, timings) = classify_reader(
            &model,
            &mut Cursor::new(text.as_bytes()),
            small_windows(),
            &mut |w| windows.push(w),
        )
        .unwrap();
        assert_eq!(summary.n_windows, windows.len());
        assert_eq!(timings.stream_windows(), windows.len() as u64);
        assert_eq!(timings.count(Stage::Stream), 1);
        let (_, direct) = run_stream(&model, text.as_bytes(), small_windows(), 1024).unwrap();
        assert_eq!(stream_to_json(&windows), stream_to_json(&direct));
    }
}
