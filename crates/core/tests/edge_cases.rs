//! Edge-case integration tests of the feature extractors, algorithms,
//! and classifiers on degenerate and adversarial tables.

use strudel::baselines::{CrfLine, CrfLineConfig, PytheasConfig, PytheasLine};
use strudel::{
    block_sizes, detect_derived_cells, extract_cell_features, extract_line_features,
    has_aggregation_keyword, CellFeatureConfig, DerivedConfig, LineFeatureConfig, Strudel,
    StrudelCellConfig, StrudelLineConfig, N_CELL_FEATURES,
};
use strudel_datagen::{saus, GeneratorConfig};
use strudel_ml::ForestConfig;
use strudel_table::{ElementClass, Table};

fn small_model() -> Strudel {
    let corpus = saus(&GeneratorConfig {
        n_files: 12,
        seed: 5,
        scale: 0.2,
    });
    Strudel::fit(
        &corpus.files,
        &StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(10, 0),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(10, 1),
            ..StrudelCellConfig::default()
        },
    )
}

#[test]
fn single_cell_table_features() {
    let t = Table::from_rows(vec![vec!["42"]]);
    let lf = extract_line_features(&t, &LineFeatureConfig::default());
    assert_eq!(lf.len(), 1);
    assert!(lf[0].iter().all(|v| v.is_finite()));
    let cf = extract_cell_features(&t, &[vec![1.0 / 6.0; 6]], &CellFeatureConfig::default());
    assert_eq!(cf.len(), 1);
    assert_eq!(cf[0].features.len(), N_CELL_FEATURES);
    // All eight neighbours are beyond the margin.
    for j in 20..36 {
        assert_eq!(cf[0].features[j], -1.0);
    }
}

#[test]
fn single_row_table_has_no_vertical_context() {
    let t = Table::from_rows(vec![vec!["a", "1", "2"]]);
    let lf = extract_line_features(&t, &LineFeatureConfig::default());
    let names = LineFeatureConfig::default().feature_names();
    let idx = |n: &str| names.iter().position(|&x| x == n).unwrap();
    assert_eq!(lf[0][idx("DataTypeMatchingAbove")], 0.0);
    assert_eq!(lf[0][idx("DataTypeMatchingBelow")], 0.0);
    assert_eq!(lf[0][idx("CellLengthDifferenceAbove")], 1.0);
    assert_eq!(lf[0][idx("EmptyNeighboringLinesAbove")], 1.0);
    assert_eq!(lf[0][idx("LinePosition")], 0.0);
}

#[test]
fn anchorless_derived_column_evades_algorithm2() {
    // A genuine aggregate column whose header carries no keyword: the
    // published algorithm finds no anchor — the CIUS failure mode that
    // costs Strudel^C two thirds of CIUS derived cells (Section 6.3.2).
    let t = Table::from_rows(vec![
        vec!["", "A", "B", "Combined"],
        vec!["x", "1", "2", "3"],
        vec!["y", "4", "5", "9"],
    ]);
    let derived = detect_derived_cells(&t, &DerivedConfig::default());
    assert!(derived.iter().all(|row| row.iter().all(|&v| !v)));
}

#[test]
fn keyword_headed_data_column_is_not_detected_as_derived() {
    // A rightmost data column headed "Total crime": the keyword anchors
    // the column, but the values match no aggregate of their neighbours,
    // so arithmetic verification rejects it.
    let t = Table::from_rows(vec![
        vec!["", "Rate 1", "Total crime"],
        vec!["x", "17", "803"],
        vec!["y", "23", "4099"],
        vec!["z", "11", "57"],
    ]);
    let derived = detect_derived_cells(&t, &DerivedConfig::default());
    for (r, row) in derived.iter().enumerate().skip(1) {
        assert!(!row[2], "row {r} wrongly detected");
    }
}

#[test]
fn wide_flat_table_blocks() {
    let t = Table::from_rows(vec![vec!["a"; 50]]);
    let bs = block_sizes(&t);
    assert!(bs[0].iter().all(|&v| (v - 1.0).abs() < 1e-12));
}

#[test]
fn deep_narrow_table_blocks_do_not_overflow_stack() {
    // 20k-cell single column — the iterative flood fill must not recurse.
    let rows: Vec<Vec<String>> = (0..20_000).map(|i| vec![i.to_string()]).collect();
    let t = Table::from_rows(rows);
    let bs = block_sizes(&t);
    assert!((bs[0][0] - 1.0).abs() < 1e-12);
    assert!((bs[19_999][0] - 1.0).abs() < 1e-12);
}

#[test]
fn pipeline_handles_degenerate_inputs() {
    let model = small_model();
    // Empty text.
    let s = model.detect_structure("");
    assert!(s.lines.is_empty());
    assert!(s.cells.is_empty());
    assert!(s.data_rows().is_empty());
    assert!(s.header_row().is_none());
    // Whitespace-only lines.
    let s = model.detect_structure(",,\n,,\n");
    assert!(s.lines.iter().all(Option::is_none));
    // A single value.
    let s = model.detect_structure("lonely");
    assert_eq!(s.lines.len(), 1);
    assert!(s.lines[0].is_some());
}

#[test]
fn crf_baseline_single_line_file() {
    let corpus = saus(&GeneratorConfig {
        n_files: 8,
        seed: 9,
        scale: 0.2,
    });
    let model = CrfLine::fit(&corpus.files, &CrfLineConfig::default());
    let t = Table::from_rows(vec![vec!["only one line", "5"]]);
    let pred = model.predict(&t);
    assert_eq!(pred.len(), 1);
    assert!(pred[0].is_some());
}

#[test]
fn pytheas_all_numeric_file_is_one_table() {
    let corpus = saus(&GeneratorConfig {
        n_files: 8,
        seed: 13,
        scale: 0.2,
    });
    let model = PytheasLine::fit(&corpus.files, &PytheasConfig::default());
    let t = Table::from_rows(vec![
        vec!["1", "2", "3"],
        vec!["4", "5", "6"],
        vec!["7", "8", "9"],
    ]);
    let pred = model.predict(&t);
    assert!(pred.iter().all(|p| *p == Some(ElementClass::Data)));
}

#[test]
fn keyword_dictionary_matches_paper() {
    // The exact dictionary of Section 4.
    for kw in ["total", "all", "sum", "average", "avg", "mean", "median"] {
        assert!(has_aggregation_keyword(kw));
    }
    assert_eq!(strudel::AGGREGATION_KEYWORDS.len(), 7);
}

#[test]
fn unicode_content_is_handled() {
    let t = Table::from_rows(vec![
        vec!["Überschrift, Größe", ""],
        vec!["Köln", "1,204"],
        vec!["Москва́", "998"],
    ]);
    let lf = extract_line_features(&t, &LineFeatureConfig::default());
    assert!(lf.iter().flatten().all(|v| v.is_finite()));
    let model = small_model();
    // Round-trip through quoted CSV keeps the comma-bearing title intact.
    let s = model.detect_structure(&t.to_delimited(','));
    assert_eq!(s.cells.len(), t.non_empty_count());
}
