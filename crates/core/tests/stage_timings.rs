//! Locks the [`StageTimings`] serialization contract that `strudel
//! serve` exposes through `/metrics`: the Prometheus text rendering
//! (metric names, label set, monotonicity) and the algebra of
//! [`StageTimings::merge`] (commutative, order-independent), which is
//! what makes concurrent per-worker accumulators safe to fold in any
//! completion order.

use proptest::prelude::*;
use std::time::Duration;
use strudel::{Metrics, Stage, StageTimings};

#[test]
fn prometheus_rendering_locks_names_and_labels() {
    let mut timings = StageTimings::default();
    timings.record(Stage::Dialect, Duration::from_millis(1));
    timings.record(Stage::Parse, Duration::from_millis(12));
    timings.record(Stage::Parse, Duration::from_millis(8));
    let text = timings.to_prometheus("strudel");

    // Both families are declared as counters.
    assert!(text.contains("# TYPE strudel_stage_seconds_total counter"));
    assert!(text.contains("# TYPE strudel_stage_observations_total counter"));
    // Every stage appears in both families with the stage label.
    for stage in Stage::ALL {
        assert!(
            text.contains(&format!(
                "strudel_stage_seconds_total{{stage=\"{}\"}}",
                stage.name()
            )),
            "missing seconds sample for {}:\n{text}",
            stage.name()
        );
        assert!(
            text.contains(&format!(
                "strudel_stage_observations_total{{stage=\"{}\"}}",
                stage.name()
            )),
            "missing observations sample for {}:\n{text}",
            stage.name()
        );
    }
    // Exact values for the recorded stages; untouched stages are zero.
    assert!(text.contains("strudel_stage_seconds_total{stage=\"parse\"} 0.020000000"));
    assert!(text.contains("strudel_stage_observations_total{stage=\"parse\"} 2"));
    assert!(text.contains("strudel_stage_observations_total{stage=\"dialect\"} 1"));
    assert!(text.contains("strudel_stage_seconds_total{stage=\"cell_classify\"} 0.000000000"));
    // The prefix is honored verbatim.
    let other = timings.to_prometheus("svc");
    assert!(other.contains("svc_stage_seconds_total{stage=\"parse\"}"));
    assert!(!other.contains("strudel_"));
}

/// Pull the rendered sample values back out, in `Stage::ALL` order.
fn sample_values(text: &str, family: &str) -> Vec<f64> {
    Stage::ALL
        .iter()
        .map(|s| {
            let needle = format!("{family}{{stage=\"{}\"}} ", s.name());
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("no sample {needle} in:\n{text}"));
            line[needle.len()..].parse().unwrap()
        })
        .collect()
}

#[test]
fn prometheus_counters_are_monotone_under_recording() {
    let mut timings = StageTimings::default();
    let mut previous_seconds = vec![0.0; Stage::ALL.len()];
    let mut previous_counts = vec![0.0; Stage::ALL.len()];
    for round in 0..4 {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            if (round + i) % 2 == 0 {
                timings.record(stage, Duration::from_micros(100 * (i as u64 + 1)));
            }
        }
        let text = timings.to_prometheus("strudel");
        let seconds = sample_values(&text, "strudel_stage_seconds_total");
        let counts = sample_values(&text, "strudel_stage_observations_total");
        for i in 0..Stage::ALL.len() {
            assert!(
                seconds[i] >= previous_seconds[i],
                "seconds regressed for stage {i} in round {round}"
            );
            assert!(
                counts[i] >= previous_counts[i],
                "count regressed for stage {i} in round {round}"
            );
        }
        previous_seconds = seconds;
        previous_counts = counts;
    }
}

/// An arbitrary observation stream. Each `u64` encodes one observation:
/// the stage index is `v % 6`, the duration is `v / 6 + 1` microseconds
/// (the vendored proptest shim has no tuple strategies). Every seventh
/// value additionally records a parse-chunk count so the merge algebra
/// covers the chunk counter too.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..50_000, 0..40)
}

fn accumulate(observations: &[u64]) -> StageTimings {
    let mut t = StageTimings::default();
    for &v in observations {
        t.record(
            Stage::ALL[(v % 6) as usize],
            Duration::from_micros(v / 6 + 1),
        );
        if v % 7 == 0 {
            t.record_parse_chunks(v % 16 + 1);
        }
    }
    t
}

proptest! {
    #[test]
    fn merge_is_commutative(a in observations(), b in observations()) {
        let (ta, tb) = (accumulate(&a), accumulate(&b));
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_order_independent(
        all in observations(),
        cut_a in 0usize..=40,
        cut_b in 0usize..=40,
    ) {
        // Partition one observation stream into three per-worker
        // accumulators at arbitrary points, then fold them in two
        // different completion orders: the aggregate must not depend on
        // which worker finished first — exactly the property the batch
        // engine and the serve registry rely on.
        let cut_a = cut_a.min(all.len());
        let cut_b = cut_b.clamp(cut_a, all.len());
        let parts = [
            accumulate(&all[..cut_a]),
            accumulate(&all[cut_a..cut_b]),
            accumulate(&all[cut_b..]),
        ];
        let mut forward = StageTimings::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut reverse = StageTimings::default();
        for p in parts.iter().rev() {
            reverse.merge(p);
        }
        prop_assert_eq!(&forward, &reverse);
        // And folding the partition equals accumulating the whole
        // stream sequentially.
        prop_assert_eq!(&forward, &accumulate(&all));
    }
}
