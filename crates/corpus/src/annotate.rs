//! Multi-annotator label aggregation, reproducing the paper's GovUK
//! annotation protocol (Section 6.1.1): each line of each file was
//! annotated by three experts; disagreements (≈1 % of lines) were
//! resolved by majority vote, and the rare complete disagreements
//! (< 250 lines) went to an independent fourth annotator.

use strudel_table::{CellLabels, ElementClass};

/// Outcome statistics of an aggregation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgreementStats {
    /// Cells where all annotators agreed.
    pub unanimous: usize,
    /// Cells resolved by strict majority.
    pub majority_resolved: usize,
    /// Cells with complete disagreement, deferred to the referee.
    pub referee_resolved: usize,
}

impl AgreementStats {
    /// Total annotated cells.
    pub fn total(&self) -> usize {
        self.unanimous + self.majority_resolved + self.referee_resolved
    }

    /// Share of cells with any disagreement (the paper reports ≈1 % on
    /// lines for GovUK).
    pub fn disagreement_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.majority_resolved + self.referee_resolved) as f64 / total as f64
        }
    }
}

/// Merge the cell-label grids of several annotators.
///
/// Per cell: unanimous labels pass through; a strict majority wins
/// otherwise; on complete disagreement the `referee` closure decides
/// among the proposed labels (the paper's fourth annotator, who "picked
/// which one of the three answers to apply" — the referee must return
/// one of the proposals).
///
/// # Panics
/// Panics when fewer than two annotators are given, grids have
/// mismatched shapes, annotators disagree about which cells are empty,
/// or the referee returns a label nobody proposed.
pub fn merge_annotations<F>(
    annotators: &[CellLabels],
    mut referee: F,
) -> (CellLabels, AgreementStats)
where
    F: FnMut(usize, usize, &[ElementClass]) -> ElementClass,
{
    assert!(annotators.len() >= 2, "need at least two annotators");
    let shape: Vec<usize> = annotators[0].iter().map(Vec::len).collect();
    for grid in annotators {
        assert_eq!(grid.len(), annotators[0].len(), "row count mismatch");
        for (row, &width) in grid.iter().zip(&shape) {
            assert_eq!(row.len(), width, "row width mismatch");
        }
    }

    let mut stats = AgreementStats::default();
    let merged: CellLabels = (0..annotators[0].len())
        .map(|r| {
            (0..shape[r])
                .map(|c| {
                    let votes: Vec<Option<ElementClass>> =
                        annotators.iter().map(|g| g[r][c]).collect();
                    let empties = votes.iter().filter(|v| v.is_none()).count();
                    assert!(
                        empties == 0 || empties == votes.len(),
                        "annotators disagree on emptiness at ({r}, {c})"
                    );
                    if empties == votes.len() {
                        return None;
                    }
                    let labels: Vec<ElementClass> =
                        votes.into_iter().map(|v| v.expect("non-empty")).collect();
                    let mut counts = [0usize; ElementClass::COUNT];
                    for l in &labels {
                        counts[l.index()] += 1;
                    }
                    let max = *counts.iter().max().expect("six classes");
                    if max == labels.len() {
                        stats.unanimous += 1;
                        Some(labels[0])
                    } else if max * 2 > labels.len() {
                        stats.majority_resolved += 1;
                        Some(ElementClass::from_index(
                            (0..ElementClass::COUNT)
                                .find(|&i| counts[i] == max)
                                .expect("majority exists"),
                        ))
                    } else {
                        let choice = referee(r, c, &labels);
                        assert!(
                            labels.contains(&choice),
                            "referee must pick one of the proposed labels"
                        );
                        stats.referee_resolved += 1;
                        Some(choice)
                    }
                })
                .collect()
        })
        .collect();
    (merged, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ElementClass::*;

    fn grid(labels: Vec<Vec<Option<ElementClass>>>) -> CellLabels {
        labels
    }

    #[test]
    fn unanimous_passes_through() {
        let a = grid(vec![vec![Some(Data), Some(Header)]]);
        let (merged, stats) = merge_annotations(&[a.clone(), a.clone(), a.clone()], |_, _, _| {
            panic!("no referee needed")
        });
        assert_eq!(merged[0][0], Some(Data));
        assert_eq!(stats.unanimous, 2);
        assert_eq!(stats.disagreement_rate(), 0.0);
    }

    #[test]
    fn majority_wins() {
        let a = grid(vec![vec![Some(Data)]]);
        let b = grid(vec![vec![Some(Data)]]);
        let c = grid(vec![vec![Some(Derived)]]);
        let (merged, stats) = merge_annotations(&[a, b, c], |_, _, _| panic!("no referee needed"));
        assert_eq!(merged[0][0], Some(Data));
        assert_eq!(stats.majority_resolved, 1);
    }

    #[test]
    fn complete_disagreement_goes_to_referee() {
        let a = grid(vec![vec![Some(Data)]]);
        let b = grid(vec![vec![Some(Derived)]]);
        let c = grid(vec![vec![Some(Group)]]);
        let (merged, stats) = merge_annotations(&[a, b, c], |r, col, proposals| {
            assert_eq!((r, col), (0, 0));
            assert_eq!(proposals.len(), 3);
            Derived
        });
        assert_eq!(merged[0][0], Some(Derived));
        assert_eq!(stats.referee_resolved, 1);
        assert!((stats.disagreement_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cells_stay_empty() {
        let a = grid(vec![vec![None, Some(Data)]]);
        let (merged, stats) = merge_annotations(&[a.clone(), a], |_, _, _| panic!("no referee"));
        assert_eq!(merged[0][0], None);
        assert_eq!(stats.total(), 1);
    }

    #[test]
    #[should_panic(expected = "disagree on emptiness")]
    fn emptiness_disagreement_panics() {
        let a = grid(vec![vec![None]]);
        let b = grid(vec![vec![Some(Data)]]);
        let _ = merge_annotations(&[a, b], |_, _, _| Data);
    }

    #[test]
    #[should_panic(expected = "referee must pick")]
    fn rogue_referee_panics() {
        let a = grid(vec![vec![Some(Data)]]);
        let b = grid(vec![vec![Some(Derived)]]);
        let _ = merge_annotations(&[a, b], |_, _, _| Notes);
    }

    #[test]
    #[should_panic(expected = "at least two annotators")]
    fn single_annotator_panics() {
        let a = grid(vec![vec![Some(Data)]]);
        let _ = merge_annotations(&[a], |_, _, _| Data);
    }

    #[test]
    fn two_annotator_tie_is_complete_disagreement() {
        let a = grid(vec![vec![Some(Data)]]);
        let b = grid(vec![vec![Some(Derived)]]);
        let (merged, stats) = merge_annotations(&[a, b], |_, _, proposals| proposals[0]);
        assert_eq!(merged[0][0], Some(Data));
        assert_eq!(stats.referee_resolved, 1);
    }
}
