//! # strudel-corpus
//!
//! The on-disk annotated corpus format of the Strudel reproduction.
//!
//! An annotated corpus is a directory of CSV files, each accompanied by
//! a `<file>.labels` sidecar carrying one row of cell-class symbols per
//! CSV record:
//!
//! ```text
//! #strudel-labels v1
//! m . .
//! h h h
//! d d d
//! g v v
//! n . .
//! ```
//!
//! Symbols: `m`etadata, `h`eader, `g`roup, `d`ata, deri`v`ed, `n`otes,
//! and `.` for empty (unlabeled) cells. Missing trailing symbols pad to
//! `.`; an entirely blank sidecar row marks an empty CSV line. Line
//! labels are derived from cell labels by majority, exactly as the
//! paper's Figure 1 convention.
//!
//! ```
//! use strudel_corpus::{parse_labels, render_labels};
//! use strudel_table::{ElementClass, Table};
//!
//! let table = Table::from_rows(vec![vec!["Name", "Score"], vec!["alice", "3"]]);
//! let text = "#strudel-labels v1\nh h\nd d\n";
//! let labels = parse_labels(text, &table).unwrap();
//! assert_eq!(labels[0][0], Some(ElementClass::Header));
//! assert_eq!(render_labels(&labels), text.split_once('\n').unwrap().1);
//! ```

#![warn(missing_docs)]

mod annotate;

pub use annotate::{merge_annotations, AgreementStats};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use strudel_dialect::{parse, Dialect};
use strudel_table::{CellLabels, Corpus, ElementClass, LabeledFile, Table};

/// Header line opening every sidecar file.
pub const LABELS_HEADER: &str = "#strudel-labels v1";
/// Extension of sidecar files (appended to the CSV file name).
pub const LABELS_EXT: &str = "labels";

/// Errors produced when reading or writing corpora.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A sidecar file is malformed.
    BadLabels {
        /// Path of the offending sidecar.
        path: PathBuf,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus I/O error: {e}"),
            CorpusError::BadLabels { path, reason } => {
                write!(f, "bad labels file {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

fn class_symbol(class: ElementClass) -> char {
    match class {
        ElementClass::Metadata => 'm',
        ElementClass::Header => 'h',
        ElementClass::Group => 'g',
        ElementClass::Data => 'd',
        ElementClass::Derived => 'v',
        ElementClass::Notes => 'n',
    }
}

fn symbol_class(sym: &str) -> Result<Option<ElementClass>, String> {
    match sym {
        "." => Ok(None),
        "m" => Ok(Some(ElementClass::Metadata)),
        "h" => Ok(Some(ElementClass::Header)),
        "g" => Ok(Some(ElementClass::Group)),
        "d" => Ok(Some(ElementClass::Data)),
        "v" => Ok(Some(ElementClass::Derived)),
        "n" => Ok(Some(ElementClass::Notes)),
        other => Err(format!("unknown label symbol {other:?}")),
    }
}

/// Render a cell-label grid as sidecar text (without the header line).
pub fn render_labels(labels: &CellLabels) -> String {
    let mut out = String::new();
    for row in labels {
        let symbols: Vec<String> = row
            .iter()
            .map(|l| l.map_or(".".to_string(), |c| class_symbol(c).to_string()))
            .collect();
        out.push_str(&symbols.join(" "));
        out.push('\n');
    }
    out
}

/// Parse sidecar text against the table it annotates. The `#strudel-labels`
/// header line is optional; rows shorter than the table pad with `.`.
pub fn parse_labels(text: &str, table: &Table) -> Result<CellLabels, String> {
    let mut rows: Vec<&str> = text.lines().collect();
    if rows
        .first()
        .is_some_and(|l| l.starts_with("#strudel-labels"))
    {
        rows.remove(0);
    }
    // Allow a missing trailing blank row.
    while rows.len() > table.n_rows() && rows.last().is_some_and(|l| l.trim().is_empty()) {
        rows.pop();
    }
    if rows.len() != table.n_rows() {
        return Err(format!(
            "label rows ({}) do not match CSV records ({})",
            rows.len(),
            table.n_rows()
        ));
    }
    let mut out: CellLabels = Vec::with_capacity(table.n_rows());
    for (r, line) in rows.iter().enumerate() {
        let mut row: Vec<Option<ElementClass>> = Vec::with_capacity(table.n_cols());
        for sym in line.split_whitespace() {
            if row.len() >= table.n_cols() {
                return Err(format!("row {r} has more labels than table columns"));
            }
            row.push(symbol_class(sym)?);
        }
        row.resize(table.n_cols(), None);
        // Consistency: labels on empty cells / unlabeled non-empty cells
        // are downgraded or rejected.
        for (c, slot) in row.iter_mut().enumerate() {
            let empty = table.cell(r, c).is_empty();
            if empty && slot.is_some() {
                return Err(format!("row {r}, column {c}: label on an empty cell"));
            }
            if !empty && slot.is_none() {
                return Err(format!(
                    "row {r}, column {c}: non-empty cell {:?} lacks a label",
                    table.cell(r, c).raw()
                ));
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// Save one labeled file: `<dir>/<name>` (CSV) plus `<name>.labels`.
pub fn save_file(dir: &Path, file: &LabeledFile) -> Result<(), CorpusError> {
    fs::create_dir_all(dir)?;
    let csv_path = dir.join(&file.name);
    if let Some(parent) = csv_path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(&csv_path, file.table.to_delimited(','))?;
    let mut sidecar = String::from(LABELS_HEADER);
    sidecar.push('\n');
    sidecar.push_str(&render_labels(&file.cell_labels));
    fs::write(labels_path(&csv_path), sidecar)?;
    Ok(())
}

/// Sidecar path of a CSV path (`x.csv` → `x.csv.labels`).
pub fn labels_path(csv_path: &Path) -> PathBuf {
    let mut os = csv_path.as_os_str().to_os_string();
    os.push(".");
    os.push(LABELS_EXT);
    PathBuf::from(os)
}

/// Load one labeled file from its CSV path (the sidecar must exist).
/// The CSV is parsed with the RFC 4180 dialect, matching [`save_file`].
pub fn load_file(csv_path: &Path) -> Result<LabeledFile, CorpusError> {
    let text = fs::read_to_string(csv_path)?;
    let table = Table::from_rows(parse(&text, &Dialect::rfc4180()));
    let sidecar_path = labels_path(csv_path);
    let sidecar = fs::read_to_string(&sidecar_path)?;
    let cell_labels = parse_labels(&sidecar, &table).map_err(|reason| CorpusError::BadLabels {
        path: sidecar_path,
        reason,
    })?;
    let line_labels = LabeledFile::line_labels_from_cells(&table, &cell_labels);
    let name = csv_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed.csv".to_string());
    Ok(LabeledFile::new(name, table, line_labels, cell_labels))
}

/// Save a whole corpus into a directory.
pub fn save_corpus(dir: &Path, corpus: &Corpus) -> Result<(), CorpusError> {
    for file in &corpus.files {
        save_file(dir, file)?;
    }
    Ok(())
}

/// Load every annotated CSV file (those with a `.labels` sidecar) of a
/// directory, sorted by name for determinism.
pub fn load_corpus(dir: &Path, name: impl Into<String>) -> Result<Corpus, CorpusError> {
    let mut corpus = Corpus::new(name);
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "csv") && labels_path(p).exists())
        .collect();
    paths.sort();
    for path in paths {
        corpus.files.push(load_file(&path)?);
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_datagen::{saus, GeneratorConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("strudel-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_single_file() {
        let corpus = saus(&GeneratorConfig {
            n_files: 1,
            seed: 3,
            scale: 0.2,
        });
        let dir = temp_dir("single");
        save_file(&dir, &corpus.files[0]).unwrap();
        let loaded = load_file(&dir.join(&corpus.files[0].name)).unwrap();
        assert_eq!(loaded.table, corpus.files[0].table);
        assert_eq!(loaded.cell_labels, corpus.files[0].cell_labels);
        assert_eq!(loaded.line_labels, corpus.files[0].line_labels);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_whole_corpus() {
        let corpus = saus(&GeneratorConfig {
            n_files: 5,
            seed: 7,
            scale: 0.2,
        });
        let dir = temp_dir("corpus");
        save_corpus(&dir, &corpus).unwrap();
        let loaded = load_corpus(&dir, "SAUS").unwrap();
        assert_eq!(loaded.files.len(), 5);
        let a = corpus.stats();
        let b = loaded.stats();
        assert_eq!(a.n_lines, b.n_lines);
        assert_eq!(a.n_cells, b.n_cells);
        assert_eq!(a.lines_per_class, b.lines_per_class);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_text_roundtrip() {
        let table = Table::from_rows(vec![vec!["Title", ""], vec!["", ""], vec!["a", "1"]]);
        let labels: CellLabels = vec![
            vec![Some(ElementClass::Metadata), None],
            vec![None, None],
            vec![Some(ElementClass::Data), Some(ElementClass::Data)],
        ];
        let text = render_labels(&labels);
        let parsed = parse_labels(&text, &table).unwrap();
        assert_eq!(parsed, labels);
    }

    #[test]
    fn mismatched_row_count_rejected() {
        let table = Table::from_rows(vec![vec!["a"]]);
        let err = parse_labels("d\nd\n", &table).unwrap_err();
        assert!(err.contains("do not match"));
    }

    #[test]
    fn label_on_empty_cell_rejected() {
        let table = Table::from_rows(vec![vec!["", "x"]]);
        let err = parse_labels("d d\n", &table).unwrap_err();
        assert!(err.contains("empty cell"));
    }

    #[test]
    fn unlabeled_content_rejected() {
        let table = Table::from_rows(vec![vec!["x", "y"]]);
        let err = parse_labels("d .\n", &table).unwrap_err();
        assert!(err.contains("lacks a label"));
    }

    #[test]
    fn unknown_symbol_rejected() {
        let table = Table::from_rows(vec![vec!["x"]]);
        let err = parse_labels("q\n", &table).unwrap_err();
        assert!(err.contains("unknown label symbol"));
    }

    #[test]
    fn files_without_sidecar_are_skipped() {
        let dir = temp_dir("skip");
        fs::write(dir.join("plain.csv"), "a,b\n1,2\n").unwrap();
        let corpus = load_corpus(&dir, "X").unwrap();
        assert!(corpus.files.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quoted_content_survives_roundtrip() {
        let table = Table::from_rows(vec![vec!["say \"hi\", twice", "2"]]);
        let labels: CellLabels = vec![vec![Some(ElementClass::Data), Some(ElementClass::Data)]];
        let line_labels = LabeledFile::line_labels_from_cells(&table, &labels);
        let file = LabeledFile::new("q.csv", table, line_labels, labels);
        let dir = temp_dir("quoted");
        save_file(&dir, &file).unwrap();
        let loaded = load_file(&dir.join("q.csv")).unwrap();
        assert_eq!(loaded.table.cell(0, 0).raw(), "say \"hi\", twice");
        fs::remove_dir_all(&dir).ok();
    }
}
