//! Property tests of the on-disk corpus format: every generated corpus
//! round-trips exactly through save/load, across all six generators.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use strudel_corpus::{load_corpus, parse_labels, render_labels, save_corpus};
use strudel_datagen::{by_name, GeneratorConfig};
use strudel_table::{CellLabels, ElementClass, Table};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("strudel-corpus-prop-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated corpus survives a save/load cycle bit-exactly
    /// (tables, cell labels, derived line labels).
    #[test]
    fn generated_corpora_roundtrip(
        dataset_idx in 0usize..6,
        seed in 0u64..100,
    ) {
        let name = ["SAUS", "CIUS", "DeEx", "GovUK", "Troy", "Mendeley"][dataset_idx];
        let corpus = by_name(name, &GeneratorConfig {
            n_files: 2,
            seed,
            scale: 0.1,
        });
        let dir = temp_dir(&format!("{name}-{seed}"));
        save_corpus(&dir, &corpus).unwrap();
        let loaded = load_corpus(&dir, name).unwrap();
        fs::remove_dir_all(&dir).ok();

        prop_assert_eq!(loaded.files.len(), corpus.files.len());
        for (a, b) in corpus.files.iter().zip(&loaded.files) {
            prop_assert_eq!(&a.table, &b.table, "table mismatch in {}", a.name);
            prop_assert_eq!(&a.cell_labels, &b.cell_labels);
            prop_assert_eq!(&a.line_labels, &b.line_labels);
        }
    }

    /// Label grids of any shape render/parse back exactly.
    #[test]
    fn label_text_roundtrip(
        shape in proptest::collection::vec(0usize..7, 1..6),
    ) {
        // Build a table and consistent labels: class = (r + c) % 6 on
        // non-empty cells; a shape entry of 0 is an empty line.
        let width = shape.iter().copied().max().unwrap_or(0).max(1);
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut labels: CellLabels = Vec::new();
        for (r, &len) in shape.iter().enumerate() {
            let mut row = Vec::new();
            let mut label_row = Vec::new();
            for c in 0..width {
                if c < len {
                    row.push(format!("x{r}{c}"));
                    label_row.push(Some(ElementClass::from_index((r + c) % 6)));
                } else {
                    row.push(String::new());
                    label_row.push(None);
                }
            }
            rows.push(row);
            labels.push(label_row);
        }
        let table = Table::from_rows(rows);
        let text = render_labels(&labels);
        let parsed = parse_labels(&text, &table).unwrap();
        prop_assert_eq!(parsed, labels);
    }
}
