fn main() {
    for (files, scale) in [(8usize, 0.3f64), (20, 1.0)] {
        println!("== files {files} scale {scale} ==");
        for name in ["SAUS", "CIUS", "DeEx", "GovUK", "Troy", "Mendeley"] {
            let cfg = strudel_datagen::GeneratorConfig {
                n_files: files,
                seed: 7,
                scale,
            };
            let stats = strudel_datagen::by_name(name, &cfg).stats();
            let total: usize = stats.diversity_counts.iter().sum();
            let d1 = stats.diversity_counts[0] as f64 / total as f64;
            let d2 = stats.diversity_counts[1] as f64 / total as f64;
            let data = stats.lines_per_class[3] as f64 / stats.n_lines as f64;
            println!(
                "{name:9} lines/file {:6.1} data {:.2} d1 {:.3} d2 {:.3} lines/class {:?}",
                stats.n_lines as f64 / stats.n_files as f64,
                data,
                d1,
                d2,
                stats.lines_per_class
            );
        }
    }
}
