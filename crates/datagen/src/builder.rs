//! Row-by-row construction of annotated verbose CSV files.
//!
//! [`FileBuilder`] accumulates raw rows together with per-cell class
//! labels and produces a [`LabeledFile`] whose line labels follow the
//! majority-of-cells convention of the paper's Figure 1.

use strudel_table::{CellLabels, ElementClass, LabeledFile, Table};

/// A labeled cell value under construction.
pub type LabeledValue = (String, Option<ElementClass>);

/// Incremental builder of one annotated file.
#[derive(Debug, Default)]
pub struct FileBuilder {
    rows: Vec<Vec<LabeledValue>>,
}

impl FileBuilder {
    /// Start an empty file.
    pub fn new() -> FileBuilder {
        FileBuilder::default()
    }

    /// Append a fully custom row of labeled values.
    pub fn push_row(&mut self, row: Vec<LabeledValue>) -> &mut Self {
        self.rows.push(row);
        self
    }

    /// Append an empty separator line.
    pub fn empty_line(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Append a single-cell line with a uniform class (metadata/notes/
    /// group headers all use this shape).
    pub fn single_cell_line(&mut self, text: impl Into<String>, class: ElementClass) -> &mut Self {
        self.rows.push(vec![(text.into(), Some(class))]);
        self
    }

    /// Append a line where every non-empty cell shares one class.
    pub fn uniform_line<I, S>(&mut self, values: I, class: ElementClass) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row = values
            .into_iter()
            .map(|v| {
                let v: String = v.into();
                let label = (!v.trim().is_empty()).then_some(class);
                (v, label)
            })
            .collect();
        self.rows.push(row);
        self
    }

    /// Number of rows appended so far.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Finish the file: rows are padded to uniform width, empty cells
    /// lose their labels, and line labels are derived from cell labels.
    ///
    /// # Panics
    /// Panics when a non-empty cell carries no label or an empty cell
    /// carries one — the generators must label exactly the content they
    /// emit.
    pub fn build(self, name: impl Into<String>) -> LabeledFile {
        let width = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut raw: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        let mut labels: CellLabels = Vec::with_capacity(self.rows.len());
        for row in self.rows {
            let mut raw_row = Vec::with_capacity(width);
            let mut label_row = Vec::with_capacity(width);
            for (value, label) in row {
                let is_empty = value.trim().is_empty();
                assert_eq!(
                    is_empty,
                    label.is_none(),
                    "labels must cover exactly the non-empty cells (value {value:?})"
                );
                raw_row.push(value);
                label_row.push(label);
            }
            raw_row.resize(width, String::new());
            label_row.resize(width, None);
            raw.push(raw_row);
            labels.push(label_row);
        }
        let table = Table::from_rows(raw);
        let line_labels = LabeledFile::line_labels_from_cells(&table, &labels);
        LabeledFile::new(name, table, line_labels, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ElementClass::*;

    #[test]
    fn builds_aligned_file() {
        let mut b = FileBuilder::new();
        b.single_cell_line("Title", Metadata)
            .empty_line()
            .uniform_line(["Name", "Score"], Header)
            .uniform_line(["alice", "3"], Data);
        let f = b.build("t.csv");
        assert_eq!(f.table.n_rows(), 4);
        assert_eq!(f.table.n_cols(), 2);
        assert_eq!(f.line_labels[0], Some(Metadata));
        assert_eq!(f.line_labels[1], None);
        assert_eq!(f.cell_labels[2][1], Some(Header));
        assert_eq!(f.cell_labels[0][1], None); // padded cell
    }

    #[test]
    fn mixed_class_row_gets_majority_line_label() {
        let mut b = FileBuilder::new();
        b.push_row(vec![
            ("Total".into(), Some(Group)),
            ("5".into(), Some(Derived)),
            ("7".into(), Some(Derived)),
        ]);
        let f = b.build("t.csv");
        assert_eq!(f.line_labels[0], Some(Derived));
    }

    #[test]
    fn uniform_line_skips_empty_values() {
        let mut b = FileBuilder::new();
        b.uniform_line(["x", "", "y"], Data);
        let f = b.build("t.csv");
        assert_eq!(f.cell_labels[0][1], None);
        assert_eq!(f.cell_labels[0][2], Some(Data));
    }

    #[test]
    #[should_panic(expected = "labels must cover exactly")]
    fn unlabeled_content_panics() {
        let mut b = FileBuilder::new();
        b.push_row(vec![("x".into(), None)]);
        let _ = b.build("t.csv");
    }
}
