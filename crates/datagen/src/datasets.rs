//! The six synthetic corpora of the evaluation.
//!
//! Real GovUK/SAUS/CIUS/DeEx/Mendeley/Troy files are not redistributable
//! here, so each generator produces a seeded corpus whose knobs are fitted
//! to the statistics the paper publishes (Tables 3–5) and to the
//! qualitative traits its error analysis describes (DESIGN.md,
//! substitution 3):
//!
//! - **SAUS** — administrative tables, simple textual headers,
//!   left-cell group headers, *many anchorless derived rows*;
//! - **CIUS** — templated report files (few structural outliers), year
//!   headers, *anchorless derived columns*, wide group headers;
//! - **DeEx** — heterogeneous business sheets: stacked tables, numeric
//!   headers, note *tables*, varied group/derived shapes;
//! - **GovUK** — large heterogeneous spreadsheet exports, including
//!   derived rows floating between header and data;
//! - **Mendeley** — huge data-dominated plain-text files with prose
//!   metadata suffering the delimiter dilemma;
//! - **Troy** — small out-of-domain statistical tables whose derived rows
//!   almost never carry keywords.

use crate::builder::FileBuilder;
use crate::spec::{
    emit_table, DerivedColStyle, DerivedRowStyle, GroupStyle, HeaderStyle, TableSpec,
};
use crate::vocab::{self, pick};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strudel_table::{Corpus, ElementClass};

/// Configuration shared by all corpus generators.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Number of files to generate.
    pub n_files: usize,
    /// Master seed; file `i` derives its own RNG stream from it.
    pub seed: u64,
    /// Multiplier on per-file body sizes (1.0 ≈ the paper's per-file line
    /// counts). Experiments use < 1.0 to keep cross-validation fast.
    pub scale: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_files: 30,
            seed: 42,
            scale: 1.0,
        }
    }
}

impl GeneratorConfig {
    /// The paper-sized configuration for a dataset (file counts of
    /// Table 4). Body sizes follow `scale = 1.0`.
    pub fn paper_sized(dataset: &str) -> GeneratorConfig {
        let n_files = match dataset {
            "GovUK" => 226,
            "SAUS" => 223,
            "CIUS" => 269,
            "DeEx" => 444,
            "Mendeley" => 62,
            "Troy" => 200,
            other => panic!("unknown dataset {other:?}"),
        };
        GeneratorConfig {
            n_files,
            seed: 42,
            scale: 1.0,
        }
    }
}

/// Scale a base count, keeping at least `min`.
fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(min)
}

fn file_rng(cfg: &GeneratorConfig, dataset: &str, index: usize) -> SmallRng {
    // Mix the dataset name into the stream so corpora differ even with
    // equal seeds.
    let tag: u64 = dataset
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    SmallRng::seed_from_u64(cfg.seed ^ tag ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn push_metadata(builder: &mut FileBuilder, rng: &mut SmallRng, n_lines: usize) {
    for k in 0..n_lines {
        let text = if k == 0 {
            vocab::title(rng)
        } else {
            format!(
                "{} — reference period {}",
                pick(rng, &vocab::SUBJECTS),
                rng.gen_range(2005..2021)
            )
        };
        // A metadata area "may span across one or more lines and columns"
        // (Section 3.2): occasionally attach a revision cell.
        if rng.gen_bool(0.15) {
            builder.push_row(vec![
                (text, Some(ElementClass::Metadata)),
                (
                    format!("(rev. {})", rng.gen_range(2018..2022)),
                    Some(ElementClass::Metadata),
                ),
            ]);
        } else {
            builder.single_cell_line(text, ElementClass::Metadata);
        }
    }
}

fn push_notes(builder: &mut FileBuilder, rng: &mut SmallRng, n_lines: usize) {
    for k in 0..n_lines {
        builder.single_cell_line(
            vocab::NOTE_TEMPLATES
                [(k + rng.gen_range(0..vocab::NOTE_TEMPLATES.len())) % vocab::NOTE_TEMPLATES.len()],
            ElementClass::Notes,
        );
    }
}

/// A small table of notes (a DeEx trait: "organizing notes as a small
/// table is not uncommon, particularly in DeEx").
fn push_note_table(builder: &mut FileBuilder, rng: &mut SmallRng) {
    let marks = ["*", "**", "†", "a", "b"];
    let n = rng.gen_range(2..=3);
    for (k, mark) in marks.iter().take(n).enumerate() {
        builder.push_row(vec![
            (mark.to_string(), Some(ElementClass::Notes)),
            (
                vocab::NOTE_TEMPLATES[k % vocab::NOTE_TEMPLATES.len()].to_string(),
                Some(ElementClass::Notes),
            ),
        ]);
    }
}

/// SAUS: administrative statistical abstract tables.
pub fn saus(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("SAUS");
    for i in 0..cfg.n_files {
        let mut rng = file_rng(cfg, "SAUS", i);
        let mut b = FileBuilder::new();
        if rng.gen_bool(0.9) {
            let n_meta = rng.gen_range(1..=3);
            push_metadata(&mut b, &mut rng, n_meta);
            b.empty_line();
        }

        let n_groups = if rng.gen_bool(0.7) {
            rng.gen_range(2..=4)
        } else {
            1
        };
        let rows = scaled(rng.gen_range(8..=14), cfg.scale, 6);
        let spec = TableSpec {
            n_value_cols: rng.gen_range(3..=8),
            rows_per_group: vec![rows; n_groups],
            header: if rng.gen_bool(0.75) {
                HeaderStyle::Textual
            } else {
                HeaderStyle::Years
            },
            groups: if n_groups > 1 {
                GroupStyle::LeftCell
            } else {
                GroupStyle::None
            },
            // The SAUS trait: a large share of unanchored derived rows.
            derived_row: match rng.gen_range(0..10) {
                0..=4 => DerivedRowStyle::Keyword,
                5..=8 => DerivedRowStyle::Anchorless,
                _ => DerivedRowStyle::None,
            },
            derived_col: if rng.gen_bool(0.06) {
                DerivedColStyle::Keyword
            } else {
                DerivedColStyle::None
            },
            grand_total: n_groups > 1 && rng.gen_bool(0.3),
            entity_pool: &vocab::REGIONS,
            value_range: (10, 9000),
            floats: rng.gen_bool(0.15),
            unlabeled_first_col: rng.gen_bool(0.7),
            missing_rate: 0.04,
            na_rate: 0.02,
            two_row_header: rng.gen_bool(0.1),
            aggregate_jitter: true,
            keyword_header_data_col: rng.gen_bool(0.3),
        };
        emit_table(&mut b, &mut rng, &spec);

        if rng.gen_bool(0.85) {
            b.empty_line();
            let n_notes = rng.gen_range(1..=3);
            push_notes(&mut b, &mut rng, n_notes);
        }
        corpus.files.push(b.build(format!("saus_{i:04}.csv")));
    }
    corpus
}

/// CIUS: templated yearly reports — few structural outliers, anchorless
/// derived columns, wide group headers.
pub fn cius(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("CIUS");
    let n_templates = (cfg.n_files / 15).clamp(8, 12);
    for i in 0..cfg.n_files {
        let template = i % n_templates;
        // Structure comes from the template's RNG; only values differ per
        // file, which is exactly the CIUS "same theme, same template"
        // property the paper credits for its high scores.
        let mut structure_rng = file_rng(cfg, "CIUS-template", template);
        let mut rng = file_rng(cfg, "CIUS", i);
        let mut b = FileBuilder::new();
        push_metadata(&mut b, &mut rng, structure_rng.gen_range(3..=4));
        b.empty_line();

        let n_groups = structure_rng.gen_range(3..=5);
        let rows = scaled(structure_rng.gen_range(16..=26), cfg.scale, 6);
        let spec = TableSpec {
            n_value_cols: structure_rng.gen_range(4..=8),
            rows_per_group: vec![rows; n_groups],
            header: HeaderStyle::Years,
            groups: GroupStyle::Wide,
            derived_row: if structure_rng.gen_bool(0.4) {
                DerivedRowStyle::Keyword
            } else {
                DerivedRowStyle::None
            },
            // The CIUS trait: fixed schemas with keyword-less aggregate
            // columns. Assignment is per template (the schema is fixed):
            // one in eight templates carries an anchorless column, one in
            // eight an anchored one.
            derived_col: match template % 8 {
                1 => DerivedColStyle::Anchorless,
                5 => DerivedColStyle::Keyword,
                _ => DerivedColStyle::None,
            },
            grand_total: structure_rng.gen_bool(0.5),
            entity_pool: &vocab::OFFENCES,
            value_range: (50, 60000),
            floats: false,
            unlabeled_first_col: true,
            missing_rate: 0.03,
            na_rate: 0.02,
            two_row_header: structure_rng.gen_bool(0.2),
            aggregate_jitter: false,
            keyword_header_data_col: template % 3 == 1,
        };
        emit_table(&mut b, &mut rng, &spec);

        b.empty_line();
        push_notes(&mut b, &mut rng, structure_rng.gen_range(2..=3));
        corpus.files.push(b.build(format!("cius_{i:04}.csv")));
    }
    corpus
}

/// DeEx: heterogeneous business spreadsheets with stacked tables, note
/// tables, and numeric headers.
pub fn deex(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("DeEx");
    for i in 0..cfg.n_files {
        let mut rng = file_rng(cfg, "DeEx", i);
        let mut b = FileBuilder::new();
        let n_tables = rng.gen_range(1..=3);
        for t in 0..n_tables {
            if t == 0 {
                let n_meta = rng.gen_range(1..=2);
                push_metadata(&mut b, &mut rng, n_meta);
            } else {
                b.empty_line();
                // Later stacked tables get their own caption.
                push_metadata(&mut b, &mut rng, 1);
            }
            b.empty_line();
            let n_groups = if rng.gen_bool(0.4) {
                rng.gen_range(2..=3)
            } else {
                1
            };
            let rows = scaled(rng.gen_range(16..=30), cfg.scale, 6);
            let spec = TableSpec {
                n_value_cols: rng.gen_range(2..=7),
                rows_per_group: vec![rows; n_groups],
                header: match rng.gen_range(0..10) {
                    0..=3 => HeaderStyle::Years,
                    4 => HeaderStyle::None,
                    _ => HeaderStyle::Textual,
                },
                groups: if n_groups > 1 {
                    if rng.gen_bool(0.5) {
                        GroupStyle::LeftCell
                    } else {
                        GroupStyle::Wide
                    }
                } else {
                    GroupStyle::None
                },
                derived_row: match rng.gen_range(0..10) {
                    0..=4 => DerivedRowStyle::Keyword,
                    5..=6 => DerivedRowStyle::Anchorless,
                    _ => DerivedRowStyle::None,
                },
                derived_col: if rng.gen_bool(0.12) {
                    DerivedColStyle::Keyword
                } else {
                    DerivedColStyle::None
                },
                grand_total: rng.gen_bool(0.2),
                entity_pool: &vocab::PRODUCTS,
                value_range: (1, 20000),
                floats: rng.gen_bool(0.35),
                unlabeled_first_col: rng.gen_bool(0.5),
                missing_rate: 0.08,
                na_rate: 0.05,
                two_row_header: rng.gen_bool(0.2),
                aggregate_jitter: true,
                keyword_header_data_col: rng.gen_bool(0.25),
            };
            emit_table(&mut b, &mut rng, &spec);
        }
        b.empty_line();
        match rng.gen_range(0..10) {
            0..=4 => {
                let n_notes = rng.gen_range(1..=3);
                push_notes(&mut b, &mut rng, n_notes);
            }
            5..=7 => push_note_table(&mut b, &mut rng),
            _ => {}
        }
        corpus.files.push(b.build(format!("deex_{i:04}.csv")));
    }
    corpus
}

/// GovUK: large heterogeneous spreadsheet exports; includes the
/// "derived row between header and data, flanked by empty lines" pattern
/// behind the derived-as-header confusion.
pub fn govuk(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("GovUK");
    for i in 0..cfg.n_files {
        let mut rng = file_rng(cfg, "GovUK", i);
        let mut b = FileBuilder::new();
        let n_tables = rng.gen_range(1..=2);
        for t in 0..n_tables {
            if t > 0 {
                b.empty_line();
            }
            let n_meta = rng.gen_range(1..=3);
            push_metadata(&mut b, &mut rng, n_meta);
            b.empty_line();
            let n_groups = rng.gen_range(2..=5);
            let rows = scaled(rng.gen_range(24..=48), cfg.scale, 6);
            let n_value_cols = rng.gen_range(3..=9);
            let floating_summary = rng.gen_bool(0.25);
            let spec = TableSpec {
                n_value_cols,
                rows_per_group: vec![rows; n_groups],
                header: if rng.gen_bool(0.3) {
                    HeaderStyle::Years
                } else {
                    HeaderStyle::Textual
                },
                groups: GroupStyle::LeftCell,
                derived_row: if floating_summary {
                    DerivedRowStyle::None
                } else {
                    match rng.gen_range(0..10) {
                        0..=5 => DerivedRowStyle::Keyword,
                        6..=7 => DerivedRowStyle::Anchorless,
                        _ => DerivedRowStyle::None,
                    }
                },
                derived_col: if rng.gen_bool(0.08) {
                    DerivedColStyle::Keyword
                } else {
                    DerivedColStyle::None
                },
                grand_total: false,
                entity_pool: &vocab::REGIONS,
                value_range: (100, 80000),
                floats: rng.gen_bool(0.2),
                unlabeled_first_col: rng.gen_bool(0.6),
                missing_rate: 0.06,
                na_rate: 0.04,
                two_row_header: rng.gen_bool(0.25),
                aggregate_jitter: true,
                keyword_header_data_col: rng.gen_bool(0.25),
            };
            if floating_summary {
                // Header, then an aggregate row flanked by empty lines,
                // then the data body: the derived-as-header error driver.
                let header_only = TableSpec {
                    rows_per_group: vec![],
                    derived_row: DerivedRowStyle::None,
                    grand_total: false,
                    ..spec.clone()
                };
                emit_table(&mut b, &mut rng, &header_only);
                b.empty_line();
                let mut row = vec![("England totals".to_string(), Some(ElementClass::Group))];
                for _ in 0..n_value_cols {
                    row.push((
                        {
                            let v = rng.gen_range(10000..500000);
                            vocab::format_int(&mut rng, v)
                        },
                        Some(ElementClass::Derived),
                    ));
                }
                b.push_row(row);
                b.empty_line();
                let body_only = TableSpec {
                    header: HeaderStyle::None,
                    ..spec.clone()
                };
                emit_table(&mut b, &mut rng, &body_only);
            } else {
                emit_table(&mut b, &mut rng, &spec);
            }
        }
        if rng.gen_bool(0.9) {
            b.empty_line();
            let n_notes = rng.gen_range(2..=4);
            push_notes(&mut b, &mut rng, n_notes);
        }
        corpus.files.push(b.build(format!("govuk_{i:04}.csv")));
    }
    corpus
}

/// Troy: small out-of-domain statistical tables; derived rows almost
/// never carry keywords (the paper measures derived F1 of 0.070 here).
pub fn troy(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("Troy");
    for i in 0..cfg.n_files {
        let mut rng = file_rng(cfg, "Troy", i);
        let mut b = FileBuilder::new();
        let n_meta = rng.gen_range(1..=2);
        push_metadata(&mut b, &mut rng, n_meta);
        b.empty_line();
        let n_groups = if rng.gen_bool(0.2) { 2 } else { 1 };
        let rows = scaled(rng.gen_range(9..=16), cfg.scale, 8);
        let spec = TableSpec {
            n_value_cols: rng.gen_range(2..=5),
            rows_per_group: vec![rows; n_groups],
            header: if rng.gen_bool(0.6) {
                HeaderStyle::Textual
            } else {
                HeaderStyle::Years
            },
            groups: if n_groups > 1 {
                GroupStyle::LeftCell
            } else {
                GroupStyle::None
            },
            // Troy's aggregates are out-of-domain: mostly keyword-free
            // medians that neither the detector nor magnitude cues catch.
            derived_row: match rng.gen_range(0..10) {
                0..=7 => DerivedRowStyle::AnchorlessMedian,
                8 => DerivedRowStyle::Anchorless,
                _ => DerivedRowStyle::Keyword,
            },
            derived_col: DerivedColStyle::None,
            grand_total: false,
            entity_pool: &vocab::REGIONS,
            value_range: (1, 3000),
            floats: rng.gen_bool(0.3),
            unlabeled_first_col: rng.gen_bool(0.5),
            missing_rate: 0.05,
            na_rate: 0.03,
            two_row_header: false,
            aggregate_jitter: true,
            keyword_header_data_col: rng.gen_bool(0.2),
        };
        emit_table(&mut b, &mut rng, &spec);
        b.empty_line();
        let n_notes = rng.gen_range(2..=3);
        push_notes(&mut b, &mut rng, n_notes);
        corpus.files.push(b.build(format!("troy_{i:04}.csv")));
    }
    corpus
}

/// Mendeley: data-dominated experimental plain-text files. Prose metadata
/// lines are split at commas into fragment cells, reproducing the
/// delimiter dilemma the paper describes for this corpus.
pub fn mendeley(cfg: &GeneratorConfig) -> Corpus {
    let mut corpus = Corpus::new("Mendeley");
    for i in 0..cfg.n_files {
        let mut rng = file_rng(cfg, "Mendeley", i);
        let mut b = FileBuilder::new();

        // Prose metadata, fragmented by the table delimiter.
        if rng.gen_bool(0.9) {
            let n_meta = rng.gen_range(4..=14);
            for _ in 0..n_meta {
                let fragments = [
                    format!("Run recorded at {} C", rng.gen_range(15..35)),
                    format!("humidity {}%", rng.gen_range(20..90)),
                    format!(
                        "sensor firmware v{}.{}",
                        rng.gen_range(1..4),
                        rng.gen_range(0..10)
                    ),
                ];
                let n_frag = rng.gen_range(1..=3);
                b.push_row(
                    fragments[..n_frag]
                        .iter()
                        .map(|f| (f.clone(), Some(ElementClass::Metadata)))
                        .collect(),
                );
            }
        }

        let rows = scaled(3000, cfg.scale, 20);
        let n_groups = if rng.gen_bool(0.1) { 2 } else { 1 };
        let spec = TableSpec {
            n_value_cols: rng.gen_range(3..=8),
            rows_per_group: vec![rows / n_groups; n_groups],
            header: if rng.gen_bool(0.7) {
                HeaderStyle::Textual
            } else {
                HeaderStyle::None
            },
            groups: if n_groups > 1 {
                GroupStyle::LeftCell
            } else {
                GroupStyle::None
            },
            derived_row: if rng.gen_bool(0.08) {
                DerivedRowStyle::Keyword
            } else {
                DerivedRowStyle::None
            },
            derived_col: DerivedColStyle::None,
            grand_total: false,
            entity_pool: &vocab::PRODUCTS,
            value_range: (0, 1000),
            floats: true,
            unlabeled_first_col: false,
            missing_rate: 0.02,
            na_rate: 0.01,
            two_row_header: false,
            aggregate_jitter: false,
            keyword_header_data_col: false,
        };
        emit_table(&mut b, &mut rng, &spec);

        if rng.gen_bool(0.7) {
            b.empty_line();
            let n_notes = rng.gen_range(1..=2);
            push_notes(&mut b, &mut rng, n_notes);
        }
        corpus.files.push(b.build(format!("mendeley_{i:04}.csv")));
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_table::ElementClass::*;

    fn small(n: usize) -> GeneratorConfig {
        GeneratorConfig {
            n_files: n,
            seed: 7,
            scale: 0.3,
        }
    }

    #[test]
    fn all_generators_produce_requested_files() {
        for gen in [saus, cius, deex, govuk, troy, mendeley] {
            let corpus = gen(&small(4));
            assert_eq!(corpus.files.len(), 4);
            for f in &corpus.files {
                assert!(f.non_empty_line_count() > 0);
                assert!(f.non_empty_cell_count() > 0);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = saus(&small(3));
        let b = saus(&small(3));
        for (fa, fb) in a.files.iter().zip(&b.files) {
            assert_eq!(fa.table, fb.table);
            assert_eq!(fa.line_labels, fb.line_labels);
        }
    }

    #[test]
    fn corpora_differ_across_datasets() {
        let a = saus(&small(2));
        let b = troy(&small(2));
        assert_ne!(a.files[0].table, b.files[0].table);
    }

    #[test]
    fn data_dominates_every_corpus() {
        for gen in [saus, cius, deex, govuk, troy] {
            let stats = gen(&small(8)).stats();
            let data_lines = stats.lines_per_class[Data.index()];
            // At the test's reduced scale the data share shrinks (minority
            // sections have fixed size); at scale 1.0 it reaches the
            // paper's 80-90%.
            assert!(data_lines * 2 > stats.n_lines, "data lines should dominate");
            // All six classes appear somewhere in the corpus.
            for class in ElementClass::ALL {
                assert!(
                    stats.lines_per_class[class.index()] > 0
                        || stats.cells_per_class[class.index()] > 0,
                    "{class} missing"
                );
            }
        }
    }

    #[test]
    fn mendeley_is_overwhelmingly_data() {
        let stats = mendeley(&small(4)).stats();
        let data = stats.lines_per_class[Data.index()] as f64;
        assert!(data / stats.n_lines as f64 > 0.9);
    }

    #[test]
    fn cius_files_share_templates() {
        let corpus = cius(&small(16));
        // Files 0 and 8 share template 0 (16 files, 8 templates): same
        // shape, different values.
        let (a, b) = (&corpus.files[0], &corpus.files[8]);
        assert_eq!(a.table.n_rows(), b.table.n_rows());
        assert_eq!(a.table.n_cols(), b.table.n_cols());
        assert_eq!(a.line_labels, b.line_labels);
        assert_ne!(a.table, b.table);
    }

    #[test]
    fn troy_derived_rows_are_mostly_anchorless() {
        let corpus = troy(&GeneratorConfig {
            n_files: 30,
            seed: 11,
            scale: 0.5,
        });
        let mut derived_lines = 0usize;
        let mut anchored = 0usize;
        for f in &corpus.files {
            for r in 0..f.table.n_rows() {
                if f.line_labels[r] == Some(Derived) {
                    derived_lines += 1;
                    let has_kw = f.table.row(r).any(|c| {
                        let lower = c.raw().to_ascii_lowercase();
                        ["total", "sum", "average", "mean", "median", "avg", "all"]
                            .iter()
                            .any(|k| {
                                lower
                                    .split(|ch: char| !ch.is_alphanumeric())
                                    .any(|w| w == *k)
                            })
                    });
                    if has_kw {
                        anchored += 1;
                    }
                }
            }
        }
        assert!(derived_lines > 10);
        assert!(
            (anchored as f64) < 0.4 * derived_lines as f64,
            "{anchored}/{derived_lines} anchored"
        );
    }

    #[test]
    fn diversity_degrees_match_paper_shape() {
        // Table 3: the overwhelming majority of lines have degree 1, a
        // small share degree 2, and degree >= 3 is negligible.
        let merged = Corpus::merged(
            "collection",
            &[&saus(&small(6)), &cius(&small(6)), &deex(&small(6))],
        );
        let stats = merged.stats();
        let total: usize = stats.diversity_counts.iter().sum();
        let d1 = stats.diversity_counts[0] as f64 / total as f64;
        let d2 = stats.diversity_counts[1] as f64 / total as f64;
        assert!(d1 > 0.75, "degree-1 share {d1}");
        assert!(d2 < 0.25, "degree-2 share {d2}");
        assert!(d2 > 0.01, "degree-2 share {d2}");
        assert!(stats.diversity_counts[3..].iter().all(|&c| c == 0));
    }
}
