//! # strudel-datagen
//!
//! Seeded synthetic corpora standing in for the six annotated datasets of
//! the Strudel evaluation (GovUK, SAUS, CIUS, DeEx, Mendeley, Troy).
//!
//! The real corpora are institutional datasets that cannot be shipped
//! with this reproduction; these generators encode the statistics the
//! paper publishes (file/line/cell counts of Table 4, class distributions
//! of Table 5, diversity degrees of Table 3) and the structural traits
//! its error analysis leans on — anchorless derived rows (SAUS, Troy),
//! keyword-free derived columns in templated files (CIUS), stacked tables
//! and note-tables (DeEx), floating summary rows (GovUK), and the
//! delimiter dilemma of data-dominated plain-text files (Mendeley). Every
//! file carries exact ground-truth line and cell labels.
//!
//! ```
//! use strudel_datagen::{saus, GeneratorConfig};
//!
//! let corpus = saus(&GeneratorConfig { n_files: 3, seed: 1, scale: 0.3 });
//! assert_eq!(corpus.files.len(), 3);
//! let stats = corpus.stats();
//! assert!(stats.n_lines > 0 && stats.n_cells > 0);
//! ```

#![warn(missing_docs)]

mod builder;
mod datasets;
mod spec;
mod vocab;

pub use builder::{FileBuilder, LabeledValue};
pub use datasets::{cius, deex, govuk, mendeley, saus, troy, GeneratorConfig};
pub use spec::{emit_table, DerivedColStyle, DerivedRowStyle, GroupStyle, HeaderStyle, TableSpec};
pub use vocab::{format_int, with_thousands};

use strudel_table::Corpus;

/// Generate a corpus by dataset name (`"GovUK"`, `"SAUS"`, `"CIUS"`,
/// `"DeEx"`, `"Mendeley"`, `"Troy"`, case-insensitive).
///
/// # Panics
/// Panics on an unknown name.
pub fn by_name(name: &str, cfg: &GeneratorConfig) -> Corpus {
    match name.to_ascii_lowercase().as_str() {
        "govuk" => govuk(cfg),
        "saus" => saus(cfg),
        "cius" => cius(cfg),
        "deex" => deex(cfg),
        "mendeley" => mendeley(cfg),
        "troy" => troy(cfg),
        other => panic!("unknown dataset {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_is_case_insensitive() {
        let cfg = GeneratorConfig {
            n_files: 1,
            seed: 0,
            scale: 0.2,
        };
        assert_eq!(by_name("SAUS", &cfg).name, "SAUS");
        assert_eq!(by_name("deex", &cfg).name, "DeEx");
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn by_name_rejects_unknown() {
        let _ = by_name("nope", &GeneratorConfig::default());
    }
}
