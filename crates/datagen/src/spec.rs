//! Parameterised generation of one annotated table block.
//!
//! Every synthetic corpus is assembled from [`TableSpec`] instances whose
//! knobs encode the structural phenomena the paper's evaluation hinges
//! on: keyword-anchored vs anchorless derived rows/columns, group headers
//! of different shapes, textual vs numeric (year) headers, float vs
//! integer bodies. Derived values are *real* aggregates of the generated
//! data, so Algorithm 2 behaves on synthetic files exactly as it would on
//! real ones.

use crate::builder::FileBuilder;
use crate::vocab::{self, pick};
use rand::rngs::SmallRng;
use rand::Rng;
use strudel_table::ElementClass;

/// Shape of the header area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderStyle {
    /// Textual measure names ("Rate", "Count", ...).
    Textual,
    /// Consecutive years ("2015", "2016", ...) — type-identical to data,
    /// the paper's "header as data" error driver.
    Years,
    /// No header line at all (Mendeley-style raw data dumps sometimes).
    None,
}

/// Shape of the group headers splitting a table into fractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStyle {
    /// No groups.
    None,
    /// Single left-most cell above each fraction (the SAUS convention
    /// Pytheas' rules assume).
    LeftCell,
    /// Group text plus a trailing annotation cell — violates the
    /// single-cell assumption (CIUS trait behind Pytheas' group F1 of 0).
    Wide,
}

/// Shape of the per-fraction derived (aggregate) row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedRowStyle {
    /// No aggregate rows.
    None,
    /// Leading cell contains an aggregation keyword ("Total"), anchoring
    /// Algorithm 2.
    Keyword,
    /// Leading cell is a keyword-free phrase — the unanchored derived
    /// rows behind the low derived F1 on SAUS and Troy.
    Anchorless,
    /// Keyword-free *median* rows: the aggregate is neither the sum nor
    /// the mean of the fraction, so Algorithm 2 cannot verify it, and the
    /// value magnitude stays inside the data range. The dominant derived
    /// shape of the out-of-domain Troy corpus.
    AnchorlessMedian,
}

/// Shape of the derived (aggregate) column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivedColStyle {
    /// No aggregate column.
    None,
    /// Column header contains a keyword ("Total").
    Keyword,
    /// Column header is keyword-free ("Combined") — the CIUS fixed-schema
    /// trait that costs Strudel^C two thirds of CIUS derived cells.
    Anchorless,
}

/// Specification of one table block.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Number of numeric value columns (excluding the label column and a
    /// possible derived column).
    pub n_value_cols: usize,
    /// Data rows in each table fraction (one entry per fraction).
    pub rows_per_group: Vec<usize>,
    /// Header shape.
    pub header: HeaderStyle,
    /// Group header shape.
    pub groups: GroupStyle,
    /// Per-fraction aggregate row shape.
    pub derived_row: DerivedRowStyle,
    /// Aggregate column shape.
    pub derived_col: DerivedColStyle,
    /// Append a grand-total row over all fractions.
    pub grand_total: bool,
    /// Entity-name pool for the label column.
    pub entity_pool: &'static [&'static str],
    /// Numeric value range.
    pub value_range: (i64, i64),
    /// Generate one-decimal floats instead of integers.
    pub floats: bool,
    /// Leave the label-column header cell empty (paper: the left-most
    /// column is data without a header under the re-annotation).
    pub unlabeled_first_col: bool,
    /// Probability that a body value is displayed as an empty cell
    /// (missing value). The hidden value still feeds the aggregates, so
    /// derived relationships become imperfect — as in real files.
    pub missing_rate: f64,
    /// Probability that a body value is displayed as a textual
    /// placeholder ("-", "n/a"); also keeps feeding the aggregates.
    pub na_rate: f64,
    /// Emit a second header line carrying unit annotations (headers
    /// "may span multiple cells"/lines in the paper's taxonomy).
    pub two_row_header: bool,
    /// Randomise per-fraction aggregates: skip some fractions' aggregate
    /// rows and occasionally place them at the top of the fraction. Off
    /// by default (deterministic bottom aggregates); the heterogeneous
    /// corpora turn it on, templated CIUS keeps it off.
    pub aggregate_jitter: bool,
    /// Head one plain *data* column with an aggregation keyword
    /// ("Total offences") — a real-world trap: the keyword suggests a
    /// derived column, but only arithmetic verification (IsAggregation)
    /// can tell it is not one.
    pub keyword_header_data_col: bool,
}

impl Default for TableSpec {
    fn default() -> Self {
        TableSpec {
            n_value_cols: 3,
            rows_per_group: vec![6],
            header: HeaderStyle::Textual,
            groups: GroupStyle::None,
            derived_row: DerivedRowStyle::Keyword,
            derived_col: DerivedColStyle::None,
            grand_total: false,
            entity_pool: &vocab::REGIONS,
            value_range: (10, 5000),
            floats: false,
            unlabeled_first_col: true,
            missing_rate: 0.0,
            na_rate: 0.0,
            two_row_header: false,
            aggregate_jitter: false,
            keyword_header_data_col: false,
        }
    }
}

impl TableSpec {
    /// Total width of the emitted block (label column + value columns +
    /// optional derived column).
    pub fn width(&self) -> usize {
        1 + self.n_value_cols + usize::from(self.derived_col != DerivedColStyle::None)
    }
}

/// Render a numeric value for the table body.
fn render(rng: &mut SmallRng, spec: &TableSpec, value: f64) -> String {
    if spec.floats {
        format!("{value:.1}")
    } else {
        vocab::format_int(rng, value as i64)
    }
}

/// Draw a fresh body value, log-uniform over the configured range.
///
/// Real statistical tables mix magnitudes (a metropolis next to a
/// village); a log-uniform body keeps aggregate rows from being
/// recognisable by magnitude alone, which would make the `derived` class
/// artificially easy.
fn draw(rng: &mut SmallRng, spec: &TableSpec) -> f64 {
    let lo = (spec.value_range.0.max(1)) as f64;
    let hi = (spec.value_range.1.max(2)) as f64;
    let v = (rng.gen_range(lo.ln()..=hi.ln())).exp().round();
    if spec.floats {
        v + f64::from(rng.gen_range(0u32..10)) / 10.0
    } else {
        v
    }
}

/// Median of a non-empty slice (mean of the two middle elements for an
/// even count).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Emit one table block into `builder` according to `spec`.
pub fn emit_table(builder: &mut FileBuilder, rng: &mut SmallRng, spec: &TableSpec) {
    use ElementClass::*;

    let has_derived_col = spec.derived_col != DerivedColStyle::None;

    // --- header ---
    match spec.header {
        HeaderStyle::None => {}
        style => {
            let mut row = Vec::with_capacity(spec.width());
            if spec.unlabeled_first_col {
                row.push((String::new(), None));
            } else {
                row.push((
                    pick(rng, &["Area", "Name", "Category"]).to_string(),
                    Some(Header),
                ));
            }
            let base_year = rng.gen_range(1995..2018);
            // The trap column sits rightmost — exactly where genuine
            // derived columns live — so neither the keyword nor the
            // column position can separate it from a real aggregate.
            let trap_col = spec
                .keyword_header_data_col
                .then_some(spec.n_value_cols - 1);
            for k in 0..spec.n_value_cols {
                let text = match style {
                    HeaderStyle::Years => (base_year + k as i32).to_string(),
                    _ if trap_col == Some(k) => {
                        format!("Total {}", pick(rng, &vocab::SUBJECTS))
                    }
                    _ => format!("{} {}", pick(rng, &vocab::MEASURES), k + 1),
                };
                row.push((text, Some(Header)));
            }
            match spec.derived_col {
                DerivedColStyle::None => {}
                DerivedColStyle::Keyword => row.push(("Total".to_string(), Some(Header))),
                DerivedColStyle::Anchorless => row.push(("Combined".to_string(), Some(Header))),
            }
            builder.push_row(row);
            if spec.two_row_header {
                let mut units = vec![(String::new(), None)];
                for _ in 0..spec.n_value_cols {
                    units.push((
                        pick(rng, &["(count)", "(per 100)", "(rate)", "(%)"]).to_string(),
                        Some(Header),
                    ));
                }
                units.resize_with(spec.width(), || (String::new(), None));
                builder.push_row(units);
            }
        }
    }

    // --- body: fractions with group headers, data rows, aggregates ---
    let mut grand_sums = vec![0.0f64; spec.n_value_cols];
    let mut grand_col_sum = 0.0f64;
    let n_groups = spec.rows_per_group.len();
    for (g, &n_rows) in spec.rows_per_group.iter().enumerate() {
        match spec.groups {
            GroupStyle::None => {}
            GroupStyle::LeftCell => {
                let mut row = vec![(
                    vocab::GROUP_PHRASES[g % vocab::GROUP_PHRASES.len()].to_string(),
                    Some(Group),
                )];
                row.resize_with(spec.width(), || (String::new(), None));
                builder.push_row(row);
            }
            GroupStyle::Wide => {
                let mut row = vec![
                    (
                        vocab::GROUP_PHRASES[g % vocab::GROUP_PHRASES.len()].to_string(),
                        Some(Group),
                    ),
                    (format!("(section {})", g + 1), Some(Group)),
                ];
                row.resize_with(spec.width(), || (String::new(), None));
                builder.push_row(row);
            }
        }

        let mut group_sums = vec![0.0f64; spec.n_value_cols];
        let mut group_values: Vec<Vec<f64>> = vec![Vec::new(); spec.n_value_cols];
        // Aggregates sit at the bottom of most fractions, the top of some
        // ("top- or bottom-most lines", Section 3.2), and are absent from
        // others — the irregularity real files show.
        let emit_aggregate = spec.derived_row != DerivedRowStyle::None
            && (!spec.aggregate_jitter || rng.gen_bool(0.75));
        let aggregate_on_top = emit_aggregate && spec.aggregate_jitter && rng.gen_bool(0.2);
        let mut data_rows: Vec<Vec<crate::builder::LabeledValue>> = Vec::new();
        for r in 0..n_rows {
            let entity = spec.entity_pool[(g * 7 + r) % spec.entity_pool.len()];
            let mut row = Vec::with_capacity(spec.width());
            row.push((entity.to_string(), Some(Data)));
            let mut row_sum = 0.0;
            for k in 0..spec.n_value_cols {
                let v = draw(rng, spec);
                group_sums[k] += v;
                group_values[k].push(v);
                grand_sums[k] += v;
                row_sum += v;
                // Masked cells keep feeding the aggregates: the visible
                // derived relationship becomes imperfect, as it often is
                // in real exports.
                if rng.gen_bool(spec.missing_rate) {
                    row.push((String::new(), None));
                } else if rng.gen_bool(spec.na_rate) {
                    row.push((pick(rng, &["-", "n/a", ".."]).to_string(), Some(Data)));
                } else {
                    row.push((render(rng, spec, v), Some(Data)));
                }
            }
            if has_derived_col {
                grand_col_sum += row_sum;
                row.push((render(rng, spec, row_sum), Some(Derived)));
            }
            data_rows.push(row);
        }

        match spec.derived_row {
            _ if !emit_aggregate => {
                for row in data_rows.drain(..) {
                    builder.push_row(row);
                }
            }
            DerivedRowStyle::None => {}
            style => {
                let lead = match style {
                    DerivedRowStyle::Keyword => {
                        if n_groups > 1 {
                            format!("Total, group {}", g + 1)
                        } else {
                            "Total".to_string()
                        }
                    }
                    // Anchorless aggregate rows carry a label shaped like
                    // any other data-row entity ("derived as data" driver).
                    _ => spec.entity_pool[(g + 3) % spec.entity_pool.len()].to_string(),
                };
                let aggregates: Vec<f64> = match style {
                    DerivedRowStyle::AnchorlessMedian => {
                        group_values.iter().map(|vs| median(vs)).collect()
                    }
                    _ => group_sums.clone(),
                };
                let mut row = Vec::with_capacity(spec.width());
                row.push((lead, Some(Group)));
                for &s in &aggregates {
                    row.push((render(rng, spec, s), Some(Derived)));
                }
                if has_derived_col {
                    row.push((render(rng, spec, aggregates.iter().sum()), Some(Derived)));
                }
                if aggregate_on_top {
                    builder.push_row(row);
                    for data_row in data_rows.drain(..) {
                        builder.push_row(data_row);
                    }
                } else {
                    for data_row in data_rows.drain(..) {
                        builder.push_row(data_row);
                    }
                    builder.push_row(row);
                }
            }
        }
    }

    if spec.grand_total {
        let mut row = Vec::with_capacity(spec.width());
        row.push(("Grand total".to_string(), Some(Group)));
        for &s in &grand_sums {
            row.push((render(rng, spec, s), Some(Derived)));
        }
        if has_derived_col {
            row.push((render(rng, spec, grand_col_sum), Some(Derived)));
        }
        builder.push_row(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use strudel_table::ElementClass::*;

    fn build(spec: &TableSpec, seed: u64) -> strudel_table::LabeledFile {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = FileBuilder::new();
        emit_table(&mut b, &mut rng, spec);
        b.build("spec.csv")
    }

    #[test]
    fn default_spec_shape() {
        let f = build(&TableSpec::default(), 1);
        // 1 header + 6 data + 1 total row.
        assert_eq!(f.table.n_rows(), 8);
        assert_eq!(f.table.n_cols(), 4);
        assert_eq!(f.line_labels[0], Some(Header));
        assert_eq!(f.line_labels[1], Some(Data));
        assert_eq!(f.line_labels[7], Some(Derived));
        assert_eq!(f.cell_labels[7][0], Some(Group));
    }

    #[test]
    fn derived_rows_are_true_sums() {
        let f = build(&TableSpec::default(), 2);
        for col in 1..4 {
            let total = f.table.cell(7, col).numeric().unwrap();
            let sum: f64 = (1..7)
                .map(|r| f.table.cell(r, col).numeric().unwrap())
                .sum();
            assert!((total - sum).abs() < 1e-9, "col {col}: {total} vs {sum}");
        }
    }

    #[test]
    fn derived_column_is_true_row_sum() {
        let spec = TableSpec {
            derived_col: DerivedColStyle::Keyword,
            derived_row: DerivedRowStyle::None,
            ..TableSpec::default()
        };
        let f = build(&spec, 3);
        assert_eq!(f.table.n_cols(), 5);
        for r in 1..7 {
            let total = f.table.cell(r, 4).numeric().unwrap();
            let sum: f64 = (1..4).map(|c| f.table.cell(r, c).numeric().unwrap()).sum();
            assert!((total - sum).abs() < 1e-9);
            assert_eq!(f.cell_labels[r][4], Some(Derived));
            // Mixed line: data cells + one derived cell → diversity 2.
            assert_eq!(f.diversity_degree(r), 2);
        }
    }

    #[test]
    fn years_header_is_numeric() {
        let spec = TableSpec {
            header: HeaderStyle::Years,
            ..TableSpec::default()
        };
        let f = build(&spec, 4);
        assert!(f.table.cell(0, 1).dtype().is_numeric());
        assert_eq!(f.cell_labels[0][1], Some(Header));
    }

    #[test]
    fn group_fractions_emit_group_lines() {
        let spec = TableSpec {
            rows_per_group: vec![3, 3],
            groups: GroupStyle::LeftCell,
            grand_total: true,
            ..TableSpec::default()
        };
        let f = build(&spec, 5);
        assert_eq!(f.line_labels[1], Some(Group));
        // Grand total row aggregates both fractions.
        let last = f.table.n_rows() - 1;
        assert_eq!(f.line_labels[last], Some(Derived));
        let grand = f.table.cell(last, 1).numeric().unwrap();
        let body_sum: f64 = (0..last)
            .filter(|&r| f.line_labels[r] == Some(Data))
            .map(|r| f.table.cell(r, 1).numeric().unwrap())
            .sum();
        assert!((grand - body_sum).abs() < 1e-9);
    }

    #[test]
    fn anchorless_rows_carry_no_keyword() {
        let spec = TableSpec {
            derived_row: DerivedRowStyle::Anchorless,
            ..TableSpec::default()
        };
        let f = build(&spec, 6);
        let lead = f.table.cell(7, 0).raw().to_ascii_lowercase();
        for kw in ["total", "sum", "average", "mean", "median", "avg"] {
            assert!(!lead.contains(kw), "{lead} contains {kw}");
        }
    }

    #[test]
    fn float_bodies_render_one_decimal() {
        let spec = TableSpec {
            floats: true,
            ..TableSpec::default()
        };
        let f = build(&spec, 7);
        let raw = f.table.cell(1, 1).raw();
        assert!(raw.contains('.'), "{raw} not a float rendering");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(&TableSpec::default(), 11);
        let b = build(&TableSpec::default(), 11);
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn median_rows_are_true_medians_and_evade_sum_mean() {
        let spec = TableSpec {
            derived_row: DerivedRowStyle::AnchorlessMedian,
            rows_per_group: vec![5],
            ..TableSpec::default()
        };
        let f = build(&spec, 13);
        let last = f.table.n_rows() - 1;
        assert_eq!(
            f.line_labels[last],
            Some(strudel_table::ElementClass::Derived)
        );
        for col in 1..4 {
            let mut values: Vec<f64> = (1..last)
                .map(|r| f.table.cell(r, col).numeric().unwrap())
                .collect();
            values.sort_by(f64::total_cmp);
            let expected = values[values.len() / 2];
            let rendered = f.table.cell(last, col).numeric().unwrap();
            assert!(
                (rendered - expected).abs() < 1.0,
                "col {col}: {rendered} vs {expected}"
            );
            // Neither the sum nor the mean of the column (what Algorithm 2
            // can verify) — sums are far larger, the log-uniform mean is
            // generally off the median by more than the detector's delta.
            let sum: f64 = values.iter().sum();
            assert!((rendered - sum).abs() > 1.0);
        }
    }

    #[test]
    fn masked_cells_still_feed_aggregates() {
        let spec = TableSpec {
            missing_rate: 0.5,
            na_rate: 0.2,
            rows_per_group: vec![8],
            ..TableSpec::default()
        };
        let f = build(&spec, 17);
        let last = f.table.n_rows() - 1;
        // The aggregate row's value exceeds the sum of the *visible*
        // numeric data cells (masked values are included in the hidden
        // total), demonstrating the imperfect-relationship realism.
        for col in 1..4 {
            let total = f.table.cell(last, col).numeric().unwrap();
            let visible: f64 = (1..last)
                .filter_map(|r| f.table.cell(r, col).numeric())
                .sum();
            assert!(total >= visible - 1e-9, "col {col}");
        }
        // And some cells really were masked.
        let masked = (1..last)
            .flat_map(|r| (1..4).map(move |c| (r, c)))
            .filter(|&(r, c)| f.table.cell(r, c).numeric().is_none())
            .count();
        assert!(masked > 0, "expected masked cells at 70% masking");
    }

    #[test]
    fn keyword_trap_column_is_plain_data() {
        let spec = TableSpec {
            keyword_header_data_col: true,
            derived_row: DerivedRowStyle::None,
            derived_col: DerivedColStyle::None,
            ..TableSpec::default()
        };
        let f = build(&spec, 19);
        // Rightmost value column is headed by a keyword but labeled data.
        let last_col = f.table.n_cols() - 1;
        let header = f.table.cell(0, last_col).raw().to_ascii_lowercase();
        assert!(header.contains("total"), "{header}");
        for r in 1..f.table.n_rows() {
            assert_eq!(
                f.cell_labels[r][last_col],
                Some(strudel_table::ElementClass::Data)
            );
        }
    }
}
