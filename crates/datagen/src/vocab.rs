//! Word pools and value formatting for the synthetic corpora.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Entity names used as the first (label) column of data rows.
pub const REGIONS: [&str; 20] = [
    "Northumberland",
    "Cumbria",
    "Durham",
    "Yorkshire",
    "Lancashire",
    "Merseyside",
    "Cheshire",
    "Derbyshire",
    "Nottinghamshire",
    "Lincolnshire",
    "Norfolk",
    "Suffolk",
    "Essex",
    "Kent",
    "Surrey",
    "Hampshire",
    "Dorset",
    "Devon",
    "Cornwall",
    "Somerset",
];

/// Product / category names (business-flavoured pools for DeEx).
pub const PRODUCTS: [&str; 16] = [
    "Widgets",
    "Gaskets",
    "Bearings",
    "Fasteners",
    "Valves",
    "Pumps",
    "Motors",
    "Sensors",
    "Cables",
    "Switches",
    "Filters",
    "Seals",
    "Springs",
    "Couplings",
    "Brackets",
    "Housings",
];

/// Crime / offence categories (CIUS flavour).
pub const OFFENCES: [&str; 12] = [
    "Burglary",
    "Robbery",
    "Larceny",
    "Arson",
    "Fraud",
    "Forgery",
    "Vandalism",
    "Embezzlement",
    "Trespassing",
    "Shoplifting",
    "Assault",
    "Extortion",
];

/// Statistical measure names used in header cells.
pub const MEASURES: [&str; 10] = [
    "Rate", "Count", "Index", "Share", "Volume", "Value", "Amount", "Score", "Level", "Change",
];

/// Group-header phrases that deliberately avoid aggregation keywords.
pub const GROUP_PHRASES: [&str; 8] = [
    "Northern region:",
    "Southern region:",
    "Urban areas:",
    "Rural areas:",
    "Sale/Manufacturing:",
    "Import/Export:",
    "Public sector:",
    "Private sector:",
];

/// Metadata title templates (`{}` replaced by a subject word). Some
/// carry aggregation keywords without marking derived content.
pub const TITLE_TEMPLATES: [&str; 8] = [
    "Table 12. {} by area and year",
    "Annual report on {}",
    "{} statistics, national summary",
    "Survey of {} outcomes",
    "Quarterly {} bulletin",
    "{} recorded by local authorities",
    "Summary of all recorded {}",
    "Total {} by reporting area",
];

/// Note-line templates. Several deliberately contain aggregation
/// keywords ("totals", "average", "all") without being derived lines —
/// the realistic noise that forces Strudel to verify aggregates
/// arithmetically (DerivedCoverage) instead of trusting keywords.
pub const NOTE_TEMPLATES: [&str; 9] = [
    "Source: national statistics office",
    "Figures are provisional and subject to revision",
    "1. Excludes records with unknown location",
    "2. Rates are given per 100 inhabitants",
    "Note: counting rules changed in the reference year",
    "See the methodology annex for definitions",
    "Totals may not add due to rounding",
    "The average reporting lag is six weeks",
    "All figures cover the financial year",
];

/// Subject words slotted into the title templates.
pub const SUBJECTS: [&str; 8] = [
    "crime",
    "employment",
    "housing",
    "education",
    "transport",
    "health",
    "energy",
    "tourism",
];

/// Pick one element of a pool.
pub fn pick<'a>(rng: &mut SmallRng, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

/// A metadata title with a random subject.
pub fn title(rng: &mut SmallRng) -> String {
    pick(rng, &TITLE_TEMPLATES).replace("{}", pick(rng, &SUBJECTS))
}

/// Format an integer, optionally with thousands separators.
pub fn format_int(rng: &mut SmallRng, value: i64) -> String {
    if value.abs() >= 1000 && rng.gen_bool(0.5) {
        with_thousands(value)
    } else {
        value.to_string()
    }
}

/// Render `value` with `,` thousands separators.
pub fn with_thousands(value: i64) -> String {
    let negative = value < 0;
    let digits = value.unsigned_abs().to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3 + 1);
    let offset = digits.len() % 3;
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    if negative {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn thousands_grouping() {
        assert_eq!(with_thousands(0), "0");
        assert_eq!(with_thousands(999), "999");
        assert_eq!(with_thousands(1000), "1,000");
        assert_eq!(with_thousands(1234567), "1,234,567");
        assert_eq!(with_thousands(-4500), "-4,500");
    }

    #[test]
    fn formatted_ints_parse_back() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.gen_range(-2_000_000..2_000_000);
            let s = format_int(&mut rng, v);
            let parsed = strudel_table::parse_number(&s).expect("parses");
            assert_eq!(parsed.value as i64, v, "round-trip of {s}");
        }
    }

    #[test]
    fn titles_are_filled() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = title(&mut rng);
        assert!(!t.contains("{}"));
        assert!(!t.is_empty());
    }

    #[test]
    fn group_phrases_avoid_keywords() {
        // Mirrors Strudel's aggregation dictionary: group phrases must not
        // accidentally anchor the derived-cell detector.
        let keywords = ["total", "all", "sum", "average", "avg", "mean", "median"];
        for p in GROUP_PHRASES {
            let lower = p.to_ascii_lowercase();
            for w in lower.split(|ch: char| !ch.is_alphanumeric()) {
                assert!(
                    !keywords.contains(&w),
                    "{p} contains aggregation keyword {w}"
                );
            }
        }
    }
}
