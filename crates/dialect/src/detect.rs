//! Dialect detection following van den Burg et al. (DMKD 2019).
//!
//! The detector scores every candidate dialect with a *data consistency
//! measure* `Q = P × T`, where `P` is a **pattern score** rewarding
//! dialects under which rows split into consistent multi-cell records, and
//! `T` is a **type score** rewarding dialects under which the resulting
//! cells look like clean values (numbers, dates, empties, delimiter-free
//! text). The dialect with the highest score wins; ties break toward the
//! more conventional dialect (comma before semicolon before tab, quoting
//! before no quoting).
//!
//! This is the preprocessing step of the Strudel pipeline (Figure 2): a
//! text file becomes a verbose CSV file only after its dialect is known.

use crate::dialect::Dialect;
use crate::scan::scan_records;
use strudel_table::{DataType, Deadline, LimitKind, Limits, StrudelError};

/// Delimiters considered by the detector, in tie-break preference order.
pub const CANDIDATE_DELIMITERS: [char; 7] = [',', ';', '\t', '|', ':', '^', '~'];

/// Quote characters considered by the detector (besides "no quoting").
pub const CANDIDATE_QUOTES: [char; 2] = ['"', '\''];

/// A scored candidate dialect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDialect {
    /// The candidate.
    pub dialect: Dialect,
    /// Pattern score `P` (row-shape consistency).
    pub pattern_score: f64,
    /// Type score `T` (cell cleanliness).
    pub type_score: f64,
    /// Combined consistency `Q = P × T`.
    pub score: f64,
}

/// Detect the dialect of a text file.
///
/// Only delimiters that actually occur in the text are scored (plus the
/// comma, so that single-column files default to RFC 4180). Scoring reads
/// at most the first [`DETECTION_LINE_BUDGET`] lines, which keeps
/// detection linear and cheap even for multi-megabyte files.
pub fn detect_dialect(text: &str) -> Dialect {
    best_dialect(text).dialect
}

/// [`detect_dialect`] under [`Limits`] and a wall-clock [`Deadline`].
///
/// Enforced bounds: the sampled region must not contain a physical line
/// longer than `max_line_bytes` (detection would otherwise buffer it per
/// candidate), inputs with NUL bytes in the sample are rejected as binary
/// when `reject_binary` is set (no CSV dialect is meaningful for binary
/// data), and the deadline is polled between candidate scorings.
pub fn try_detect_dialect(
    text: &str,
    limits: &Limits,
    deadline: Deadline,
) -> Result<Dialect, StrudelError> {
    let sample = sample_lines(text, DETECTION_LINE_BUDGET);
    if let Some(max) = limits.max_line_bytes {
        let mut line_start = 0usize;
        for (idx, b) in sample.bytes().enumerate() {
            if b == b'\n' || b == b'\r' {
                line_start = idx + 1;
            } else if (idx - line_start) as u64 >= max {
                return Err(StrudelError::limit(
                    LimitKind::LineBytes,
                    (idx - line_start) as u64 + 1,
                    max,
                ));
            }
        }
    }
    if limits.reject_binary {
        if let Some(pos) = sample.bytes().position(|b| b == 0) {
            return Err(StrudelError::Dialect {
                file: None,
                reason: format!("binary content: NUL byte at offset {pos}"),
            });
        }
    }
    let mut best: Option<ScoredDialect> = None;
    for dialect in candidate_dialects(sample) {
        deadline.check()?;
        let scored = score_dialect(sample, &dialect);
        let better = match &best {
            None => true,
            Some(b) => scored.score > b.score + 1e-12,
        };
        if better {
            best = Some(scored);
        }
    }
    Ok(best.map_or(Dialect::rfc4180(), |b| b.dialect))
}

/// Maximum number of lines inspected by the detector.
pub const DETECTION_LINE_BUDGET: usize = 200;

/// Detect the dialect and report its scores (used by tests and by the
/// Mendeley experiments, which need to know when detection is unreliable).
pub fn best_dialect(text: &str) -> ScoredDialect {
    let sample = sample_lines(text, DETECTION_LINE_BUDGET);
    let mut best: Option<ScoredDialect> = None;
    for dialect in candidate_dialects(sample) {
        let scored = score_dialect(sample, &dialect);
        let better = match &best {
            None => true,
            // Strictly-greater keeps the earliest (most conventional)
            // candidate on ties, because candidates are generated in
            // preference order.
            Some(b) => scored.score > b.score + 1e-12,
        };
        if better {
            best = Some(scored);
        }
    }
    best.unwrap_or(ScoredDialect {
        dialect: Dialect::rfc4180(),
        pattern_score: 0.0,
        type_score: 0.0,
        score: 0.0,
    })
}

fn sample_lines(text: &str, budget: usize) -> &str {
    // Count both `\n` and `\r` as line breaks (a `\r\n` pair counts
    // once): files with CR-only line endings used to defeat the budget
    // entirely and push the whole input through every candidate scoring.
    let mut breaks = 0;
    let mut prev_cr = false;
    for (idx, b) in text.bytes().enumerate() {
        let is_break = b == b'\n' || b == b'\r';
        if is_break && !(b == b'\n' && prev_cr) {
            breaks += 1;
            if breaks >= budget {
                return &text[..=idx];
            }
        }
        prev_cr = b == b'\r';
    }
    text
}

/// Enumerate candidate dialects in tie-break preference order.
fn candidate_dialects(text: &str) -> Vec<Dialect> {
    let mut delimiters: Vec<char> = CANDIDATE_DELIMITERS
        .iter()
        .copied()
        .filter(|&d| d == ',' || text.contains(d))
        .collect();
    if delimiters.is_empty() {
        delimiters.push(',');
    }
    let mut quotes: Vec<Option<char>> = vec![Some('"'), None];
    for q in CANDIDATE_QUOTES {
        if q != '"' && text.contains(q) {
            quotes.push(Some(q));
        }
    }
    let escapes: Vec<Option<char>> = if text.contains('\\') {
        vec![None, Some('\\')]
    } else {
        vec![None]
    };
    let mut out = Vec::new();
    for &d in &delimiters {
        for &q in &quotes {
            for &e in &escapes {
                out.push(Dialect {
                    delimiter: d,
                    quote: q,
                    escape: e,
                });
            }
        }
    }
    out
}

/// Compute the consistency measure `Q = P × T` of one dialect.
///
/// Scoring runs over the zero-copy scanner output: every candidate
/// dialect re-reads the same sample, so materialising owned cells here
/// would multiply allocation cost by the number of candidates. Clean
/// fields are inspected as borrowed slices of the sample.
pub fn score_dialect(text: &str, dialect: &Dialect) -> ScoredDialect {
    let records = scan_records(text, dialect);
    if records.is_empty() {
        return ScoredDialect {
            dialect: *dialect,
            pattern_score: 0.0,
            type_score: 0.0,
            score: 0.0,
        };
    }

    // Pattern score: group rows by their cell count ("row pattern"); each
    // pattern k with N_k rows of length L_k contributes N_k * (L_k-1)/L_k,
    // averaged over rows and divided by the number of distinct patterns.
    // Single-cell rows contribute zero, so a delimiter that fails to split
    // the file scores zero; many distinct row shapes dilute the score.
    let mut pattern_counts: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for rec in records.iter() {
        *pattern_counts.entry(rec.len()).or_insert(0) += 1;
    }
    let n_rows = records.n_records() as f64;
    let raw: f64 = pattern_counts
        .iter()
        .map(|(&len, &count)| count as f64 * (len.saturating_sub(1)) as f64 / len.max(1) as f64)
        .sum();
    let pattern_score = raw / n_rows / pattern_counts.len() as f64;

    // Type score: fraction of cells that look like clean values under this
    // dialect. A small epsilon keeps all-unknown files comparable.
    let mut total = 0usize;
    let mut clean = 0usize;
    for rec in records.iter() {
        for cell in rec.iter() {
            total += 1;
            if is_clean_cell(&cell) {
                clean += 1;
            }
        }
    }
    let type_score = if total == 0 {
        0.0
    } else {
        (clean as f64 + 1.0) / (total as f64 + 1.0)
    };

    ScoredDialect {
        dialect: *dialect,
        pattern_score,
        type_score,
        score: pattern_score * type_score,
    }
}

/// Whether a parsed cell looks like a clean value: empty, numeric, date,
/// or text free of other candidate delimiter characters and of bare
/// backslashes. Text still containing candidate delimiters suggests the
/// file was split with the wrong dialect; a backslash suggests an escape
/// sequence that was not processed.
fn is_clean_cell(value: &str) -> bool {
    match DataType::infer(value) {
        DataType::Empty | DataType::Int | DataType::Float | DataType::Date => true,
        DataType::Str => !value
            .chars()
            .any(|ch| ch == '\\' || (ch != ' ' && CANDIDATE_DELIMITERS.contains(&ch))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_comma() {
        let text = "name,age,city\nalice,30,berlin\nbob,25,potsdam\n";
        assert_eq!(detect_dialect(text).delimiter, ',');
    }

    #[test]
    fn detects_semicolon_with_decimal_commas() {
        let text = "name;score\nalice;3,5\nbob;2,25\ncarl;4,75\n";
        assert_eq!(detect_dialect(text).delimiter, ';');
    }

    #[test]
    fn detects_tab() {
        let text = "a\tb\tc\n1\t2\t3\n4\t5\t6\n";
        assert_eq!(detect_dialect(text).delimiter, '\t');
    }

    #[test]
    fn detects_pipe() {
        let text = "a|b|c\n1|2|3\n4|5|6\n";
        assert_eq!(detect_dialect(text).delimiter, '|');
    }

    #[test]
    fn single_column_defaults_to_comma() {
        let text = "just one column\nanother line\n";
        assert_eq!(detect_dialect(text).delimiter, ',');
    }

    #[test]
    fn empty_input_defaults_to_rfc4180() {
        assert_eq!(detect_dialect(""), Dialect::rfc4180());
    }

    #[test]
    fn quoted_commas_do_not_confuse_detection() {
        let text = "name,desc\n\"Smith, J.\",teacher\n\"Lee, A.\",doctor\n\"Wu, B.\",nurse\n";
        let d = detect_dialect(text);
        assert_eq!(d.delimiter, ',');
        assert_eq!(d.quote, Some('"'));
    }

    #[test]
    fn pattern_score_zero_for_unsplit_file() {
        let s = score_dialect("abc\ndef\n", &Dialect::with_delimiter(';'));
        assert_eq!(s.pattern_score, 0.0);
    }

    #[test]
    fn consistent_rows_score_higher_than_ragged() {
        let consistent = score_dialect("a,b\nc,d\ne,f\n", &Dialect::rfc4180());
        let ragged = score_dialect("a,b\nc\ne,f,g\n", &Dialect::rfc4180());
        assert!(consistent.pattern_score > ragged.pattern_score);
    }

    #[test]
    fn verbose_file_with_metadata_still_detects() {
        // Metadata and notes lines have few delimiters; the table body
        // dominates the score.
        let text = "Crime statistics 2020\n\nState,2019,2020\nBerlin,100,120\nHamburg,80,85\nTotal,180,205\n\nSource: statistics office\n";
        assert_eq!(detect_dialect(text).delimiter, ',');
    }

    #[test]
    fn line_budget_truncates_at_newline() {
        let text = "a,b\n".repeat(500);
        let sample = sample_lines(&text, 10);
        assert_eq!(sample.matches('\n').count(), 10);
    }
}
