//! The CSV dialect triple: delimiter, quote character, escape character.

use std::fmt;

/// A CSV dialect, following the formulation of van den Burg et al.
/// ("Wrangling messy CSV files by detecting row and type patterns",
/// DMKD 2019): the triple of delimiter, quote character, and escape
/// character that determines how a text file splits into lines and cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dialect {
    /// Field separator.
    pub delimiter: char,
    /// Quote character wrapping fields that contain the delimiter or line
    /// breaks; `None` when the file uses no quoting.
    pub quote: Option<char>,
    /// Escape character that protects the next character inside a quoted
    /// field (in addition to RFC 4180 quote doubling); usually `\\` or
    /// absent.
    pub escape: Option<char>,
}

impl Dialect {
    /// The RFC 4180 standard dialect: comma-delimited, double-quote
    /// quoting, no escape character (quotes are doubled instead).
    pub fn rfc4180() -> Dialect {
        Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: None,
        }
    }

    /// A dialect with the given delimiter, standard quoting, no escape.
    pub fn with_delimiter(delimiter: char) -> Dialect {
        Dialect {
            delimiter,
            quote: Some('"'),
            escape: None,
        }
    }
}

impl Default for Dialect {
    fn default() -> Self {
        Dialect::rfc4180()
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dialect(delimiter={:?}, quote={:?}, escape={:?})",
            self.delimiter, self.quote, self.escape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4180_defaults() {
        let d = Dialect::default();
        assert_eq!(d.delimiter, ',');
        assert_eq!(d.quote, Some('"'));
        assert_eq!(d.escape, None);
    }

    #[test]
    fn display_is_readable() {
        let d = Dialect::with_delimiter(';');
        assert!(d.to_string().contains("';'"));
    }
}
