//! The retained legacy char-walking parser.
//!
//! This is the original state-machine parser: it walks the input one
//! `char` at a time and allocates an owned `String` per field. It has
//! been superseded as the production path by the block scanner in
//! [`crate::scan`], but is kept verbatim as the **reference
//! implementation** for the differential parity harness: the proptest
//! suite (`tests/parity.rs`), the block-seam regression tests, and the
//! fuzz divergence check all assert that the scanner's output is
//! byte-for-byte identical to this walker, including limit/deadline
//! error kinds.
//!
//! Do not "improve" this module: its value is that it is the simple,
//! obviously-correct formulation of the forgiving RFC 4180 semantics
//! the rest of the system is specified against.

use crate::dialect::Dialect;
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// How many characters the guarded parser consumes between wall-clock
/// deadline checks. `Instant::now` costs tens of nanoseconds; checking
/// every 64Ki characters keeps the overhead unmeasurable while bounding
/// the overshoot past an expired deadline.
pub(crate) const DEADLINE_CHECK_INTERVAL: usize = 1 << 16;

/// [`crate::parse`] via the legacy char-walker, without resource limits.
///
/// The parser never fails: malformed input (e.g. an unterminated quote)
/// degrades gracefully by treating the remainder of the file as the final
/// field, which mirrors the forgiving behaviour of spreadsheet importers
/// that the paper's corpora were produced by.
pub fn parse_legacy(text: &str, dialect: &Dialect) -> Vec<Vec<String>> {
    // With unbounded limits and no deadline, no error path of the guarded
    // parser is reachable.
    try_parse_within_legacy(text, dialect, &Limits::unbounded(), Deadline::none())
        .expect("unbounded parse cannot fail")
}

/// [`parse_legacy`] with [`Limits`] enforced while parsing.
pub fn try_parse_legacy(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
) -> Result<Vec<Vec<String>>, StrudelError> {
    try_parse_within_legacy(text, dialect, limits, Deadline::none())
}

/// [`try_parse_legacy`] with an explicit wall-clock [`Deadline`], checked
/// every [`DEADLINE_CHECK_INTERVAL`] characters.
pub fn try_parse_within_legacy(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
) -> Result<Vec<Vec<String>>, StrudelError> {
    if let Some(max) = limits.max_input_bytes {
        if text.len() as u64 > max {
            return Err(StrudelError::limit(
                LimitKind::InputBytes,
                text.len() as u64,
                max,
            ));
        }
    }

    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.char_indices().peekable();

    // Physical-line accounting (independent of quoting: a quoted field
    // spanning lines still produces physical lines on disk).
    let mut line_start: usize = 0;
    // Total fields produced, for the streaming cell bound.
    let mut n_cells: u64 = 0;
    let mut since_deadline_check: usize = 0;

    #[derive(PartialEq)]
    enum State {
        /// At the start of a field (quoting may begin here).
        FieldStart,
        /// Inside an unquoted field.
        Unquoted,
        /// Inside a quoted field.
        Quoted,
        /// Just saw a quote inside a quoted field: could be the end of the
        /// field or the first half of a doubled quote.
        QuoteInQuoted,
    }

    let mut state = State::FieldStart;

    macro_rules! end_field {
        () => {{
            if let Some(max) = limits.max_cols {
                if record.len() as u64 >= max {
                    return Err(StrudelError::limit(
                        LimitKind::Cols,
                        record.len() as u64 + 1,
                        max,
                    ));
                }
            }
            n_cells += 1;
            if let Some(max) = limits.max_cells {
                if n_cells > max {
                    return Err(StrudelError::limit(LimitKind::Cells, n_cells, max));
                }
            }
            record.push(std::mem::take(&mut field));
            state = State::FieldStart;
        }};
    }
    macro_rules! end_record {
        () => {{
            end_field!();
            if let Some(max) = limits.max_rows {
                if records.len() as u64 >= max {
                    return Err(StrudelError::limit(
                        LimitKind::Rows,
                        records.len() as u64 + 1,
                        max,
                    ));
                }
            }
            records.push(std::mem::take(&mut record));
        }};
    }

    while let Some((idx, ch)) = chars.next() {
        since_deadline_check += 1;
        if since_deadline_check >= DEADLINE_CHECK_INTERVAL {
            since_deadline_check = 0;
            deadline.check()?;
        }
        if ch == '\n' || ch == '\r' {
            line_start = idx + 1;
        } else if let Some(max) = limits.max_line_bytes {
            let line_bytes = (idx - line_start) as u64 + ch.len_utf8() as u64;
            if line_bytes > max {
                return Err(StrudelError::limit(LimitKind::LineBytes, line_bytes, max));
            }
        }
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                    state = State::Unquoted;
                } else {
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
                if let Some(max) = limits.max_quoted_field_bytes {
                    if field.len() as u64 > max {
                        return Err(StrudelError::limit(
                            LimitKind::QuotedFieldBytes,
                            field.len() as u64,
                            max,
                        ));
                    }
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    // Doubled quote: literal quote character.
                    field.push(ch);
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else {
                    // Stray content after a closing quote: keep it, the
                    // file is malformed but we stay total.
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
        }
    }

    // Flush a trailing record without a final newline. A quote state at
    // EOF (unterminated quote, or a closing quote as the very last
    // character) still denotes a field — even an empty one, so that a
    // file ending in `""` keeps its final record.
    if !field.is_empty()
        || !record.is_empty()
        || state == State::Quoted
        || state == State::QuoteInQuoted
    {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_parses_simple_records() {
        assert_eq!(
            parse_legacy("a,b\n1,2\n", &Dialect::rfc4180()),
            vec![vec!["a", "b"], vec!["1", "2"]]
        );
    }

    #[test]
    fn legacy_enforces_limits() {
        let mut limits = Limits::unbounded();
        limits.max_rows = Some(1);
        assert!(matches!(
            try_parse_legacy("a\nb\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Rows,
                ..
            }
        ));
    }
}
