//! # strudel-dialect
//!
//! CSV parsing and dialect detection substrate for the Strudel
//! reproduction. Implements the preprocessing stage of the paper's
//! pipeline (Figure 2): given raw text, detect its dialect — delimiter,
//! quote character, escape character — following the consistency-measure
//! approach of van den Burg et al. (DMKD 2019), then parse the text into a
//! [`strudel_table::Table`].
//!
//! ```
//! use strudel_dialect::read_table;
//!
//! let text = "State;2019;2020\nBerlin;100;120\nHamburg;80;85\n";
//! let (table, dialect) = read_table(text);
//! assert_eq!(dialect.delimiter, ';');
//! assert_eq!(table.n_cols(), 3);
//! assert_eq!(table.cell(1, 1).numeric(), Some(100.0));
//! ```

#![warn(missing_docs)]

mod detect;
mod dialect;
pub mod legacy;
mod parallel;
mod parser;
pub mod raw;
mod scan;
pub mod stream;
mod write;

pub use detect::{
    best_dialect, detect_dialect, score_dialect, try_detect_dialect, ScoredDialect,
    CANDIDATE_DELIMITERS, CANDIDATE_QUOTES, DETECTION_LINE_BUDGET,
};
pub use dialect::Dialect;
pub use parallel::{try_scan_records_chunked, try_scan_records_threaded};
pub use parser::{parse, try_parse, try_parse_within};
pub use raw::{raw_records, RawRecord, Terminator};
pub use scan::{scan_records, try_scan_records, try_scan_records_within, RecordRef, RecordsRef};
pub use stream::{RecordEnd, RecordTracker, Utf8Feeder};
pub use write::{write_delimited, write_field};

// Re-export the shared error/limit types so downstream crates can use
// the fallible API without a direct `strudel-table` dependency.
pub use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

use strudel_table::{Cell, CellRef, Table, TableRef};

/// The UTF-8 byte-order mark, as emitted by Excel's "CSV UTF-8" export.
pub const UTF8_BOM: char = '\u{FEFF}';

/// Strip a leading UTF-8 byte-order mark if present. Spreadsheet
/// exports routinely carry one; left in place it would glue itself to
/// the first cell's value and break type inference.
pub fn strip_bom(text: &str) -> &str {
    text.strip_prefix(UTF8_BOM).unwrap_or(text)
}

/// Detect the dialect of `text`, parse it, and build a [`Table`].
///
/// This is the standard entry point of the Strudel pipeline for raw text
/// input. A leading UTF-8 BOM is stripped. The resulting table is *not*
/// cropped; call [`Table::cropped`] when marginal empty lines/columns
/// should be removed (the paper's data preparation does so).
pub fn read_table(text: &str) -> (Table, Dialect) {
    let text = strip_bom(text);
    let dialect = detect_dialect(text);
    let table = read_table_with(text, &dialect);
    (table, dialect)
}

/// Parse `text` under a known dialect and build a [`Table`]. A leading
/// UTF-8 BOM is stripped.
///
/// The grid is built directly from the zero-copy scanner output: cells
/// are constructed straight from borrowed field slices, without the
/// intermediate owned `Vec<Vec<String>>` of [`parse`].
pub fn read_table_with(text: &str, dialect: &Dialect) -> Table {
    table_from_records(&scan_records(strip_bom(text), dialect))
}

/// Assemble the padded cell grid from borrowed records.
fn table_from_records(records: &RecordsRef<'_>) -> Table {
    let n_rows = records.n_records();
    let n_cols = records.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut cells = Vec::with_capacity(n_rows * n_cols);
    for rec in records.iter() {
        let len = rec.len();
        for field in rec.iter() {
            cells.push(Cell::new(field));
        }
        for _ in len..n_cols {
            cells.push(Cell::empty());
        }
    }
    Table::from_cell_grid(cells, n_rows, n_cols)
}

/// Assemble the padded **borrowed** cell grid from borrowed records:
/// field values stay `Cow` slices of the input buffer (owned only for
/// unescaped fields), so no cell text is copied. The borrowed
/// counterpart of [`table_from_records`], with identical padding and
/// identical inference per cell.
pub fn table_ref_from_records<'a>(records: &RecordsRef<'a>) -> TableRef<'a> {
    let n_rows = records.n_records();
    let n_cols = records.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut cells = Vec::with_capacity(n_rows * n_cols);
    for rec in records.iter() {
        let len = rec.len();
        for field in rec.iter() {
            cells.push(CellRef::new(field));
        }
        for _ in len..n_cols {
            cells.push(CellRef::empty());
        }
    }
    TableRef::from_cell_grid(cells, n_rows, n_cols)
}

/// The zero-copy detection parse: scan `text` (in `n_threads` chunks
/// when `> 1`) under [`Limits`] and a [`Deadline`], check the implied
/// grid dimensions, and build the borrowed table. Returns the records
/// alongside the table so callers can report scan metadata (chunk
/// counts) without re-scanning.
pub fn try_read_table_ref_with<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
    n_threads: usize,
) -> Result<(TableRef<'a>, RecordsRef<'a>), StrudelError> {
    let records = try_scan_records_threaded(strip_bom(text), dialect, limits, deadline, n_threads)?;
    deadline.check()?;
    let n_rows = records.n_records();
    let n_cols = records.iter().map(|r| r.len()).max().unwrap_or(0);
    Table::check_grid_limits(n_rows, n_cols, limits)?;
    Ok((table_ref_from_records(&records), records))
}

/// Decode `bytes` as UTF-8, or report a typed parse error with the byte
/// offset at which decoding failed. The entry point for untrusted raw
/// file contents — the pipeline proper operates on `&str`.
pub fn decode_utf8(bytes: &[u8]) -> Result<&str, StrudelError> {
    std::str::from_utf8(bytes).map_err(|e| {
        let byte = e.valid_up_to() as u64;
        StrudelError::Parse {
            file: None,
            line: bytes[..e.valid_up_to()]
                .iter()
                .filter(|&&b| b == b'\n')
                .count() as u64,
            byte,
            reason: "invalid UTF-8".to_string(),
        }
    })
}

/// [`read_table`] under [`Limits`] and a wall-clock [`Deadline`]: dialect
/// detection, guarded parsing, and guarded grid construction. Every
/// failure is a typed [`StrudelError`]; valid input within the limits
/// yields exactly the table and dialect of the unbounded entry point.
pub fn try_read_table(
    text: &str,
    limits: &Limits,
    deadline: Deadline,
) -> Result<(Table, Dialect), StrudelError> {
    let text = strip_bom(text);
    if let Some(max) = limits.max_input_bytes {
        if text.len() as u64 > max {
            return Err(StrudelError::limit(
                LimitKind::InputBytes,
                text.len() as u64,
                max,
            ));
        }
    }
    let dialect = try_detect_dialect(text, limits, deadline)?;
    deadline.check()?;
    let table = try_read_table_with(text, &dialect, limits, deadline)?;
    Ok((table, dialect))
}

/// [`read_table_with`] under [`Limits`] and a wall-clock [`Deadline`].
pub fn try_read_table_with(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
) -> Result<Table, StrudelError> {
    let records = try_scan_records_within(strip_bom(text), dialect, limits, deadline)?;
    deadline.check()?;
    // The scanner bounds streamed rows/cols/cells, but the *padded* grid
    // (rows × widest row) can still exceed the cell bound — check the
    // implied dimensions before allocating, exactly as
    // [`Table::try_from_rows`] does.
    let n_rows = records.n_records();
    let n_cols = records.iter().map(|r| r.len()).max().unwrap_or(0);
    Table::check_grid_limits(n_rows, n_cols, limits)?;
    Ok(table_from_records(&records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_table_roundtrip() {
        let (table, dialect) = read_table("a,b\n1,2\n");
        assert_eq!(dialect, Dialect::rfc4180());
        assert_eq!(table.n_rows(), 2);
        assert_eq!(table.n_cols(), 2);
    }

    #[test]
    fn bom_is_stripped() {
        let (table, _) = read_table("\u{FEFF}a,b\n1,2\n");
        assert_eq!(table.cell(0, 0).raw(), "a");
        let (table, _) = read_table("\u{FEFF}2019,2020\n");
        assert!(table.cell(0, 0).dtype().is_numeric());
    }

    #[test]
    fn read_table_pads_ragged_rows() {
        let (table, _) = read_table("a,b,c\n1\n");
        assert_eq!(table.n_cols(), 3);
        assert!(table.cell(1, 2).is_empty());
    }
}
