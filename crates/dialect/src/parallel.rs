//! Chunk-parallel block scanning with speculative entry states and
//! seam repair.
//!
//! The serial scanner ([`crate::scan`]) is resumable: its entire state
//! between records is a small [`ScanState`] of absolute byte offsets.
//! The parallel scanner exploits that to cut one input into chunks at
//! candidate record boundaries (one past a `\n` byte near each even
//! split point), scan every chunk concurrently, and stitch the results
//! back into a single record stream:
//!
//! 1. **Speculation.** A byte one past a `\n` *usually* starts a fresh
//!    record — unless the `\n` was quoted content, the second byte of a
//!    `\r\n` pair mid-field, or escaped. Each worker scans its chunk
//!    assuming the clean-entry state ([`ScanState::clean_at`]); the
//!    stitcher later compares that assumption against the true carried
//!    state. CSV's structure makes the speculation overwhelmingly right
//!    on real data, and *checking* it is exact, so a wrong guess costs
//!    time, never correctness.
//! 2. **Chunk scans record, never fail.** Workers scan under a copy of
//!    the limits with the streaming row/col/cell bounds disabled (those
//!    are global counters a chunk cannot know) but line-length and
//!    quoted-field bounds active, recording any local limit error
//!    instead of aborting the pool. Alongside the field spans each
//!    worker records the byte offset (and `line_start`) of every record
//!    boundary it produced — the synchronisation points for repair.
//! 3. **Stitch + seam repair.** A single pass walks the chunks in
//!    order, holding the one true [`Sink`] (full limits, global
//!    row/col/cell counters). When the carried state equals the
//!    chunk's assumed entry state, the chunk's spans are *spliced*:
//!    replayed through `Sink::end_field`/`end_record`, which reapplies
//!    the row/col/cell checks in exactly the serial order at O(1) per
//!    field. Otherwise the seam is *repaired*: the scanner re-runs
//!    serially from the true state until a record boundary lands on one
//!    of the chunk's recorded boundaries (with matching `line_start`
//!    when a line bound is set), then splices the remainder. A chunk
//!    that never re-synchronises has simply been scanned serially — the
//!    fallback for unresolvable entry parity. Because CSV
//!    self-synchronises at the next unquoted record end, repairs
//!    typically cover a single record.
//!
//! The result is **bit-identical** to the serial scan — same spans,
//! same copy-on-write flags, same limit-error kind/actual/max — which
//! `tests/parallel_parity.rs` and the fuzz harness's chunk dimension
//! enforce. The wall-clock deadline is polled per chunk-local 64 KiB of
//! classified blocks ([`crate::scan::DEADLINE_CHECK_BYTES`]); a trip in
//! any worker surfaces the same `LimitKind::WallClock` payload as the
//! serial scanner (all deadline errors carry `actual = budget + 1`).

use crate::dialect::Dialect;
use crate::scan::{
    finish_scan, scan_blocks_range, try_scan_records_within, FieldSpan, RecordsRef, ScanState,
    Sink, Specials,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// Inputs below this size are scanned serially: chunk bookkeeping and
/// thread hand-off would dominate the scan itself.
pub(crate) const MIN_PARALLEL_BYTES: usize = 64 * 1024;

/// [`crate::try_scan_records_within`] on a worker pool: scan `text` in
/// `n_threads` chunks split at candidate record boundaries, with seam
/// repair guaranteeing a result identical to the serial scan (records,
/// spans, and limit-error payloads alike).
///
/// `n_threads` is an explicit worker count — resolve `0`/env-driven
/// knobs with `strudel::batch::resolve_threads` first. Values `<= 1`,
/// small inputs, dialects outside the block scanner's reach, and inputs
/// without usable split points all fall back to the serial scan.
pub fn try_scan_records_threaded<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
    n_threads: usize,
) -> Result<RecordsRef<'a>, StrudelError> {
    if n_threads <= 1 || text.len() < MIN_PARALLEL_BYTES {
        return try_scan_records_within(text, dialect, limits, deadline);
    }
    try_scan_records_bounded(text, dialect, limits, deadline, n_threads, n_threads)
}

/// Deterministic chunked scan for the parity harness: exactly the
/// stitching path of [`try_scan_records_threaded`] with a caller-chosen
/// chunk count and no size floor, chunks scanned on the calling thread.
/// Exposed so proptests and the fuzz harness can drive pathological
/// seam placements reproducibly.
pub fn try_scan_records_chunked<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
    n_chunks: usize,
) -> Result<RecordsRef<'a>, StrudelError> {
    try_scan_records_bounded(text, dialect, limits, deadline, n_chunks.max(1), 1)
}

fn try_scan_records_bounded<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
    n_chunks: usize,
    n_threads: usize,
) -> Result<RecordsRef<'a>, StrudelError> {
    let sp = match Specials::of(dialect) {
        Some(sp) => sp,
        // Exotic dialects take the scalar fallback, which is serial.
        None => return try_scan_records_within(text, dialect, limits, deadline),
    };
    if let Some(max) = limits.max_input_bytes {
        if text.len() as u64 > max {
            return Err(StrudelError::limit(
                LimitKind::InputBytes,
                text.len() as u64,
                max,
            ));
        }
    }
    let bounds = chunk_bounds(text, n_chunks);
    if bounds.len() <= 2 {
        return try_scan_records_within(text, dialect, limits, deadline);
    }

    // Worker copy of the limits: streaming row/col/cell bounds are
    // global counters the stitcher replays; everything else (line and
    // quoted-field byte bounds) is locally checkable given the entry
    // speculation, which the stitcher verifies before trusting it.
    let local = Limits {
        max_rows: None,
        max_cols: None,
        max_cells: None,
        ..*limits
    };
    let chunks = scan_chunks(text, dialect, &sp, &local, deadline, &bounds, n_threads);
    let n_chunks = chunks.len();
    let (fields, record_ends) = stitch(text, dialect, &sp, limits, deadline, chunks)?;
    Ok(RecordsRef::from_parts(
        text,
        *dialect,
        fields,
        record_ends,
        n_chunks,
    ))
}

/// Chunk boundary offsets: `[0, b_1, .., b_{k-1}, len]`, strictly
/// increasing, every interior boundary one past a `\n` byte. Boundaries
/// are placed at the first `\n` at or after each even split point; when
/// a stretch has no `\n` the chunk simply grows (worst case: one chunk,
/// and the caller falls back to a serial scan).
fn chunk_bounds(text: &str, n_chunks: usize) -> Vec<usize> {
    let bytes = text.as_bytes();
    let len = bytes.len();
    let mut bounds = Vec::with_capacity(n_chunks + 1);
    bounds.push(0);
    for i in 1..n_chunks {
        let target = (len * i / n_chunks).max(*bounds.last().unwrap());
        match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(off) if target + off + 1 < len => bounds.push(target + off + 1),
            _ => break,
        }
    }
    bounds.push(len);
    bounds
}

/// One worker's speculative scan of `[from, to)`.
struct ChunkScan {
    from: usize,
    to: usize,
    /// Fields and record ends exactly as a [`Sink`] records them, but
    /// local to the chunk (indices into `fields`).
    fields: Vec<FieldSpan>,
    record_ends: Vec<usize>,
    /// Byte start of each record the chunk produced, **plus** the start
    /// of the trailing partial record: `rec_starts[0] == from`, length
    /// `record_ends.len() + 1`. These are the positions at which a
    /// repair scan can re-synchronise with the speculative result.
    rec_starts: Vec<usize>,
    /// `line_start` in effect at each entry of `rec_starts` — compared
    /// during repair only when a line-length bound is configured.
    rec_line_starts: Vec<usize>,
    /// Carried state at the chunk end, or the first local limit /
    /// deadline error. An error is only surfaced when the stitcher
    /// proves the chunk's entry speculation right (directly or via
    /// repair); all spans recorded before the error stay usable.
    end: Result<ScanState, StrudelError>,
}

fn scan_chunk(
    text: &str,
    dialect: &Dialect,
    sp: &Specials,
    local: &Limits,
    deadline: Deadline,
    from: usize,
    to: usize,
) -> ChunkScan {
    let mut sink = Sink::new(local);
    let mut rec_starts = vec![from];
    let mut rec_line_starts = vec![from];
    let scan = scan_blocks_range(
        text,
        dialect,
        sp,
        local,
        deadline,
        &mut sink,
        from,
        to,
        ScanState::clean_at(from),
        |after, line_start| {
            rec_starts.push(after);
            rec_line_starts.push(line_start);
            false
        },
    );
    ChunkScan {
        from,
        to,
        fields: sink.fields,
        record_ends: sink.record_ends,
        rec_starts,
        rec_line_starts,
        end: scan.map(|r| r.st),
    }
}

/// Scan every chunk, on a pool of `n_threads` workers when `> 1`.
fn scan_chunks(
    text: &str,
    dialect: &Dialect,
    sp: &Specials,
    local: &Limits,
    deadline: Deadline,
    bounds: &[usize],
    n_threads: usize,
) -> Vec<ChunkScan> {
    let n = bounds.len() - 1;
    if n_threads <= 1 {
        return (0..n)
            .map(|i| scan_chunk(text, dialect, sp, local, deadline, bounds[i], bounds[i + 1]))
            .collect();
    }
    let slots: Vec<Mutex<Option<ChunkScan>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n_threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cs = scan_chunk(text, dialect, sp, local, deadline, bounds[i], bounds[i + 1]);
                *slots[i].lock().expect("chunk slot poisoned") = Some(cs);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("chunk slot poisoned")
                .expect("worker pool completed every chunk")
        })
        .collect()
}

/// Replay a chunk's recorded spans from record `from_rec` onward
/// through the true sink, reapplying the streaming row/col/cell checks
/// in exactly the serial order.
fn splice(sink: &mut Sink, ch: &ChunkScan, from_rec: usize) -> Result<(), StrudelError> {
    let mut idx = if from_rec == 0 {
        0
    } else {
        ch.record_ends[from_rec - 1]
    };
    for &re in &ch.record_ends[from_rec..] {
        while idx + 1 < re {
            sink.end_field(ch.fields[idx])?;
            idx += 1;
        }
        sink.end_record(ch.fields[idx])?;
        idx += 1;
    }
    // Fields of the trailing partial record continue into the next
    // chunk (or the EOF flush); the open record's length carries in the
    // sink.
    for &f in &ch.fields[idx..] {
        sink.end_field(f)?;
    }
    Ok(())
}

/// Walk the chunks in order with the single true sink, splicing
/// verified speculative results and serially repairing seams where the
/// speculation missed.
fn stitch(
    text: &str,
    dialect: &Dialect,
    sp: &Specials,
    limits: &Limits,
    deadline: Deadline,
    chunks: Vec<ChunkScan>,
) -> Result<(Vec<FieldSpan>, Vec<usize>), StrudelError> {
    // `line_start` only feeds the line-length bound, so entry states
    // and repair sync points need only agree on it when that bound is
    // configured (the `\r\n`-pair quirk makes the speculative value one
    // byte off whenever a chunk boundary follows a CRLF terminator).
    let line_sensitive = limits.max_line_bytes.is_some();
    let mut sink = Sink::new(limits);
    let mut carry = ScanState::clean_at(0);
    for ch in chunks {
        let assumed = ScanState::clean_at(ch.from);
        let entry_ok = if line_sensitive {
            carry == assumed
        } else {
            carry.eq_ignoring_line_start(&assumed)
        };
        let splice_from = if entry_ok {
            Some(0)
        } else {
            // Seam repair: rescan from the true state until a record
            // boundary lands on one the speculative scan recorded.
            let mut sync = None;
            let scan = scan_blocks_range(
                text,
                dialect,
                sp,
                limits,
                deadline,
                &mut sink,
                ch.from,
                ch.to,
                carry,
                |after, line_start| match ch.rec_starts.binary_search(&after) {
                    Ok(j) if !line_sensitive || ch.rec_line_starts[j] == line_start => {
                        sync = Some(j);
                        true
                    }
                    _ => false,
                },
            )?;
            if scan.stopped {
                sync
            } else {
                // Never re-synchronised: the chunk has been scanned
                // serially end to end — the per-chunk fallback.
                carry = scan.st;
                None
            }
        };
        if let Some(j) = splice_from {
            splice(&mut sink, &ch, j)?;
            // Surface a worker's local error only now: every span it
            // recorded precedes the error position, so the replayed
            // global checks fire first exactly when the serial scan's
            // would have.
            carry = ch.end?;
        }
    }
    finish_scan(text, dialect, limits, &mut sink, carry)?;
    Ok((sink.fields, sink.record_ends))
}
