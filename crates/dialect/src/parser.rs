//! Owned-rows CSV parsing API, parameterised by a [`Dialect`].
//!
//! The parser implements RFC 4180 semantics generalised to arbitrary
//! dialects: fields may be wrapped in the quote character, a doubled quote
//! inside a quoted field denotes a literal quote, an optional escape
//! character protects the next character, and quoted fields may contain
//! embedded line breaks. Both `\n` and `\r\n` (and bare `\r`) are accepted
//! as record terminators.
//!
//! Since the block-scanner rewrite these entry points are thin adapters:
//! the actual parsing is done zero-copy by [`crate::scan`], and the
//! borrowed records are materialised into the historical
//! `Vec<Vec<String>>` shape for callers that want owned rows. New code
//! that only needs to *look* at fields should call
//! [`crate::scan_records`] / [`crate::try_scan_records`] directly and
//! skip the per-field allocations.
//!
//! [`try_parse`] is the guarded entry point: it enforces [`Limits`] (input
//! size, physical line length, rows, columns, cells, quoted-field length)
//! and an optional wall-clock [`Deadline`] while parsing, so a
//! pathological input fails with a typed [`StrudelError`] instead of
//! exhausting memory or stalling. [`parse`] is the unbounded entry
//! point; it cannot fail.

use crate::dialect::Dialect;
use crate::scan::try_scan_records_within;
use strudel_table::{Deadline, Limits, StrudelError};

/// Parse `text` into records of fields under the given dialect, without
/// resource limits.
///
/// The parser never fails: malformed input (e.g. an unterminated quote)
/// degrades gracefully by treating the remainder of the file as the final
/// field, which mirrors the forgiving behaviour of spreadsheet importers
/// that the paper's corpora were produced by.
pub fn parse(text: &str, dialect: &Dialect) -> Vec<Vec<String>> {
    // With unbounded limits and no deadline, no error path of the guarded
    // parser is reachable.
    try_parse_within(text, dialect, &Limits::unbounded(), Deadline::none())
        .expect("unbounded parse cannot fail")
}

/// [`parse`] with [`Limits`] enforced while parsing.
///
/// Returns [`StrudelError::LimitExceeded`] at the first violated bound;
/// partial output is discarded. The limits are checked *during* the
/// parse, so a 10 GiB single-line file fails at `max_line_bytes` after
/// reading that many bytes, not after materialising the whole record.
pub fn try_parse(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
) -> Result<Vec<Vec<String>>, StrudelError> {
    try_parse_within(text, dialect, limits, Deadline::none())
}

/// [`try_parse`] with an explicit wall-clock [`Deadline`], polled once
/// per block of scanned input. Used by the batch engine's per-file
/// budget.
pub fn try_parse_within(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
) -> Result<Vec<Vec<String>>, StrudelError> {
    Ok(try_scan_records_within(text, dialect, limits, deadline)?.to_owned_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_table::LimitKind;

    fn rows(text: &str) -> Vec<Vec<String>> {
        parse(text, &Dialect::rfc4180())
    }

    #[test]
    fn simple_records() {
        assert_eq!(
            rows("a,b,c\n1,2,3\n"),
            vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]
        );
    }

    #[test]
    fn trailing_record_without_newline() {
        assert_eq!(rows("a,b"), vec![vec!["a", "b"]]);
    }

    #[test]
    fn empty_fields() {
        assert_eq!(rows(",,\n"), vec![vec!["", "", ""]]);
    }

    #[test]
    fn quoted_field_with_delimiter() {
        assert_eq!(rows("\"a,b\",c\n"), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn doubled_quote_is_literal() {
        assert_eq!(rows("\"say \"\"hi\"\"\"\n"), vec![vec!["say \"hi\""]]);
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        assert_eq!(rows("\"a\nb\",c\n"), vec![vec!["a\nb", "c"]]);
    }

    #[test]
    fn crlf_and_bare_cr_terminate_records() {
        assert_eq!(rows("a\r\nb\rc\n"), vec![vec!["a"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn semicolon_dialect() {
        let d = Dialect::with_delimiter(';');
        assert_eq!(
            parse("a;b\n1,5;2,5\n", &d),
            vec![vec!["a", "b"], vec!["1,5", "2,5"]]
        );
    }

    #[test]
    fn tab_dialect() {
        let d = Dialect::with_delimiter('\t');
        assert_eq!(parse("a\tb\n", &d), vec![vec!["a", "b"]]);
    }

    #[test]
    fn escape_character_protects_delimiter() {
        let d = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        assert_eq!(parse("a\\,b,c\n", &d), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn unterminated_quote_consumes_rest() {
        assert_eq!(rows("\"abc\ndef"), vec![vec!["abc\ndef"]]);
    }

    #[test]
    fn no_quote_dialect_treats_quotes_literally() {
        let d = Dialect {
            delimiter: ',',
            quote: None,
            escape: None,
        };
        assert_eq!(parse("\"a\",b\n", &d), vec![vec!["\"a\"", "b"]]);
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(rows("").is_empty());
    }

    #[test]
    fn lone_newline_yields_one_empty_record() {
        assert_eq!(rows("\n"), vec![vec![""]]);
    }

    #[test]
    fn stray_text_after_closing_quote_is_kept() {
        assert_eq!(rows("\"ab\"cd,e\n"), vec![vec!["abcd", "e"]]);
    }

    #[test]
    fn empty_quoted_field_at_eof_keeps_its_record() {
        // Regression: `""` with no trailing newline used to vanish — the
        // EOF flush ignored the QuoteInQuoted state when both the field
        // and the record were empty.
        assert_eq!(rows("\"\""), vec![vec![""]]);
        assert_eq!(rows("a,\"\""), vec![vec!["a", ""]]);
        assert_eq!(rows("\""), vec![vec![""]]);
    }

    #[test]
    fn limit_input_bytes() {
        let mut limits = Limits::unbounded();
        limits.max_input_bytes = Some(4);
        let err = try_parse("a,b,c\n", &Dialect::rfc4180(), &limits).unwrap_err();
        assert!(matches!(
            err,
            StrudelError::LimitExceeded {
                limit: LimitKind::InputBytes,
                actual: 6,
                max: 4,
                ..
            }
        ));
    }

    #[test]
    fn limit_line_bytes_triggers_on_long_line_even_quoted() {
        let mut limits = Limits::unbounded();
        limits.max_line_bytes = Some(8);
        let long = format!("{}\n", "x".repeat(32));
        assert!(matches!(
            try_parse(&long, &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::LineBytes,
                ..
            }
        ));
        // A quoted field spanning many short physical lines is fine …
        let quoted = "\"a\nb\nc\nd\ne\",x\n";
        assert!(try_parse(quoted, &Dialect::rfc4180(), &limits).is_ok());
        // … but a single long physical line inside quotes is not.
        let quoted_long = format!("\"{}\"\n", "y".repeat(32));
        assert!(try_parse(&quoted_long, &Dialect::rfc4180(), &limits).is_err());
    }

    #[test]
    fn limit_rows_cols_cells() {
        let mut limits = Limits::unbounded();
        limits.max_rows = Some(2);
        assert!(matches!(
            try_parse("a\nb\nc\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Rows,
                actual: 3,
                max: 2,
                ..
            }
        ));

        let mut limits = Limits::unbounded();
        limits.max_cols = Some(2);
        assert!(matches!(
            try_parse("a,b,c\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Cols,
                actual: 3,
                max: 2,
                ..
            }
        ));

        let mut limits = Limits::unbounded();
        limits.max_cells = Some(3);
        assert!(matches!(
            try_parse("a,b\nc,d\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Cells,
                actual: 4,
                max: 3,
                ..
            }
        ));
    }

    #[test]
    fn limit_quoted_field_bytes_caps_unterminated_quotes() {
        let mut limits = Limits::unbounded();
        limits.max_quoted_field_bytes = Some(8);
        // Unterminated quote: without the cap the whole remainder would
        // be buffered into one field.
        let text = format!("\"{}", "z".repeat(100));
        assert!(matches!(
            try_parse(&text, &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::QuotedFieldBytes,
                ..
            }
        ));
        assert!(try_parse("\"short\",x\n", &Dialect::rfc4180(), &limits).is_ok());
    }

    #[test]
    fn within_limits_matches_unbounded_parse() {
        let text = "Report,,\nState,2019,2020\n\"a,b\",1,2\n";
        let bounded = try_parse(text, &Dialect::rfc4180(), &Limits::default()).unwrap();
        assert_eq!(bounded, rows(text));
    }

    #[test]
    fn expired_deadline_fails_large_input() {
        // The deadline is only polled every DEADLINE_CHECK_BYTES bytes
        // of classified blocks, so the input must exceed one interval.
        let text = "a,b\n".repeat(crate::scan::DEADLINE_CHECK_BYTES / 2);
        let deadline = Deadline::after(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = try_parse_within(&text, &Dialect::rfc4180(), &Limits::unbounded(), deadline)
            .unwrap_err();
        assert!(matches!(
            err,
            StrudelError::LimitExceeded {
                limit: LimitKind::WallClock,
                ..
            }
        ));
    }
}
