//! State-machine CSV parser parameterised by a [`Dialect`].
//!
//! The parser implements RFC 4180 semantics generalised to arbitrary
//! dialects: fields may be wrapped in the quote character, a doubled quote
//! inside a quoted field denotes a literal quote, an optional escape
//! character protects the next character, and quoted fields may contain
//! embedded line breaks. Both `\n` and `\r\n` (and bare `\r`) are accepted
//! as record terminators.

use crate::dialect::Dialect;

/// Parse `text` into records of fields under the given dialect.
///
/// The parser never fails: malformed input (e.g. an unterminated quote)
/// degrades gracefully by treating the remainder of the file as the final
/// field, which mirrors the forgiving behaviour of spreadsheet importers
/// that the paper's corpora were produced by.
pub fn parse(text: &str, dialect: &Dialect) -> Vec<Vec<String>> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();

    #[derive(PartialEq)]
    enum State {
        /// At the start of a field (quoting may begin here).
        FieldStart,
        /// Inside an unquoted field.
        Unquoted,
        /// Inside a quoted field.
        Quoted,
        /// Just saw a quote inside a quoted field: could be the end of the
        /// field or the first half of a doubled quote.
        QuoteInQuoted,
    }

    let mut state = State::FieldStart;

    macro_rules! end_field {
        () => {{
            record.push(std::mem::take(&mut field));
            state = State::FieldStart;
        }};
    }
    macro_rules! end_record {
        () => {{
            end_field!();
            records.push(std::mem::take(&mut record));
        }};
    }

    while let Some(ch) = chars.next() {
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                    state = State::Unquoted;
                } else {
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                } else if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    // Doubled quote: literal quote character.
                    field.push(ch);
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    end_record!();
                } else {
                    // Stray content after a closing quote: keep it, the
                    // file is malformed but we stay total.
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
        }
    }

    // Flush a trailing record without a final newline.
    if !field.is_empty() || !record.is_empty() || state == State::Quoted {
        record.push(field);
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(text: &str) -> Vec<Vec<String>> {
        parse(text, &Dialect::rfc4180())
    }

    #[test]
    fn simple_records() {
        assert_eq!(
            rows("a,b,c\n1,2,3\n"),
            vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]
        );
    }

    #[test]
    fn trailing_record_without_newline() {
        assert_eq!(rows("a,b"), vec![vec!["a", "b"]]);
    }

    #[test]
    fn empty_fields() {
        assert_eq!(rows(",,\n"), vec![vec!["", "", ""]]);
    }

    #[test]
    fn quoted_field_with_delimiter() {
        assert_eq!(rows("\"a,b\",c\n"), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn doubled_quote_is_literal() {
        assert_eq!(rows("\"say \"\"hi\"\"\"\n"), vec![vec!["say \"hi\""]]);
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        assert_eq!(rows("\"a\nb\",c\n"), vec![vec!["a\nb", "c"]]);
    }

    #[test]
    fn crlf_and_bare_cr_terminate_records() {
        assert_eq!(rows("a\r\nb\rc\n"), vec![vec!["a"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn semicolon_dialect() {
        let d = Dialect::with_delimiter(';');
        assert_eq!(
            parse("a;b\n1,5;2,5\n", &d),
            vec![vec!["a", "b"], vec!["1,5", "2,5"]]
        );
    }

    #[test]
    fn tab_dialect() {
        let d = Dialect::with_delimiter('\t');
        assert_eq!(parse("a\tb\n", &d), vec![vec!["a", "b"]]);
    }

    #[test]
    fn escape_character_protects_delimiter() {
        let d = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        assert_eq!(parse("a\\,b,c\n", &d), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn unterminated_quote_consumes_rest() {
        assert_eq!(rows("\"abc\ndef"), vec![vec!["abc\ndef"]]);
    }

    #[test]
    fn no_quote_dialect_treats_quotes_literally() {
        let d = Dialect {
            delimiter: ',',
            quote: None,
            escape: None,
        };
        assert_eq!(parse("\"a\",b\n", &d), vec![vec!["\"a\"", "b"]]);
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(rows("").is_empty());
    }

    #[test]
    fn lone_newline_yields_one_empty_record() {
        assert_eq!(rows("\n"), vec![vec![""]]);
    }

    #[test]
    fn stray_text_after_closing_quote_is_kept() {
        assert_eq!(rows("\"ab\"cd,e\n"), vec![vec!["abcd", "e"]]);
    }
}
