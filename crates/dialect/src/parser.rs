//! State-machine CSV parser parameterised by a [`Dialect`].
//!
//! The parser implements RFC 4180 semantics generalised to arbitrary
//! dialects: fields may be wrapped in the quote character, a doubled quote
//! inside a quoted field denotes a literal quote, an optional escape
//! character protects the next character, and quoted fields may contain
//! embedded line breaks. Both `\n` and `\r\n` (and bare `\r`) are accepted
//! as record terminators.
//!
//! [`try_parse`] is the guarded entry point: it enforces [`Limits`] (input
//! size, physical line length, rows, columns, cells, quoted-field length)
//! and an optional wall-clock [`Deadline`] while parsing, so a
//! pathological input fails with a typed [`StrudelError`] instead of
//! exhausting memory or stalling. [`parse`] is the unbounded legacy entry
//! point; it cannot fail.

use crate::dialect::Dialect;
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// How many characters the guarded parser consumes between wall-clock
/// deadline checks. `Instant::now` costs tens of nanoseconds; checking
/// every 64Ki characters keeps the overhead unmeasurable while bounding
/// the overshoot past an expired deadline.
const DEADLINE_CHECK_INTERVAL: usize = 1 << 16;

/// Parse `text` into records of fields under the given dialect, without
/// resource limits.
///
/// The parser never fails: malformed input (e.g. an unterminated quote)
/// degrades gracefully by treating the remainder of the file as the final
/// field, which mirrors the forgiving behaviour of spreadsheet importers
/// that the paper's corpora were produced by.
pub fn parse(text: &str, dialect: &Dialect) -> Vec<Vec<String>> {
    // With unbounded limits and no deadline, no error path of the guarded
    // parser is reachable.
    try_parse_within(text, dialect, &Limits::unbounded(), Deadline::none())
        .expect("unbounded parse cannot fail")
}

/// [`parse`] with [`Limits`] enforced while parsing.
///
/// Returns [`StrudelError::LimitExceeded`] at the first violated bound;
/// partial output is discarded. The limits are checked *during* the
/// parse, so a 10 GiB single-line file fails at `max_line_bytes` after
/// reading that many bytes, not after materialising the whole record.
pub fn try_parse(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
) -> Result<Vec<Vec<String>>, StrudelError> {
    try_parse_within(text, dialect, limits, Deadline::none())
}

/// [`try_parse`] with an explicit wall-clock [`Deadline`], checked every
/// [`DEADLINE_CHECK_INTERVAL`] characters. Used by the batch engine's
/// per-file budget.
pub fn try_parse_within(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
) -> Result<Vec<Vec<String>>, StrudelError> {
    if let Some(max) = limits.max_input_bytes {
        if text.len() as u64 > max {
            return Err(StrudelError::limit(
                LimitKind::InputBytes,
                text.len() as u64,
                max,
            ));
        }
    }

    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.char_indices().peekable();

    // Physical-line accounting (independent of quoting: a quoted field
    // spanning lines still produces physical lines on disk).
    let mut line_start: usize = 0;
    // Total fields produced, for the streaming cell bound.
    let mut n_cells: u64 = 0;
    let mut since_deadline_check: usize = 0;

    #[derive(PartialEq)]
    enum State {
        /// At the start of a field (quoting may begin here).
        FieldStart,
        /// Inside an unquoted field.
        Unquoted,
        /// Inside a quoted field.
        Quoted,
        /// Just saw a quote inside a quoted field: could be the end of the
        /// field or the first half of a doubled quote.
        QuoteInQuoted,
    }

    let mut state = State::FieldStart;

    macro_rules! end_field {
        () => {{
            if let Some(max) = limits.max_cols {
                if record.len() as u64 >= max {
                    return Err(StrudelError::limit(
                        LimitKind::Cols,
                        record.len() as u64 + 1,
                        max,
                    ));
                }
            }
            n_cells += 1;
            if let Some(max) = limits.max_cells {
                if n_cells > max {
                    return Err(StrudelError::limit(LimitKind::Cells, n_cells, max));
                }
            }
            record.push(std::mem::take(&mut field));
            state = State::FieldStart;
        }};
    }
    macro_rules! end_record {
        () => {{
            end_field!();
            if let Some(max) = limits.max_rows {
                if records.len() as u64 >= max {
                    return Err(StrudelError::limit(
                        LimitKind::Rows,
                        records.len() as u64 + 1,
                        max,
                    ));
                }
            }
            records.push(std::mem::take(&mut record));
        }};
    }

    while let Some((idx, ch)) = chars.next() {
        since_deadline_check += 1;
        if since_deadline_check >= DEADLINE_CHECK_INTERVAL {
            since_deadline_check = 0;
            deadline.check()?;
        }
        if ch == '\n' || ch == '\r' {
            line_start = idx + 1;
        } else if let Some(max) = limits.max_line_bytes {
            let line_bytes = (idx - line_start) as u64 + ch.len_utf8() as u64;
            if line_bytes > max {
                return Err(StrudelError::limit(LimitKind::LineBytes, line_bytes, max));
            }
        }
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                    state = State::Unquoted;
                } else {
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
                if let Some(max) = limits.max_quoted_field_bytes {
                    if field.len() as u64 > max {
                        return Err(StrudelError::limit(
                            LimitKind::QuotedFieldBytes,
                            field.len() as u64,
                            max,
                        ));
                    }
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    // Doubled quote: literal quote character.
                    field.push(ch);
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!();
                } else if ch == '\n' {
                    end_record!();
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    end_record!();
                } else {
                    // Stray content after a closing quote: keep it, the
                    // file is malformed but we stay total.
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
        }
    }

    // Flush a trailing record without a final newline. A quote state at
    // EOF (unterminated quote, or a closing quote as the very last
    // character) still denotes a field — even an empty one, so that a
    // file ending in `""` keeps its final record.
    if !field.is_empty()
        || !record.is_empty()
        || state == State::Quoted
        || state == State::QuoteInQuoted
    {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(text: &str) -> Vec<Vec<String>> {
        parse(text, &Dialect::rfc4180())
    }

    #[test]
    fn simple_records() {
        assert_eq!(
            rows("a,b,c\n1,2,3\n"),
            vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]
        );
    }

    #[test]
    fn trailing_record_without_newline() {
        assert_eq!(rows("a,b"), vec![vec!["a", "b"]]);
    }

    #[test]
    fn empty_fields() {
        assert_eq!(rows(",,\n"), vec![vec!["", "", ""]]);
    }

    #[test]
    fn quoted_field_with_delimiter() {
        assert_eq!(rows("\"a,b\",c\n"), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn doubled_quote_is_literal() {
        assert_eq!(rows("\"say \"\"hi\"\"\"\n"), vec![vec!["say \"hi\""]]);
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        assert_eq!(rows("\"a\nb\",c\n"), vec![vec!["a\nb", "c"]]);
    }

    #[test]
    fn crlf_and_bare_cr_terminate_records() {
        assert_eq!(rows("a\r\nb\rc\n"), vec![vec!["a"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn semicolon_dialect() {
        let d = Dialect::with_delimiter(';');
        assert_eq!(
            parse("a;b\n1,5;2,5\n", &d),
            vec![vec!["a", "b"], vec!["1,5", "2,5"]]
        );
    }

    #[test]
    fn tab_dialect() {
        let d = Dialect::with_delimiter('\t');
        assert_eq!(parse("a\tb\n", &d), vec![vec!["a", "b"]]);
    }

    #[test]
    fn escape_character_protects_delimiter() {
        let d = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        assert_eq!(parse("a\\,b,c\n", &d), vec![vec!["a,b", "c"]]);
    }

    #[test]
    fn unterminated_quote_consumes_rest() {
        assert_eq!(rows("\"abc\ndef"), vec![vec!["abc\ndef"]]);
    }

    #[test]
    fn no_quote_dialect_treats_quotes_literally() {
        let d = Dialect {
            delimiter: ',',
            quote: None,
            escape: None,
        };
        assert_eq!(parse("\"a\",b\n", &d), vec![vec!["\"a\"", "b"]]);
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(rows("").is_empty());
    }

    #[test]
    fn lone_newline_yields_one_empty_record() {
        assert_eq!(rows("\n"), vec![vec![""]]);
    }

    #[test]
    fn stray_text_after_closing_quote_is_kept() {
        assert_eq!(rows("\"ab\"cd,e\n"), vec![vec!["abcd", "e"]]);
    }

    #[test]
    fn empty_quoted_field_at_eof_keeps_its_record() {
        // Regression: `""` with no trailing newline used to vanish — the
        // EOF flush ignored the QuoteInQuoted state when both the field
        // and the record were empty.
        assert_eq!(rows("\"\""), vec![vec![""]]);
        assert_eq!(rows("a,\"\""), vec![vec!["a", ""]]);
        assert_eq!(rows("\""), vec![vec![""]]);
    }

    #[test]
    fn limit_input_bytes() {
        let mut limits = Limits::unbounded();
        limits.max_input_bytes = Some(4);
        let err = try_parse("a,b,c\n", &Dialect::rfc4180(), &limits).unwrap_err();
        assert!(matches!(
            err,
            StrudelError::LimitExceeded {
                limit: LimitKind::InputBytes,
                actual: 6,
                max: 4,
                ..
            }
        ));
    }

    #[test]
    fn limit_line_bytes_triggers_on_long_line_even_quoted() {
        let mut limits = Limits::unbounded();
        limits.max_line_bytes = Some(8);
        let long = format!("{}\n", "x".repeat(32));
        assert!(matches!(
            try_parse(&long, &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::LineBytes,
                ..
            }
        ));
        // A quoted field spanning many short physical lines is fine …
        let quoted = "\"a\nb\nc\nd\ne\",x\n";
        assert!(try_parse(quoted, &Dialect::rfc4180(), &limits).is_ok());
        // … but a single long physical line inside quotes is not.
        let quoted_long = format!("\"{}\"\n", "y".repeat(32));
        assert!(try_parse(&quoted_long, &Dialect::rfc4180(), &limits).is_err());
    }

    #[test]
    fn limit_rows_cols_cells() {
        let mut limits = Limits::unbounded();
        limits.max_rows = Some(2);
        assert!(matches!(
            try_parse("a\nb\nc\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Rows,
                actual: 3,
                max: 2,
                ..
            }
        ));

        let mut limits = Limits::unbounded();
        limits.max_cols = Some(2);
        assert!(matches!(
            try_parse("a,b,c\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Cols,
                actual: 3,
                max: 2,
                ..
            }
        ));

        let mut limits = Limits::unbounded();
        limits.max_cells = Some(3);
        assert!(matches!(
            try_parse("a,b\nc,d\n", &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::Cells,
                actual: 4,
                max: 3,
                ..
            }
        ));
    }

    #[test]
    fn limit_quoted_field_bytes_caps_unterminated_quotes() {
        let mut limits = Limits::unbounded();
        limits.max_quoted_field_bytes = Some(8);
        // Unterminated quote: without the cap the whole remainder would
        // be buffered into one field.
        let text = format!("\"{}", "z".repeat(100));
        assert!(matches!(
            try_parse(&text, &Dialect::rfc4180(), &limits).unwrap_err(),
            StrudelError::LimitExceeded {
                limit: LimitKind::QuotedFieldBytes,
                ..
            }
        ));
        assert!(try_parse("\"short\",x\n", &Dialect::rfc4180(), &limits).is_ok());
    }

    #[test]
    fn within_limits_matches_unbounded_parse() {
        let text = "Report,,\nState,2019,2020\n\"a,b\",1,2\n";
        let bounded = try_parse(text, &Dialect::rfc4180(), &Limits::default()).unwrap();
        assert_eq!(bounded, rows(text));
    }

    #[test]
    fn expired_deadline_fails_large_input() {
        // The deadline is only polled every DEADLINE_CHECK_INTERVAL
        // characters, so the input must exceed one interval.
        let text = "a,b\n".repeat(DEADLINE_CHECK_INTERVAL / 2);
        let deadline = Deadline::after(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = try_parse_within(&text, &Dialect::rfc4180(), &Limits::unbounded(), deadline)
            .unwrap_err();
        assert!(matches!(
            err,
            StrudelError::LimitExceeded {
                limit: LimitKind::WallClock,
                ..
            }
        ));
    }
}
