//! Raw-span record walking: byte-exact field geometry for lossless
//! re-serialisation.
//!
//! The production scan layer ([`crate::scan`]) hands out *content*
//! spans — quoted fields lose their surrounding quotes, doubled quotes
//! and escapes are undone (copy-on-write). That is the right shape for
//! classification, but the packed container format needs the opposite:
//! the exact bytes of every field as they sit in the file, so that
//! re-emitting `join(fields, delimiter) + terminator` per record
//! reproduces the input byte for byte, quoting quirks and all.
//!
//! [`raw_records`] walks the input with the same state machine as the
//! retained legacy parser ([`crate::legacy`]) — the canonical
//! formulation of the forgiving RFC 4180 semantics — but records only
//! byte ranges and terminators, allocating nothing per field beyond the
//! range itself. The central invariant (property-tested and relied on
//! by `strudel-pack`):
//!
//! > The raw spans, the single-character delimiters between them, and
//! > the per-record terminators exactly tile the input. Concatenating
//! > them back reproduces the original text.
//!
//! Record and field counts match [`crate::parse`] on the same input and
//! dialect, so raw record `i` aligns with line `i` of a detected
//! `Structure` — with one byte-preservation exception: an input ending
//! in a lone escape character right after a record boundary yields one
//! extra trailing raw record (the value parsers drop that byte, the raw
//! walker must not). Consumers index `Structure` lines with `get` and
//! treat out-of-range records as unclassified.

use crate::dialect::Dialect;
use std::ops::Range;

/// How a record was terminated on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// End of input, no trailing newline.
    None,
    /// `\n`.
    Lf,
    /// `\r\n`.
    CrLf,
    /// A bare `\r`.
    Cr,
}

impl Terminator {
    /// The terminator's bytes as they appeared in the input.
    pub fn as_str(self) -> &'static str {
        match self {
            Terminator::None => "",
            Terminator::Lf => "\n",
            Terminator::CrLf => "\r\n",
            Terminator::Cr => "\r",
        }
    }

    /// Stable wire code (used by the packed container's skeleton
    /// directives).
    pub fn code(self) -> u8 {
        match self {
            Terminator::None => 0,
            Terminator::Lf => 1,
            Terminator::CrLf => 2,
            Terminator::Cr => 3,
        }
    }

    /// Inverse of [`Terminator::code`].
    pub fn from_code(code: u8) -> Option<Terminator> {
        match code {
            0 => Some(Terminator::None),
            1 => Some(Terminator::Lf),
            2 => Some(Terminator::CrLf),
            3 => Some(Terminator::Cr),
            _ => None,
        }
    }
}

/// One record's raw geometry: the byte range of every field (quotes and
/// escapes included) and the terminator that closed the record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Raw byte range of each field, in order. Ranges exclude the
    /// delimiters between fields and the record terminator.
    pub fields: Vec<Range<usize>>,
    /// What closed the record.
    pub term: Terminator,
}

/// Walk `text` under `dialect` and return the byte-exact geometry of
/// every record. Never fails: malformed input degrades exactly like the
/// legacy parser (an unterminated quote swallows the rest of the file
/// into the final field).
pub fn raw_records(text: &str, dialect: &Dialect) -> Vec<RawRecord> {
    let mut records: Vec<RawRecord> = Vec::new();
    let mut fields: Vec<Range<usize>> = Vec::new();
    let mut field_start: usize = 0;
    let mut chars = text.char_indices().peekable();

    #[derive(PartialEq)]
    enum State {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteInQuoted,
    }
    let mut state = State::FieldStart;

    // `end` is the exclusive byte offset of the field being closed;
    // `next` is where the following field begins.
    macro_rules! end_field {
        ($end:expr, $next:expr) => {{
            fields.push(field_start..$end);
            field_start = $next;
            state = State::FieldStart;
        }};
    }
    macro_rules! end_record {
        ($end:expr, $next:expr, $term:expr) => {{
            end_field!($end, $next);
            records.push(RawRecord {
                fields: std::mem::take(&mut fields),
                term: $term,
            });
        }};
    }

    while let Some((idx, ch)) = chars.next() {
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!(idx, idx + ch.len_utf8());
                } else if ch == '\n' {
                    end_record!(idx, idx + 1, Terminator::Lf);
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                        end_record!(idx, idx + 2, Terminator::CrLf);
                    } else {
                        end_record!(idx, idx + 1, Terminator::Cr);
                    }
                } else if Some(ch) == dialect.escape {
                    chars.next();
                    state = State::Unquoted;
                } else {
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == dialect.delimiter {
                    end_field!(idx, idx + ch.len_utf8());
                } else if ch == '\n' {
                    end_record!(idx, idx + 1, Terminator::Lf);
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                        end_record!(idx, idx + 2, Terminator::CrLf);
                    } else {
                        end_record!(idx, idx + 1, Terminator::Cr);
                    }
                } else if Some(ch) == dialect.escape {
                    chars.next();
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                } else if Some(ch) == dialect.escape {
                    chars.next();
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    // Doubled quote: literal quote character.
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    end_field!(idx, idx + ch.len_utf8());
                } else if ch == '\n' {
                    end_record!(idx, idx + 1, Terminator::Lf);
                } else if ch == '\r' {
                    if chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                        end_record!(idx, idx + 2, Terminator::CrLf);
                    } else {
                        end_record!(idx, idx + 1, Terminator::Cr);
                    }
                } else {
                    // Stray content after a closing quote stays in the
                    // field; the file is malformed but we stay total.
                    state = State::Unquoted;
                }
            }
        }
    }

    // Flush a trailing record without a final newline, under the legacy
    // flush rule (a quote state at EOF still denotes a field, even an
    // empty one) — strengthened to flush whenever raw bytes are pending,
    // so the tiling invariant holds byte-for-byte. The two rules differ
    // only when the input ends in a lone escape character right after a
    // record boundary (the value parsers drop that byte entirely); the
    // raw walker keeps it as one extra single-field record.
    if field_start < text.len()
        || !fields.is_empty()
        || state == State::Quoted
        || state == State::QuoteInQuoted
    {
        fields.push(field_start..text.len());
        records.push(RawRecord {
            fields,
            term: Terminator::None,
        });
    }
    records
}

/// Reassemble the exact input text from its raw geometry — the tiling
/// invariant as a function. `strudel-pack` performs the same
/// concatenation from decoded streams; this helper exists for tests and
/// documentation.
pub fn reassemble(text: &str, dialect: &Dialect, records: &[RawRecord]) -> String {
    let mut out = String::with_capacity(text.len());
    for record in records {
        for (i, range) in record.fields.iter().enumerate() {
            if i > 0 {
                out.push(dialect.delimiter);
            }
            out.push_str(&text[range.clone()]);
        }
        out.push_str(record.term.as_str());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legacy::parse_legacy;

    fn rfc() -> Dialect {
        Dialect::rfc4180()
    }

    #[test]
    fn simple_records_tile_the_input() {
        let text = "a,b\n1,2\n";
        let records = raw_records(text, &rfc());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].fields, vec![0..1, 2..3]);
        assert_eq!(records[0].term, Terminator::Lf);
        assert_eq!(reassemble(text, &rfc(), &records), text);
    }

    #[test]
    fn quoted_fields_keep_their_quotes() {
        let text = "\"a,b\",\"c\"\"d\"\r\nplain\r";
        let records = raw_records(text, &rfc());
        assert_eq!(&text[records[0].fields[0].clone()], "\"a,b\"");
        assert_eq!(&text[records[0].fields[1].clone()], "\"c\"\"d\"");
        assert_eq!(records[0].term, Terminator::CrLf);
        assert_eq!(records[1].term, Terminator::Cr);
        assert_eq!(reassemble(text, &rfc(), &records), text);
    }

    #[test]
    fn quoted_newlines_stay_inside_one_field() {
        let text = "\"line1\nline2\",x\n";
        let records = raw_records(text, &rfc());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fields.len(), 2);
        assert_eq!(reassemble(text, &rfc(), &records), text);
    }

    #[test]
    fn geometry_matches_legacy_record_and_field_counts() {
        let dialects = [
            rfc(),
            Dialect {
                delimiter: ';',
                quote: Some('"'),
                escape: None,
            },
            Dialect {
                delimiter: '\t',
                quote: None,
                escape: Some('\\'),
            },
            Dialect {
                delimiter: ',',
                quote: Some('\''),
                escape: Some('\\'),
            },
        ];
        let inputs = [
            "",
            "\n",
            "a",
            "a,b",
            "a,b\n",
            "\"unterminated",
            "x\"mid\"y,z\n",
            "\"\"",
            "a,\n\n,b\r\n\r",
            "esc\\,aped,next\n",
            "'q;x',y\n",
            "päö,ü\n",
        ];
        for dialect in &dialects {
            for input in inputs {
                let raw = raw_records(input, dialect);
                let parsed = parse_legacy(input, dialect);
                assert_eq!(
                    raw.len(),
                    parsed.len(),
                    "record count for {input:?} under {dialect:?}"
                );
                for (r, p) in raw.iter().zip(&parsed) {
                    assert_eq!(
                        r.fields.len(),
                        p.len(),
                        "field count for {input:?} under {dialect:?}"
                    );
                }
                assert_eq!(
                    reassemble(input, dialect, &raw),
                    input,
                    "tiling for {input:?} under {dialect:?}"
                );
            }
        }
    }

    #[test]
    fn escape_at_eof_and_lone_quote_state_flush() {
        // Escape with nothing to consume: the field exists but is empty
        // in value terms; its raw span is the escape byte.
        let text = "a,\\";
        let records = raw_records(
            text,
            &Dialect {
                delimiter: ',',
                quote: Some('"'),
                escape: Some('\\'),
            },
        );
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fields.len(), 2);
        assert_eq!(&text[records[0].fields[1].clone()], "\\");
        // A file ending in `""` keeps its final (empty) record.
        let text = "a\n\"\"";
        let records = raw_records(text, &rfc());
        assert_eq!(records.len(), 2);
        assert_eq!(&text[records[1].fields[0].clone()], "\"\"");
    }

    #[test]
    fn trailing_lone_escape_is_kept_as_an_extra_record() {
        // The one documented divergence from the value parsers: legacy
        // drops a trailing lone escape byte; the raw walker keeps it so
        // the tiling invariant holds.
        let dialect = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        let text = "a\n\\";
        assert_eq!(parse_legacy(text, &dialect), vec![vec!["a"]]);
        let raw = raw_records(text, &dialect);
        assert_eq!(raw.len(), 2);
        assert_eq!(&text[raw[1].fields[0].clone()], "\\");
        assert_eq!(reassemble(text, &dialect, &raw), text);
    }

    #[test]
    fn terminator_codes_roundtrip() {
        for term in [
            Terminator::None,
            Terminator::Lf,
            Terminator::CrLf,
            Terminator::Cr,
        ] {
            assert_eq!(Terminator::from_code(term.code()), Some(term));
        }
        assert_eq!(Terminator::from_code(4), None);
    }
}
