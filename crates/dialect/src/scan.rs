//! Zero-copy block-scanning CSV parser.
//!
//! The production parse path of the Strudel pipeline. Instead of walking
//! the input one `char` at a time and allocating an owned `String` per
//! field (the retained reference walker in [`crate::legacy`]), the
//! scanner classifies the input in 64-byte blocks using SWAR word tricks
//! (eight `u64` comparisons per block, no per-byte branching between
//! structural characters) and records each field as a **byte range into
//! the input buffer**. Fields whose parsed value equals a contiguous
//! slice of the input — the overwhelming majority in real CSV — are
//! never copied; only fields that need rewriting (doubled quotes, escape
//! sequences, stray content after a closing quote) take a copy-on-write
//! escape hatch and are unescaped on materialisation.
//!
//! The scanner preserves the forgiving RFC 4180 semantics of the legacy
//! walker **byte for byte**, including its quirks (line accounting after
//! a `\r\n` pair, escapes that bypass line checks, the EOF flush rules).
//! The differential parity harness — `tests/parity.rs`, the block-seam
//! fixtures, and the fuzz divergence check — holds the two paths equal
//! on arbitrary inputs, including [`Limits`] error kinds.
//!
//! [`Limits`] and [`Deadline`] enforcement live in the block loop:
//! rows/columns/cells are checked at field boundaries exactly as the
//! legacy walker does, while the per-character line-length and
//! quoted-field bounds are enforced by computing the *crossing position*
//! of each bound inside a run of plain bytes — the first character whose
//! end exceeds the bound, which is the character the legacy walker would
//! have failed on. The wall-clock deadline is polled once per 64 KiB of
//! classified blocks rather than per character.

use crate::dialect::Dialect;
use std::borrow::Cow;
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// Bytes of classified blocks between wall-clock deadline polls. The
/// legacy walker checks every 64Ki characters; a character is at least
/// one byte, so the scanner polls at least as often per unit of input.
pub(crate) const DEADLINE_CHECK_BYTES: usize = 1 << 16;

/// Bytes classified per SWAR step: eight `u64` words.
const BLOCK: usize = 64;

// ---------------------------------------------------------------------------
// Borrowed records
// ---------------------------------------------------------------------------

/// One parsed field: a byte range into the scanned input.
///
/// When `cow` is clear the field's value is literally `&text[start..end]`
/// (for quoted fields the range already excludes the enclosing quotes).
/// When `cow` is set the range covers the field's *raw* bytes and the
/// value is produced by re-running the single-field unescaper over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FieldSpan {
    pub(crate) start: usize,
    pub(crate) end: usize,
    pub(crate) cow: bool,
}

/// The zero-copy result of scanning one input: records of field spans
/// borrowed from the input buffer.
///
/// Produced by [`scan_records`] / [`try_scan_records`]. Field values are
/// materialised on demand as [`Cow`]s — borrowed for clean fields, owned
/// only for fields that required unescaping.
#[derive(Debug, Clone)]
pub struct RecordsRef<'a> {
    text: &'a str,
    dialect: Dialect,
    fields: Vec<FieldSpan>,
    /// `record_ends[i]` is one past the index of record `i`'s last field.
    record_ends: Vec<usize>,
    /// Number of chunks the input was scanned in (1 for serial scans).
    chunks: usize,
}

impl<'a> RecordsRef<'a> {
    pub(crate) fn from_parts(
        text: &'a str,
        dialect: Dialect,
        fields: Vec<FieldSpan>,
        record_ends: Vec<usize>,
        chunks: usize,
    ) -> RecordsRef<'a> {
        RecordsRef {
            text,
            dialect,
            fields,
            record_ends,
            chunks,
        }
    }

    /// Number of records.
    pub fn n_records(&self) -> usize {
        self.record_ends.len()
    }

    /// Number of chunks the input was scanned in — 1 for serial scans,
    /// the worker-chunk count for [`crate::try_scan_records_threaded`].
    pub fn n_chunks(&self) -> usize {
        self.chunks
    }

    /// Whether the scan produced no records at all.
    pub fn is_empty(&self) -> bool {
        self.record_ends.is_empty()
    }

    /// Total number of fields across all records.
    pub fn n_fields(&self) -> usize {
        self.fields.len()
    }

    /// Number of fields that take the copy-on-write path (doubled
    /// quotes, escapes, stray content after a closing quote). Exposed so
    /// benches and tests can assert the zero-copy ratio.
    pub fn n_cow_fields(&self) -> usize {
        self.fields.iter().filter(|f| f.cow).count()
    }

    /// The `i`-th record.
    ///
    /// # Panics
    /// Panics when `i >= n_records()`.
    pub fn record(&self, i: usize) -> RecordRef<'a, '_> {
        let lo = if i == 0 { 0 } else { self.record_ends[i - 1] };
        RecordRef {
            records: self,
            lo,
            hi: self.record_ends[i],
        }
    }

    /// Iterator over the records.
    pub fn iter(&self) -> impl Iterator<Item = RecordRef<'a, '_>> {
        (0..self.n_records()).map(|i| self.record(i))
    }

    /// Materialise every field as an owned `String` — the compatibility
    /// bridge to the legacy `Vec<Vec<String>>` representation used by
    /// [`crate::parse`].
    pub fn to_owned_rows(&self) -> Vec<Vec<String>> {
        self.iter()
            .map(|rec| rec.iter().map(Cow::into_owned).collect())
            .collect()
    }

    fn resolve(&self, f: FieldSpan) -> Cow<'a, str> {
        if f.cow {
            Cow::Owned(unescape_field(&self.text[f.start..f.end], &self.dialect))
        } else {
            Cow::Borrowed(&self.text[f.start..f.end])
        }
    }
}

/// One record of a [`RecordsRef`]: a view over its fields.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef<'a, 'r> {
    records: &'r RecordsRef<'a>,
    lo: usize,
    hi: usize,
}

impl<'a> RecordRef<'a, '_> {
    /// Number of fields in the record.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the record has no fields (never true for scanned input:
    /// every record has at least one field).
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// The `j`-th field's value — borrowed from the input unless the
    /// field needed unescaping.
    ///
    /// # Panics
    /// Panics when `j >= len()`.
    pub fn field(&self, j: usize) -> Cow<'a, str> {
        assert!(j < self.len(), "field index out of bounds");
        self.records.resolve(self.records.fields[self.lo + j])
    }

    /// Iterator over the record's field values.
    pub fn iter(&self) -> impl Iterator<Item = Cow<'a, str>> + '_ {
        self.records.fields[self.lo..self.hi]
            .iter()
            .map(|&f| self.records.resolve(f))
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Scan `text` into borrowed records under `dialect`, without resource
/// limits. Like [`crate::parse`], the scan itself never fails.
pub fn scan_records<'a>(text: &'a str, dialect: &Dialect) -> RecordsRef<'a> {
    try_scan_records_within(text, dialect, &Limits::unbounded(), Deadline::none())
        .expect("unbounded scan cannot fail")
}

/// [`scan_records`] with [`Limits`] enforced while scanning.
pub fn try_scan_records<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
) -> Result<RecordsRef<'a>, StrudelError> {
    try_scan_records_within(text, dialect, limits, Deadline::none())
}

/// [`try_scan_records`] with an explicit wall-clock [`Deadline`].
pub fn try_scan_records_within<'a>(
    text: &'a str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
) -> Result<RecordsRef<'a>, StrudelError> {
    if let Some(max) = limits.max_input_bytes {
        if text.len() as u64 > max {
            return Err(StrudelError::limit(
                LimitKind::InputBytes,
                text.len() as u64,
                max,
            ));
        }
    }
    let mut sink = Sink {
        limits,
        fields: Vec::new(),
        record_ends: Vec::new(),
        record_len: 0,
        n_cells: 0,
    };
    if let Some(sp) = Specials::of(dialect) {
        scan_blocks(text, dialect, &sp, limits, deadline, &mut sink)?;
    } else {
        scan_scalar(text, dialect, limits, deadline, &mut sink)?;
    }
    Ok(RecordsRef {
        text,
        dialect: *dialect,
        fields: sink.fields,
        record_ends: sink.record_ends,
        chunks: 1,
    })
}

// ---------------------------------------------------------------------------
// Shared field/record bookkeeping
// ---------------------------------------------------------------------------

/// Accumulates spans under the streaming row/column/cell bounds, with
/// the exact check order (and `actual` values) of the legacy walker.
pub(crate) struct Sink<'l> {
    pub(crate) limits: &'l Limits,
    pub(crate) fields: Vec<FieldSpan>,
    pub(crate) record_ends: Vec<usize>,
    /// Fields in the record currently being built.
    pub(crate) record_len: usize,
    pub(crate) n_cells: u64,
}

impl<'l> Sink<'l> {
    pub(crate) fn new(limits: &'l Limits) -> Sink<'l> {
        Sink {
            limits,
            fields: Vec::new(),
            record_ends: Vec::new(),
            record_len: 0,
            n_cells: 0,
        }
    }

    pub(crate) fn end_field(&mut self, span: FieldSpan) -> Result<(), StrudelError> {
        if let Some(max) = self.limits.max_cols {
            if self.record_len as u64 >= max {
                return Err(StrudelError::limit(
                    LimitKind::Cols,
                    self.record_len as u64 + 1,
                    max,
                ));
            }
        }
        self.n_cells += 1;
        if let Some(max) = self.limits.max_cells {
            if self.n_cells > max {
                return Err(StrudelError::limit(LimitKind::Cells, self.n_cells, max));
            }
        }
        self.fields.push(span);
        self.record_len += 1;
        Ok(())
    }

    pub(crate) fn end_record(&mut self, span: FieldSpan) -> Result<(), StrudelError> {
        self.end_field(span)?;
        if let Some(max) = self.limits.max_rows {
            if self.record_ends.len() as u64 >= max {
                return Err(StrudelError::limit(
                    LimitKind::Rows,
                    self.record_ends.len() as u64 + 1,
                    max,
                ));
            }
        }
        self.record_ends.push(self.fields.len());
        self.record_len = 0;
        Ok(())
    }

    /// EOF flush: mirror of the legacy trailing-record rule, which
    /// applies **no** limit checks.
    fn flush(&mut self, span: FieldSpan, in_quote_state: bool, output_empty: bool) {
        if in_quote_state || !output_empty || self.record_len > 0 {
            self.fields.push(span);
            self.record_ends.push(self.fields.len());
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    FieldStart,
    Unquoted,
    Quoted,
    QuoteInQuoted,
}

/// Per-field scanner bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Field {
    /// Raw start of the field (at the opening quote, if any).
    start: usize,
    /// Start of the clean content slice (after the opening quote).
    content_start: usize,
    /// The parsed value differs from a contiguous input slice.
    cow: bool,
    /// Raw bytes inside the content region that do not reach the output
    /// (escape characters, the first quote of each doubled pair). Used
    /// for the quoted-field length bound: output bytes at raw position
    /// `p` equal `p - content_start - removed`.
    removed: usize,
    /// Position of the candidate closing quote (`QuoteInQuoted` only).
    quote_close: usize,
}

impl Field {
    fn at(start: usize) -> Field {
        Field {
            start,
            content_start: start,
            cow: false,
            removed: 0,
            quote_close: 0,
        }
    }

    /// The span of the finished field, `end` being the terminator (or
    /// EOF) position.
    fn span(&self, state: State, end: usize) -> FieldSpan {
        if self.cow {
            FieldSpan {
                start: self.start,
                end,
                cow: true,
            }
        } else {
            let end = if state == State::QuoteInQuoted {
                self.quote_close
            } else {
                end
            };
            FieldSpan {
                start: self.content_start,
                end,
                cow: false,
            }
        }
    }
}

/// Re-parse one field's raw bytes into its value: the single-field
/// projection of the legacy state machine (no terminators occur at
/// terminator-effective states inside a recorded span, so the walk is
/// total). Only called for copy-on-write fields.
fn unescape_field(raw: &str, dialect: &Dialect) -> String {
    let mut field = String::with_capacity(raw.len());
    let mut state = State::FieldStart;
    let mut chars = raw.chars();
    while let Some(ch) = chars.next() {
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                } else if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                    state = State::Unquoted;
                } else {
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                } else if Some(ch) == dialect.escape {
                    if let Some(next) = chars.next() {
                        field.push(next);
                    }
                } else {
                    field.push(ch);
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    field.push(ch);
                    state = State::Quoted;
                } else {
                    field.push(ch);
                    state = State::Unquoted;
                }
            }
        }
    }
    field
}

/// Whether a span's materialised value is empty — the legacy
/// `field.is_empty()` of the EOF flush rule.
fn span_output_empty(text: &str, dialect: &Dialect, span: &FieldSpan) -> bool {
    if span.cow {
        unescape_field(&text[span.start..span.end], dialect).is_empty()
    } else {
        span.start == span.end
    }
}

// ---------------------------------------------------------------------------
// Limit crossing checks
// ---------------------------------------------------------------------------

/// Smallest character end `e` with `start < e <= end` and `e > t`, or
/// `None` when no character of `[start, end)` ends past `t`. This is the
/// position at which the legacy per-character walker first observes a
/// monotone byte bound exceeded inside a run of plain characters.
fn first_end_exceeding(text: &str, start: usize, end: usize, t: u64) -> Option<u64> {
    if start >= end || end as u64 <= t {
        return None;
    }
    let mut e = if (start as u64) > t {
        start + 1
    } else {
        (t + 1) as usize
    };
    while e < end && !text.is_char_boundary(e) {
        e += 1;
    }
    Some(e as u64)
}

/// Check the line-length bound over the raw run `[start, line_end)` and,
/// when `quote_active`, the quoted-field bound over `[start, quote_end)`,
/// reporting whichever a per-character walker would trip first (the
/// legacy walker checks the line bound before the field bound at each
/// character, so ties go to the line bound).
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_checks(
    text: &str,
    limits: &Limits,
    start: usize,
    quote_active: bool,
    quote_end: usize,
    line_end: usize,
    line_start: usize,
    content_start: usize,
    removed: usize,
) -> Result<(), StrudelError> {
    let e_line = limits
        .max_line_bytes
        .and_then(|max| first_end_exceeding(text, start, line_end, line_start as u64 + max));
    let e_quote = if quote_active {
        limits.max_quoted_field_bytes.and_then(|max| {
            first_end_exceeding(
                text,
                start,
                quote_end,
                content_start as u64 + removed as u64 + max,
            )
        })
    } else {
        None
    };
    match (e_line, e_quote) {
        (Some(el), eq) if eq.is_none() || el <= eq.unwrap() => Err(StrudelError::limit(
            LimitKind::LineBytes,
            el - line_start as u64,
            limits.max_line_bytes.unwrap(),
        )),
        (_, Some(eq)) => Err(StrudelError::limit(
            LimitKind::QuotedFieldBytes,
            eq - content_start as u64 - removed as u64,
            limits.max_quoted_field_bytes.unwrap(),
        )),
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// SWAR block classification
// ---------------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn splat(b: u8) -> u64 {
    LO * b as u64
}

/// High bit set in every byte of `w` equal to the splatted byte `s`.
///
/// Uses the exact zero-byte test `!(((x | HI) - LO) | x) & HI`: because
/// `x | HI` sets the top bit of every byte, subtracting `0x01` from each
/// byte can never borrow across byte lanes, so — unlike the shorter
/// `(x - LO) & !x & HI` form — bytes *above* a matching byte are never
/// falsely flagged. (The short form is only guaranteed for the least
/// significant match, which is not enough here: the scanner consumes
/// events one at a time from a cached block mask, so a phantom upper bit
/// would surface as a spurious structural byte.)
#[inline]
fn match_mask(w: u64, s: u64) -> u64 {
    let x = w ^ s;
    !(((x | HI).wrapping_sub(LO)) | x) & HI
}

/// Compress the high bits of `m` (one per byte) into the low 8 bits.
#[inline]
fn movemask(m: u64) -> u64 {
    ((m >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56
}

/// Splatted structural bytes of an ASCII dialect, for the block path.
pub(crate) struct Specials {
    delim: u64,
    quote: u64,
    quote_en: u64,
    escape: u64,
    escape_en: u64,
    nl: u64,
    cr: u64,
}

impl Specials {
    /// The block path requires every structural character to be a
    /// single ASCII byte, non-NUL (the tail block is zero-padded) and
    /// distinct from the line-break bytes (whose top-of-loop line
    /// accounting the legacy walker applies regardless of dialect
    /// role). Anything else — exotic, but expressible through the
    /// public [`Dialect`] — takes the scalar fallback.
    pub(crate) fn of(dialect: &Dialect) -> Option<Specials> {
        fn in_range(c: char) -> bool {
            let v = c as u32;
            (1..=0x7F).contains(&v) && c != '\n' && c != '\r'
        }
        if !in_range(dialect.delimiter) {
            return None;
        }
        for c in [dialect.quote, dialect.escape].into_iter().flatten() {
            if !in_range(c) {
                return None;
            }
        }
        let delim = splat(dialect.delimiter as u8);
        Some(Specials {
            delim,
            quote: dialect.quote.map_or(delim, |c| splat(c as u8)),
            quote_en: if dialect.quote.is_some() { !0 } else { 0 },
            escape: dialect.escape.map_or(delim, |c| splat(c as u8)),
            escape_en: if dialect.escape.is_some() { !0 } else { 0 },
            nl: splat(b'\n'),
            cr: splat(b'\r'),
        })
    }

    /// 64-bit mask of structural bytes in the block at `base` (bit `i`
    /// set when byte `base + i` is structural). The tail block is
    /// zero-padded; NUL is never structural here.
    #[inline]
    fn classify(&self, bytes: &[u8], base: usize) -> u64 {
        let mut buf = [0u8; BLOCK];
        let chunk: &[u8] = if base + BLOCK <= bytes.len() {
            &bytes[base..base + BLOCK]
        } else {
            let n = bytes.len() - base;
            buf[..n].copy_from_slice(&bytes[base..]);
            &buf
        };
        let mut mask = 0u64;
        for i in 0..BLOCK / 8 {
            let w = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().unwrap());
            let m = match_mask(w, self.delim)
                | match_mask(w, self.nl)
                | match_mask(w, self.cr)
                | (match_mask(w, self.quote) & self.quote_en)
                | (match_mask(w, self.escape) & self.escape_en);
            mask |= movemask(m) << (8 * i);
        }
        mask
    }
}

/// Length in bytes of the UTF-8 character starting with `b` (input is
/// valid UTF-8, so `b` is a leading byte).
#[inline]
fn char_len(b: u8) -> usize {
    match b {
        0..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Block scanner
// ---------------------------------------------------------------------------

/// Resumable scanner state between [`scan_blocks_range`] calls: the
/// parser state machine plus the per-field / per-line bookkeeping that
/// crosses block and chunk boundaries. All positions are **absolute**
/// byte offsets into the scanned text — which is what makes a range
/// scan resumable: a state captured at byte `b` seeds a scan of
/// `[b, e)` and produces exactly the events a whole-input scan would
/// produce over that range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScanState {
    state: State,
    fs: Field,
    line_start: usize,
    /// Everything before this offset has been line/field-bound checked
    /// (or was legitimately skipped, exactly as the legacy walker skips
    /// escaped characters and the `\n` of a `\r\n` pair).
    checked_to: usize,
}

impl ScanState {
    /// The scanner state exactly at a record boundary `pos` whose
    /// terminator ended with a bare `\n`: what the scanner holds
    /// immediately after `end_record`, and therefore the state the
    /// parallel scanner *assumes* when speculatively entering a chunk
    /// at `pos`. (After a `\r\n` pair the true `line_start` is
    /// `pos - 1`, not `pos` — a legacy quirk; [`crate::parallel`]
    /// accounts for it when deciding whether a speculative chunk result
    /// can be spliced under a line-length bound.)
    pub(crate) fn clean_at(pos: usize) -> ScanState {
        ScanState {
            state: State::FieldStart,
            fs: Field::at(pos),
            line_start: pos,
            checked_to: pos,
        }
    }

    /// Whether two states agree on everything the scanner reads when no
    /// line-length bound is configured — `line_start` feeds only the
    /// `max_line_bytes` check, so it may differ freely in that case.
    pub(crate) fn eq_ignoring_line_start(&self, other: &ScanState) -> bool {
        self.state == other.state && self.fs == other.fs && self.checked_to == other.checked_to
    }
}

/// Outcome of [`scan_blocks_range`]: the carried state at the range end
/// (or at the stop point) and whether the `stop_at` callback requested
/// an early stop.
pub(crate) struct RangeScan {
    pub(crate) st: ScanState,
    pub(crate) stopped: bool,
}

/// Run the SWAR block scanner over `text[from..to)` starting from
/// `init`, emitting fields/records into `sink`. After every
/// `end_record` the `stop_at(record_start, line_start)` callback is
/// consulted; returning `true` stops the scan at that record boundary
/// (used by the parallel seam repair to re-synchronise with a
/// speculative chunk scan).
///
/// `to` must either be `text.len()` or lie one past a `\n` byte: the
/// scanner consumes multi-byte events (escaped characters, `\r\n`
/// pairs) atomically, and `\n`-aligned range ends guarantee no event
/// straddles the end.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_blocks_range<F>(
    text: &str,
    dialect: &Dialect,
    sp: &Specials,
    limits: &Limits,
    deadline: Deadline,
    sink: &mut Sink,
    from: usize,
    to: usize,
    init: ScanState,
    mut stop_at: F,
) -> Result<RangeScan, StrudelError>
where
    F: FnMut(usize, usize) -> bool,
{
    let bytes = text.as_bytes();
    let len = bytes.len();
    debug_assert!(to <= len);
    debug_assert!(to == len || bytes[to - 1] == b'\n');
    let delim = dialect.delimiter as u8;
    let quote = dialect.quote.map(|c| c as u8);
    let escape = dialect.escape.map(|c| c as u8);

    let mut state = init.state;
    let mut fs = init.fs;
    let mut line_start: usize = init.line_start;
    let mut checked_to: usize = init.checked_to;
    let mut pos: usize = from;
    let mut cached_block = usize::MAX;
    let mut mask = 0u64;
    let mut bytes_since_deadline: usize = 0;

    // With no byte bounds configured (the common case — detection scans
    // candidates unbounded), skip the per-event check call entirely.
    let bounded = limits.max_line_bytes.is_some() || limits.max_quoted_field_bytes.is_some();

    macro_rules! checks {
        ($quote_end:expr, $line_end:expr) => {
            if bounded {
                run_checks(
                    text,
                    limits,
                    checked_to,
                    state == State::Quoted,
                    $quote_end,
                    $line_end,
                    line_start,
                    fs.content_start,
                    fs.removed,
                )?
            }
        };
    }

    // Shared tail of the three record-terminator arms, including the
    // early-stop consultation at the new record boundary. Stopping
    // breaks out of the scan loop rather than returning in place: a
    // return here would inline the result construction into every
    // terminator arm and measurably bloat the hot loop.
    let mut stopped = false;
    macro_rules! record_end {
        ($p:expr, $b:expr, $scan:lifetime) => {{
            checks!($p, $p);
            let after = terminator_end(bytes, $p, $b);
            sink.end_record(fs.span(state, $p))?;
            line_start = $p + 1;
            state = State::FieldStart;
            fs = Field::at(after);
            checked_to = after;
            pos = after;
            if stop_at(after, line_start) {
                stopped = true;
                break $scan;
            }
        }};
    }

    'scan: while pos < to {
        // Locate the next structural byte at or after `pos`.
        let p = loop {
            let base = pos - pos % BLOCK;
            if base != cached_block {
                cached_block = base;
                mask = sp.classify(bytes, base);
                bytes_since_deadline += BLOCK;
                if bytes_since_deadline >= DEADLINE_CHECK_BYTES {
                    bytes_since_deadline = 0;
                    deadline.check()?;
                }
            }
            let pending = mask & (!0u64 << (pos - base));
            if pending != 0 {
                let p = base + pending.trailing_zeros() as usize;
                if p >= to {
                    // Structural bytes past the range end belong to the
                    // next chunk (and tail padding is never structural).
                    break 'scan;
                }
                break p;
            }
            pos = base + BLOCK;
            if pos >= to {
                break 'scan;
            }
        };
        let b = bytes[p];

        // Resolve a pending close-quote when plain bytes followed it:
        // stray content after a closing quote reopens the field as
        // unquoted, copy-on-write content.
        if state == State::QuoteInQuoted && p > fs.quote_close + 1 {
            state = State::Unquoted;
            fs.cow = true;
        }
        // Plain bytes at the start of a field make it an unquoted one.
        if state == State::FieldStart && p > fs.start {
            state = State::Unquoted;
        }

        let is_quote = quote == Some(b);
        let is_escape = escape == Some(b);
        match state {
            State::FieldStart => {
                // `p == fs.start`: the field begins with this byte.
                if is_quote {
                    checks!(p, p + 1);
                    state = State::Quoted;
                    fs.content_start = p + 1;
                    checked_to = p + 1;
                    pos = p + 1;
                } else if b == delim {
                    checks!(p, p + 1);
                    sink.end_field(fs.span(state, p))?;
                    fs = Field::at(p + 1);
                    checked_to = p + 1;
                    pos = p + 1;
                } else if b == b'\n' || b == b'\r' {
                    record_end!(p, b, 'scan);
                } else {
                    // Escape opening the field: the escaped character is
                    // consumed without line accounting, like the legacy
                    // walker's `chars.next()` bypass.
                    debug_assert!(is_escape);
                    checks!(p, p + 1);
                    fs.cow = true;
                    state = State::Unquoted;
                    let after = if p + 1 < len {
                        p + 1 + char_len(bytes[p + 1])
                    } else {
                        p + 1
                    };
                    checked_to = after;
                    pos = after;
                }
            }
            State::Unquoted => {
                if b == delim {
                    checks!(p, p + 1);
                    sink.end_field(fs.span(state, p))?;
                    state = State::FieldStart;
                    fs = Field::at(p + 1);
                    checked_to = p + 1;
                    pos = p + 1;
                } else if b == b'\n' || b == b'\r' {
                    record_end!(p, b, 'scan);
                } else if is_escape {
                    checks!(p, p + 1);
                    fs.cow = true;
                    let after = if p + 1 < len {
                        p + 1 + char_len(bytes[p + 1])
                    } else {
                        p + 1
                    };
                    checked_to = after;
                    pos = after;
                } else {
                    // Literal quote character inside an unquoted field:
                    // plain content, stays part of the pending run.
                    pos = p + 1;
                }
            }
            State::Quoted => {
                if is_quote {
                    checks!(p, p + 1);
                    state = State::QuoteInQuoted;
                    fs.quote_close = p;
                    checked_to = p + 1;
                    pos = p + 1;
                } else if is_escape {
                    checks!(p, p + 1);
                    fs.cow = true;
                    fs.removed += 1;
                    let after = if p + 1 < len {
                        p + 1 + char_len(bytes[p + 1])
                    } else {
                        p + 1
                    };
                    // The escaped character lands in the field, so the
                    // quoted-field bound applies to it (the legacy
                    // walker checks after the push).
                    if after > p + 1 {
                        if let Some(max) = limits.max_quoted_field_bytes {
                            let out = (after - fs.content_start - fs.removed) as u64;
                            if out > max {
                                return Err(StrudelError::limit(
                                    LimitKind::QuotedFieldBytes,
                                    out,
                                    max,
                                ));
                            }
                        }
                    }
                    checked_to = after;
                    pos = after;
                } else if b == b'\n' || b == b'\r' {
                    // Embedded line break: content, but line accounting
                    // restarts and the field bound sees the pushed byte.
                    checks!(p, p);
                    line_start = p + 1;
                    if let Some(max) = limits.max_quoted_field_bytes {
                        let out = (p + 1 - fs.content_start - fs.removed) as u64;
                        if out > max {
                            return Err(StrudelError::limit(LimitKind::QuotedFieldBytes, out, max));
                        }
                    }
                    checked_to = p + 1;
                    pos = p + 1;
                } else {
                    // Delimiter inside quotes: plain content.
                    pos = p + 1;
                }
            }
            State::QuoteInQuoted => {
                // `p == fs.quote_close + 1` (a gap was resolved above).
                if is_quote {
                    // Doubled quote: one literal quote reaches the output.
                    checks!(p, p + 1);
                    fs.cow = true;
                    fs.removed += 1;
                    state = State::Quoted;
                    checked_to = p + 1;
                    pos = p + 1;
                } else if b == delim {
                    checks!(p, p + 1);
                    sink.end_field(fs.span(state, p))?;
                    state = State::FieldStart;
                    fs = Field::at(p + 1);
                    checked_to = p + 1;
                    pos = p + 1;
                } else if b == b'\n' || b == b'\r' {
                    record_end!(p, b, 'scan);
                } else {
                    // Stray escape character directly after the closing
                    // quote: the legacy walker pushes it literally (its
                    // `QuoteInQuoted` arm knows no escapes).
                    debug_assert!(is_escape);
                    checks!(p, p + 1);
                    fs.cow = true;
                    state = State::Unquoted;
                    checked_to = p + 1;
                    pos = p + 1;
                }
            }
        }
    }

    Ok(RangeScan {
        st: ScanState {
            state,
            fs,
            line_start,
            checked_to,
        },
        stopped,
    })
}

/// EOF tail of a block scan: resolve a pending close-quote followed by
/// trailing plain bytes, run the final bound checks over the trailing
/// run, and flush the trailing field per the legacy rules (the flush
/// itself applies **no** limit checks).
pub(crate) fn finish_scan(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    sink: &mut Sink,
    st: ScanState,
) -> Result<(), StrudelError> {
    let len = text.len();
    let mut state = st.state;
    let mut fs = st.fs;
    if state == State::QuoteInQuoted && len > fs.quote_close + 1 {
        state = State::Unquoted;
        fs.cow = true;
    }
    run_checks(
        text,
        limits,
        st.checked_to,
        state == State::Quoted,
        len,
        len,
        st.line_start,
        fs.content_start,
        fs.removed,
    )?;
    let span = fs.span(state, len);
    let in_quote_state = state == State::Quoted || state == State::QuoteInQuoted;
    let empty = span_output_empty(text, dialect, &span);
    sink.flush(span, in_quote_state, empty);
    Ok(())
}

/// Whole-input serial scan: one range scan from the origin state plus
/// the EOF tail.
fn scan_blocks(
    text: &str,
    dialect: &Dialect,
    sp: &Specials,
    limits: &Limits,
    deadline: Deadline,
    sink: &mut Sink,
) -> Result<(), StrudelError> {
    let scan = scan_blocks_range(
        text,
        dialect,
        sp,
        limits,
        deadline,
        sink,
        0,
        text.len(),
        ScanState::clean_at(0),
        |_, _| false,
    )?;
    finish_scan(text, dialect, limits, sink, scan.st)
}

/// One past the end of a record terminator starting at `p`: consumes
/// the `\n` of a `\r\n` pair.
#[inline]
fn terminator_end(bytes: &[u8], p: usize, b: u8) -> usize {
    if b == b'\r' && bytes.get(p + 1) == Some(&b'\n') {
        p + 2
    } else {
        p + 1
    }
}

// ---------------------------------------------------------------------------
// Scalar fallback (non-ASCII or line-break structural characters)
// ---------------------------------------------------------------------------

/// Character-at-a-time span scanner: a direct port of the legacy walker
/// that records spans instead of pushing into a `String`. Handles every
/// dialect expressible through [`Dialect`], including multi-byte or
/// line-break structural characters.
fn scan_scalar(
    text: &str,
    dialect: &Dialect,
    limits: &Limits,
    deadline: Deadline,
    sink: &mut Sink,
) -> Result<(), StrudelError> {
    let mut chars = text.char_indices().peekable();
    let mut state = State::FieldStart;
    let mut fs = Field::at(0);
    // Output bytes of the current field so far (the legacy `field.len()`).
    let mut out_len: usize = 0;
    let mut line_start: usize = 0;
    let mut since_deadline_check: usize = 0;

    macro_rules! reset_field {
        ($start:expr) => {{
            fs = Field::at($start);
            out_len = 0;
        }};
    }

    while let Some((idx, ch)) = chars.next() {
        since_deadline_check += 1;
        if since_deadline_check >= crate::legacy::DEADLINE_CHECK_INTERVAL {
            since_deadline_check = 0;
            deadline.check()?;
        }
        if ch == '\n' || ch == '\r' {
            line_start = idx + 1;
        } else if let Some(max) = limits.max_line_bytes {
            let line_bytes = (idx - line_start) as u64 + ch.len_utf8() as u64;
            if line_bytes > max {
                return Err(StrudelError::limit(LimitKind::LineBytes, line_bytes, max));
            }
        }
        match state {
            State::FieldStart => {
                if Some(ch) == dialect.quote {
                    state = State::Quoted;
                    fs.content_start = idx + ch.len_utf8();
                } else if ch == dialect.delimiter {
                    sink.end_field(fs.span(state, idx))?;
                    reset_field!(idx + ch.len_utf8());
                } else if ch == '\n' || ch == '\r' {
                    if ch == '\r' && chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    let after =
                        idx + 1 + usize::from(ch == '\r' && text[idx + 1..].starts_with('\n'));
                    sink.end_record(fs.span(state, idx))?;
                    reset_field!(after);
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        out_len += next.len_utf8();
                    }
                    fs.cow = true;
                    state = State::Unquoted;
                } else {
                    out_len += ch.len_utf8();
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == dialect.delimiter {
                    sink.end_field(fs.span(state, idx))?;
                    state = State::FieldStart;
                    reset_field!(idx + ch.len_utf8());
                } else if ch == '\n' || ch == '\r' {
                    if ch == '\r' && chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    let after =
                        idx + 1 + usize::from(ch == '\r' && text[idx + 1..].starts_with('\n'));
                    sink.end_record(fs.span(state, idx))?;
                    state = State::FieldStart;
                    reset_field!(after);
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        out_len += next.len_utf8();
                    }
                    fs.cow = true;
                } else {
                    out_len += ch.len_utf8();
                }
            }
            State::Quoted => {
                if Some(ch) == dialect.quote {
                    state = State::QuoteInQuoted;
                    fs.quote_close = idx;
                } else if Some(ch) == dialect.escape {
                    if let Some((_, next)) = chars.next() {
                        out_len += next.len_utf8();
                    }
                    fs.cow = true;
                } else {
                    out_len += ch.len_utf8();
                }
                if let Some(max) = limits.max_quoted_field_bytes {
                    if out_len as u64 > max {
                        return Err(StrudelError::limit(
                            LimitKind::QuotedFieldBytes,
                            out_len as u64,
                            max,
                        ));
                    }
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == dialect.quote {
                    out_len += ch.len_utf8();
                    fs.cow = true;
                    fs.removed += 1;
                    state = State::Quoted;
                } else if ch == dialect.delimiter {
                    sink.end_field(fs.span(state, idx))?;
                    state = State::FieldStart;
                    reset_field!(idx + ch.len_utf8());
                } else if ch == '\n' || ch == '\r' {
                    if ch == '\r' && chars.peek().map(|&(_, c)| c) == Some('\n') {
                        chars.next();
                    }
                    let after =
                        idx + 1 + usize::from(ch == '\r' && text[idx + 1..].starts_with('\n'));
                    sink.end_record(fs.span(state, idx))?;
                    state = State::FieldStart;
                    reset_field!(after);
                } else {
                    out_len += ch.len_utf8();
                    fs.cow = true;
                    state = State::Unquoted;
                }
            }
        }
    }

    let span = fs.span(state, text.len());
    let in_quote_state = state == State::Quoted || state == State::QuoteInQuoted;
    sink.flush(span, in_quote_state, out_len == 0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legacy::parse_legacy;

    fn owned(text: &str, dialect: &Dialect) -> Vec<Vec<String>> {
        scan_records(text, dialect).to_owned_rows()
    }

    #[test]
    fn swar_match_mask_finds_exact_bytes() {
        let w = u64::from_le_bytes(*b"a,b,c,,x");
        let m = match_mask(w, splat(b','));
        assert_eq!(movemask(m), 0b0110_1010);
        assert_eq!(match_mask(w, splat(b'z')), 0);
    }

    #[test]
    fn classify_marks_every_structural_byte() {
        let sp = Specials::of(&Dialect::rfc4180()).unwrap();
        let text = b"ab,cd\"e\nf\rgh";
        let mask = sp.classify(text, 0);
        let expect: u64 = (1 << 2) | (1 << 5) | (1 << 7) | (1 << 9);
        assert_eq!(mask, expect);
    }

    #[test]
    fn classify_zero_pads_the_tail_block() {
        let sp = Specials::of(&Dialect::rfc4180()).unwrap();
        assert_eq!(sp.classify(b"x,y", 0), 1 << 1);
    }

    #[test]
    fn clean_fields_borrow_from_the_input() {
        let text = "alpha,\"quoted,field\",tail\n";
        let records = scan_records(text, &Dialect::rfc4180());
        assert_eq!(records.n_records(), 1);
        assert_eq!(records.n_cow_fields(), 0);
        let rec = records.record(0);
        assert!(matches!(rec.field(0), Cow::Borrowed("alpha")));
        assert!(matches!(rec.field(1), Cow::Borrowed("quoted,field")));
        assert!(matches!(rec.field(2), Cow::Borrowed("tail")));
    }

    #[test]
    fn doubled_quotes_take_the_cow_path() {
        let text = "\"say \"\"hi\"\"\",x\n";
        let records = scan_records(text, &Dialect::rfc4180());
        assert_eq!(records.n_cow_fields(), 1);
        let rec = records.record(0);
        assert_eq!(rec.field(0), "say \"hi\"");
        assert!(matches!(rec.field(1), Cow::Borrowed("x")));
    }

    #[test]
    fn matches_legacy_on_edge_inputs() {
        let d = Dialect::rfc4180();
        for text in [
            "",
            "\n",
            "a,b",
            ",,\n",
            "\"a\nb\",c\n",
            "a\r\nb\rc\n",
            "\"abc\ndef",
            "\"ab\"cd,e\n",
            "\"\"",
            "\"",
            "a,\"\"",
            "x,\"quote \"\" inside\",y\n",
        ] {
            assert_eq!(owned(text, &d), parse_legacy(text, &d), "input {text:?}");
        }
    }

    #[test]
    fn escape_dialect_matches_legacy() {
        let d = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        for text in ["a\\,b,c\n", "\\", "a,\\", "\"a\\\"b\",c\n", "a\\"] {
            assert_eq!(owned(text, &d), parse_legacy(text, &d), "input {text:?}");
        }
    }

    #[test]
    fn non_ascii_dialect_takes_the_scalar_path_and_matches() {
        let d = Dialect {
            delimiter: '\u{00A7}', // section sign, multi-byte in UTF-8
            quote: Some('"'),
            escape: None,
        };
        assert!(Specials::of(&d).is_none());
        for text in ["a\u{00A7}b\nc\u{00A7}d\n", "\"x\u{00A7}y\"\u{00A7}z"] {
            assert_eq!(owned(text, &d), parse_legacy(text, &d), "input {text:?}");
        }
    }

    #[test]
    fn limits_match_legacy_kinds_and_counts() {
        use crate::legacy::try_parse_legacy;
        let d = Dialect::rfc4180();
        let mut limits = Limits::unbounded();
        limits.max_rows = Some(2);
        let text = "a\nb\nc\n";
        let (a, b) = (
            try_parse_legacy(text, &d, &limits).unwrap_err(),
            try_scan_records(text, &d, &limits).unwrap_err(),
        );
        match (a, b) {
            (
                StrudelError::LimitExceeded {
                    limit: la,
                    actual: aa,
                    max: ma,
                    ..
                },
                StrudelError::LimitExceeded {
                    limit: lb,
                    actual: ab,
                    max: mb,
                    ..
                },
            ) => {
                assert_eq!(la, lb);
                assert_eq!(aa, ab);
                assert_eq!(ma, mb);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn line_bound_crossing_matches_legacy_actual() {
        use crate::legacy::try_parse_legacy;
        let d = Dialect::rfc4180();
        let mut limits = Limits::unbounded();
        limits.max_line_bytes = Some(8);
        let text = format!("{}\n", "x".repeat(32));
        let a = try_parse_legacy(&text, &d, &limits).unwrap_err();
        let b = try_scan_records(&text, &d, &limits).unwrap_err();
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn record_iteration_is_consistent() {
        let records = scan_records("a,b\nc\n", &Dialect::rfc4180());
        assert_eq!(records.n_records(), 2);
        assert_eq!(records.record(0).len(), 2);
        assert_eq!(records.record(1).len(), 1);
        let lens: Vec<usize> = records.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![2, 1]);
        assert_eq!(records.n_fields(), 3);
    }
}
