//! Incremental streaming substrate: chunk-resumable UTF-8 validation
//! and record-boundary tracking.
//!
//! The `strudel` streaming classifier feeds arbitrary byte chunks
//! through [`Utf8Feeder`] (BOM stripping plus incremental UTF-8
//! validation with error payloads identical to [`crate::decode_utf8`]
//! on the concatenated stream) and walks the decoded text through
//! [`RecordTracker`], a boundary-only port of the scalar record
//! scanner: it reports where records end — and nothing else — so a
//! bounded window of text can be sliced at exact record boundaries and
//! re-parsed by the full scanner. Both carry their state across
//! arbitrary chunk splits: the output is a pure function of the byte
//! stream, never of how it was chunked.

use crate::dialect::Dialect;
use strudel_table::StrudelError;

const BOM_BYTES: [u8; 3] = [0xEF, 0xBB, 0xBF];

/// Incremental UTF-8 validator with BOM stripping.
///
/// Push raw byte chunks; each push appends the newly validated text to
/// the caller's buffer. A leading UTF-8 byte-order mark is consumed
/// silently (it never reaches the output), and at most three bytes of
/// an incomplete trailing character are held back between pushes.
/// Invalid UTF-8 yields the same typed [`StrudelError::Parse`] payload
/// — global byte offset *including* the BOM, newline count of the valid
/// prefix — that [`crate::decode_utf8`] reports on the whole stream;
/// the valid prefix preceding the invalid sequence is still appended to
/// the output first, so the caller can process everything up to the
/// error point before surfacing it (keeping error selection independent
/// of the chunking).
#[derive(Debug, Default)]
pub struct Utf8Feeder {
    /// Held-back raw bytes: the potential BOM prefix at stream start,
    /// then at most 3 trailing bytes of an incomplete character.
    pending: Vec<u8>,
    /// Whether the BOM decision has been made.
    started: bool,
    bom_len: usize,
    /// Raw bytes validated so far, *including* the BOM.
    validated: u64,
    /// Newlines in the validated text.
    newlines: u64,
}

impl Utf8Feeder {
    /// A fresh feeder at stream start.
    pub fn new() -> Utf8Feeder {
        Utf8Feeder::default()
    }

    /// Bytes of the leading BOM that were stripped (0 or 3). Only
    /// meaningful once at least 3 bytes were pushed (or the stream was
    /// finished).
    pub fn bom_len(&self) -> usize {
        self.bom_len
    }

    /// Raw bytes validated so far, including a stripped BOM.
    pub fn validated_bytes(&self) -> u64 {
        self.validated
    }

    /// Feed one chunk; validated text is appended to `out`.
    pub fn push(&mut self, chunk: &[u8], out: &mut String) -> Result<(), StrudelError> {
        self.pending.extend_from_slice(chunk);
        if !self.started {
            // Hold while the stream is still a proper prefix of the BOM.
            if self.pending.len() < BOM_BYTES.len() && BOM_BYTES.starts_with(&self.pending) {
                return Ok(());
            }
            if self.pending.starts_with(&BOM_BYTES) {
                self.pending.drain(..BOM_BYTES.len());
                self.bom_len = BOM_BYTES.len();
                self.validated = BOM_BYTES.len() as u64;
            }
            self.started = true;
        }
        self.drain_valid(out)
    }

    /// Signal end of stream. An incomplete trailing character is an
    /// error, exactly as it is for a whole-file decode.
    pub fn finish(&mut self, out: &mut String) -> Result<(), StrudelError> {
        self.started = true;
        if self.pending.is_empty() {
            return Ok(());
        }
        self.drain_valid(out)?;
        if self.pending.is_empty() {
            Ok(())
        } else {
            // Only an incomplete tail survives `drain_valid`.
            Err(self.decode_error(0))
        }
    }

    fn drain_valid(&mut self, out: &mut String) -> Result<(), StrudelError> {
        // The valid prefix is emitted even when the bytes after it are
        // invalid: the caller must be able to process everything up to
        // the error point first, so the error a given byte stream
        // surfaces never depends on how the stream was chunked.
        let (emit, invalid) = match std::str::from_utf8(&self.pending) {
            Ok(_) => (self.pending.len(), false),
            // `error_len() == None` is an incomplete trailing character:
            // held for the next chunk (at most 3 bytes of a 4-byte
            // sequence), not an error yet.
            Err(e) => (e.valid_up_to(), e.error_len().is_some()),
        };
        // SAFETY-free reslice: the prefix was just validated.
        let text = std::str::from_utf8(&self.pending[..emit]).expect("validated prefix");
        self.newlines += text.bytes().filter(|&b| b == b'\n').count() as u64;
        self.validated += emit as u64;
        out.push_str(text);
        self.pending.drain(..emit);
        if invalid {
            // `pending` now starts at the offending byte, so the error
            // payload is unchanged by the prefix emission above.
            return Err(self.decode_error(0));
        }
        debug_assert!(self.pending.len() <= 3);
        Ok(())
    }

    /// The [`crate::decode_utf8`]-parity error for an invalid sequence
    /// `valid_up_to` bytes into the held-back buffer.
    fn decode_error(&self, valid_up_to: usize) -> StrudelError {
        let extra_newlines = self.pending[..valid_up_to]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u64;
        StrudelError::Parse {
            file: None,
            line: self.newlines + extra_newlines,
            byte: self.validated + valid_up_to as u64,
            reason: "invalid UTF-8".to_string(),
        }
    }
}

/// One completed record reported by [`RecordTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordEnd {
    /// Post-BOM byte offset of the record's first byte.
    pub start: usize,
    /// Post-BOM byte offset of the terminator character.
    pub terminator: usize,
    /// One past the terminator, consuming the `\n` of a `\r\n` pair —
    /// the next record starts here.
    pub after: usize,
}

impl RecordEnd {
    /// Whether the record has no content at all (an empty line) — the
    /// window-closing heuristic treats blank records as table
    /// boundaries.
    pub fn is_blank(&self) -> bool {
        self.terminator == self.start
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    FieldStart,
    Unquoted,
    Quoted,
    QuoteInQuoted,
}

/// Chunk-resumable record-boundary walker.
///
/// A port of the scalar record scanner's state machine that keeps only
/// what boundary detection needs: the quoting state, the
/// escape-consumes-next-character rule, and the deferred `\r`/`\r\n`
/// pair decision. Feeding the same text in any chunking produces the
/// same [`RecordEnd`]s, and slicing the input at any reported `after`
/// offset splits it into independently parseable record runs (the
/// scanner restarts at `FieldStart` exactly as this walker does).
#[derive(Debug)]
pub struct RecordTracker {
    dialect: Dialect,
    state: State,
    /// Post-BOM byte offset of the next character.
    pos: usize,
    /// Post-BOM byte offset where the current record began.
    record_start: usize,
    /// An escape character consumed the next character wholesale.
    skip_next: bool,
    /// A record-terminating `\r` at this offset awaits the pair
    /// decision (`\r\n` vs bare `\r`) from the next character.
    pending_cr: Option<usize>,
}

impl RecordTracker {
    /// A fresh tracker at offset 0 under `dialect`.
    pub fn new(dialect: Dialect) -> RecordTracker {
        RecordTracker {
            dialect,
            state: State::FieldStart,
            pos: 0,
            record_start: 0,
            skip_next: false,
            pending_cr: None,
        }
    }

    /// Post-BOM byte offset of the next unprocessed character.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Post-BOM byte offset where the current (incomplete) record began.
    pub fn record_start(&self) -> usize {
        self.record_start
    }

    /// Walk one decoded piece (pieces must arrive contiguous), pushing
    /// every completed record into `out`.
    pub fn feed(&mut self, piece: &str, out: &mut Vec<RecordEnd>) {
        for ch in piece.chars() {
            let idx = self.pos;
            self.pos += ch.len_utf8();
            if self.skip_next {
                self.skip_next = false;
                continue;
            }
            if let Some(cr) = self.pending_cr.take() {
                let pair = ch == '\n';
                self.end_record(cr, cr + 1 + usize::from(pair), out);
                if pair {
                    continue;
                }
                // A bare `\r`: the current character opens the next
                // record and is processed normally below.
            }
            self.step(idx, ch, out);
        }
    }

    /// Signal end of stream: a pending `\r` terminator is resolved as a
    /// bare `\r`. The trailing unterminated record (if any) is the
    /// caller's: it spans `record_start()..` of the streamed text.
    pub fn finish(&mut self, out: &mut Vec<RecordEnd>) {
        if let Some(cr) = self.pending_cr.take() {
            self.end_record(cr, cr + 1, out);
        }
    }

    fn end_record(&mut self, terminator: usize, after: usize, out: &mut Vec<RecordEnd>) {
        out.push(RecordEnd {
            start: self.record_start,
            terminator,
            after,
        });
        self.record_start = after;
        self.state = State::FieldStart;
    }

    /// One character through the state machine. Branch order within
    /// each state matches the scalar scanner exactly, so exotic
    /// dialects (a delimiter of `\r`, a quote of `\n`) resolve the same
    /// way they do there.
    fn step(&mut self, idx: usize, ch: char, out: &mut Vec<RecordEnd>) {
        let d = self.dialect;
        match self.state {
            State::FieldStart => {
                if Some(ch) == d.quote {
                    self.state = State::Quoted;
                } else if ch == d.delimiter {
                    // Field boundary; the next field starts at FieldStart.
                } else if ch == '\n' {
                    self.end_record(idx, idx + 1, out);
                } else if ch == '\r' {
                    self.pending_cr = Some(idx);
                } else if Some(ch) == d.escape {
                    self.skip_next = true;
                    self.state = State::Unquoted;
                } else {
                    self.state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if ch == d.delimiter {
                    self.state = State::FieldStart;
                } else if ch == '\n' {
                    self.end_record(idx, idx + 1, out);
                } else if ch == '\r' {
                    self.pending_cr = Some(idx);
                } else if Some(ch) == d.escape {
                    self.skip_next = true;
                }
            }
            State::Quoted => {
                if Some(ch) == d.quote {
                    self.state = State::QuoteInQuoted;
                } else if Some(ch) == d.escape {
                    self.skip_next = true;
                }
            }
            State::QuoteInQuoted => {
                if Some(ch) == d.quote {
                    self.state = State::Quoted;
                } else if ch == d.delimiter {
                    self.state = State::FieldStart;
                } else if ch == '\n' {
                    self.end_record(idx, idx + 1, out);
                } else if ch == '\r' {
                    self.pending_cr = Some(idx);
                } else {
                    self.state = State::Unquoted;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_utf8, scan_records};

    fn feed_all(chunks: &[&[u8]]) -> Result<(String, Utf8Feeder), StrudelError> {
        let mut feeder = Utf8Feeder::new();
        let mut out = String::new();
        for c in chunks {
            feeder.push(c, &mut out)?;
        }
        feeder.finish(&mut out)?;
        Ok((out, feeder))
    }

    #[test]
    fn feeder_strips_bom_across_any_split() {
        let raw = "\u{FEFF}a,b\nc,d\n".as_bytes();
        for cut1 in 0..raw.len() {
            for cut2 in cut1..raw.len() {
                let (text, feeder) =
                    feed_all(&[&raw[..cut1], &raw[cut1..cut2], &raw[cut2..]]).unwrap();
                assert_eq!(text, "a,b\nc,d\n", "cuts {cut1}/{cut2}");
                assert_eq!(feeder.bom_len(), 3);
                assert_eq!(feeder.validated_bytes(), raw.len() as u64);
            }
        }
    }

    #[test]
    fn feeder_passes_multibyte_chars_split_at_every_offset() {
        let raw = "§α,緑\n€;x\n".as_bytes();
        for cut in 0..raw.len() {
            let (text, _) = feed_all(&[&raw[..cut], &raw[cut..]]).unwrap();
            assert_eq!(text, "§α,緑\n€;x\n", "cut {cut}");
        }
    }

    #[test]
    fn feeder_error_payload_matches_whole_file_decode() {
        // Invalid sequences both mid-stream and as a truncated tail, with
        // and without a BOM, at every split point.
        for raw in [
            &b"ab\ncd\xFF\xFEef"[..],
            &b"\xEF\xBB\xBFrow\n\x80x"[..],
            &b"ok\n\xE2\x82"[..], // truncated 3-byte char at EOF
            &b"\xEF\xBB"[..],     // truncated BOM at EOF
        ] {
            let want = decode_utf8(raw).unwrap_err();
            for cut in 0..raw.len() {
                let got = feed_all(&[&raw[..cut], &raw[cut..]]).unwrap_err();
                assert_eq!(format!("{got}"), format!("{want}"), "raw {raw:?} cut {cut}");
            }
        }
    }

    /// Record ends must agree with the full scanner: slicing the text at
    /// every reported `after` yields a prefix that parses to exactly the
    /// first k records of the whole text.
    fn check_ends(text: &str, dialect: &Dialect) {
        let whole = scan_records(text, dialect);
        let whole_lens: Vec<usize> = whole.iter().map(|r| r.len()).collect();
        for chunk in [1, 2, 3, 7, text.len().max(1)] {
            let mut tracker = RecordTracker::new(*dialect);
            let mut ends = Vec::new();
            let mut fed = 0;
            while fed < text.len() {
                let mut hi = (fed + chunk).min(text.len());
                while !text.is_char_boundary(hi) {
                    hi += 1;
                }
                tracker.feed(&text[fed..hi], &mut ends);
                fed = hi;
            }
            tracker.finish(&mut ends);
            for (i, e) in ends.iter().enumerate() {
                assert!(e.after <= text.len());
                let prefix = scan_records(&text[..e.after], dialect);
                assert_eq!(prefix.n_records(), i + 1, "{text:?} end {i} {e:?}");
                let lens: Vec<usize> = prefix.iter().map(|r| r.len()).collect();
                assert_eq!(lens[..], whole_lens[..i + 1], "{text:?} end {i}");
            }
            // The trailing segment (if any) is the whole scan's last
            // record(s) beyond the final terminator.
            let tail_records = whole.n_records() - ends.len();
            assert!(tail_records <= 1, "{text:?}: at most one unterminated tail");
        }
    }

    #[test]
    fn tracker_boundaries_match_scanner_and_are_chunk_invariant() {
        let rfc = Dialect::rfc4180();
        for text in [
            "",
            "\n",
            "\r",
            "\r\n",
            "a,b\nc,d\n",
            "a\r\nb\rc\nd",
            "\"multi\nline\",x\n2,y\n",
            "\"quote \"\" inside\",z\nplain\n",
            "\"unterminated\nnever closes",
            "a,\"b\r\nc\",d\r\ne,f\r\n",
            "x\n\n\ny\n",
            "§α,緑\n€,x\n",
        ] {
            check_ends(text, &rfc);
        }
        let esc = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        for text in ["a\\\nb,c\nd\n", "a\\", "\"x\\\"y\"\nz\n", "p\\,q\nr\n"] {
            check_ends(text, &esc);
        }
        let semi = Dialect::with_delimiter(';');
        check_ends("a;b\r\nc;\"d\re\"\r\n", &semi);
    }

    #[test]
    fn blank_detection_marks_empty_records() {
        let mut tracker = RecordTracker::new(Dialect::rfc4180());
        let mut ends = Vec::new();
        tracker.feed("a,b\n\nx\n\r\n", &mut ends);
        tracker.finish(&mut ends);
        let blanks: Vec<bool> = ends.iter().map(|e| e.is_blank()).collect();
        assert_eq!(blanks, vec![false, true, false, true]);
        assert_eq!(ends[3].after, 9);
    }
}
