//! Rendering records back to delimited text under a [`Dialect`].
//!
//! The inverse of [`crate::parse`]: [`write_delimited`] produces text
//! that the parser maps back to the original records, for any cell
//! content — embedded delimiters, quotes, and line breaks included —
//! as long as the dialect can express them (a quote or an escape
//! character is required for that; see [`write_field`]).

use crate::dialect::Dialect;

/// Render records as delimited text under `dialect`, one record per
/// line, with a trailing line terminator.
///
/// Round-trips through [`crate::parse`]: `parse(&write_delimited(rows,
/// d), d) == rows` whenever the dialect has a quote or escape character,
/// with two caveats inherent to the format: a record must have at least
/// one field (a zero-field record is unrepresentable), and an empty
/// *record list* renders as the empty string.
pub fn write_delimited(rows: &[Vec<String>], dialect: &Dialect) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, field) in row.iter().enumerate() {
            if i > 0 {
                out.push(dialect.delimiter);
            }
            write_field(field, dialect, &mut out);
        }
        out.push('\n');
    }
    out
}

/// Append one field to `out`, protecting content the parser would
/// otherwise interpret structurally.
///
/// - With a quote character, a field containing the delimiter, the
///   quote, the escape, or a line break is wrapped in quotes, with
///   inner quotes doubled (RFC 4180 generalised to the dialect).
/// - Without a quote but with an escape character, each structural
///   character is escaped instead.
/// - With neither, the field is written verbatim (lossy for structural
///   content — such a dialect simply cannot express it).
pub fn write_field(field: &str, dialect: &Dialect, out: &mut String) {
    let structural = |c: char| {
        c == dialect.delimiter
            || c == '\n'
            || c == '\r'
            || Some(c) == dialect.quote
            || Some(c) == dialect.escape
    };
    if !field.chars().any(structural) {
        out.push_str(field);
        return;
    }
    match (dialect.quote, dialect.escape) {
        (Some(q), escape) => {
            out.push(q);
            for c in field.chars() {
                if c == q {
                    out.push(q);
                    out.push(q);
                } else if Some(c) == escape {
                    // The parser honours the escape inside quotes too, so
                    // a literal escape character must protect itself.
                    out.push(c);
                    out.push(c);
                } else {
                    out.push(c);
                }
            }
            out.push(q);
        }
        (None, Some(e)) => {
            for c in field.chars() {
                if structural(c) {
                    out.push(e);
                }
                out.push(c);
            }
        }
        (None, None) => out.push_str(field),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(rows: &[Vec<&str>], dialect: &Dialect) {
        let owned: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect();
        let text = write_delimited(&owned, dialect);
        assert_eq!(parse(&text, dialect), owned, "text was {text:?}");
    }

    #[test]
    fn plain_rows() {
        roundtrip(
            &[vec!["a", "b", "c"], vec!["1", "2", "3"]],
            &Dialect::rfc4180(),
        );
    }

    #[test]
    fn structural_content_is_quoted() {
        roundtrip(
            &[vec!["a,b", "say \"hi\"", "line\nbreak", "cr\rhere", ""]],
            &Dialect::rfc4180(),
        );
    }

    #[test]
    fn semicolon_dialect_quotes_semicolons_not_commas() {
        let d = Dialect::with_delimiter(';');
        let rows = vec![vec!["1,5".to_string(), "a;b".to_string()]];
        let text = write_delimited(&rows, &d);
        assert_eq!(text, "1,5;\"a;b\"\n");
        assert_eq!(parse(&text, &d), rows);
    }

    #[test]
    fn escape_only_dialect() {
        let d = Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        };
        roundtrip(&[vec!["a,b", "back\\slash", "line\nbreak"]], &d);
    }

    #[test]
    fn quote_and_escape_dialect_protects_the_escape() {
        let d = Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        };
        roundtrip(&[vec!["a\\b", "c,d", "q\"uote"]], &d);
    }

    #[test]
    fn bare_dialect_writes_verbatim() {
        let d = Dialect {
            delimiter: ',',
            quote: None,
            escape: None,
        };
        let rows = vec![vec!["plain".to_string(), "text".to_string()]];
        assert_eq!(write_delimited(&rows, &d), "plain,text\n");
    }

    #[test]
    fn empty_rows_and_empty_fields() {
        roundtrip(&[vec![""]], &Dialect::rfc4180());
        roundtrip(&[vec!["", ""], vec!["a", ""]], &Dialect::rfc4180());
        assert_eq!(write_delimited(&[], &Dialect::rfc4180()), "");
    }
}
