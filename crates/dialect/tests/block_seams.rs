//! Block-seam regression fixtures: structural characters positioned to
//! straddle the scanner's 16/32/64-byte block boundaries exactly.
//!
//! The block scanner classifies input in 64-byte SWAR blocks (and 8-byte
//! words within them), carrying parser state across block seams. These
//! tests pin the carry logic: a delimiter as the last byte of a block, a
//! quote toggling right at a seam, a `\r\n` pair split across two
//! blocks, and multi-byte UTF-8 sequences whose lead/continuation bytes
//! fall on different sides of a boundary. Each fixture is checked for
//! byte-identical output against the retained legacy char-walker.

use strudel_dialect::legacy::parse_legacy;
use strudel_dialect::{parse, try_parse, Dialect, Limits};

/// The word and block widths whose seams we engineer around.
const SEAMS: [usize; 4] = [8, 16, 32, 64];

fn assert_parity(text: &str, dialect: &Dialect) {
    assert_eq!(
        parse(text, dialect),
        parse_legacy(text, dialect),
        "divergence on {text:?}"
    );
}

/// Pad with `n` filler bytes so the interesting character lands at an
/// exact absolute offset.
fn pad(n: usize) -> String {
    "x".repeat(n)
}

#[test]
fn delimiter_on_each_side_of_every_seam() {
    let d = Dialect::rfc4180();
    for seam in SEAMS {
        // Delimiter at seam-1 (last byte of a block), seam (first byte
        // of the next), and seam+1.
        for offset in [seam - 1, seam, seam + 1] {
            let text = format!("{},b\n", pad(offset));
            assert_parity(&text, &d);
        }
    }
}

#[test]
fn quote_toggles_straddle_seams() {
    let d = Dialect::rfc4180();
    for seam in SEAMS {
        // Opening quote exactly at the seam; closing quote exactly at
        // the seam; the quoted content crossing the seam.
        let open_at_seam = format!("{},\"q\",z\n", pad(seam - 1));
        assert_parity(&open_at_seam, &d);
        let close_at_seam = format!("\"{}\",z\n", pad(seam - 1));
        assert_parity(&close_at_seam, &d);
        let content_across = format!("\"{}\",z\n", pad(seam + 3));
        assert_parity(&content_across, &d);
        // Doubled quote split by the seam: first quote at seam-1,
        // second at seam.
        let doubled_across = format!("\"{}\"\"tail\",z\n", pad(seam - 2));
        assert_parity(&doubled_across, &d);
    }
}

#[test]
fn crlf_pairs_split_across_seams() {
    let d = Dialect::rfc4180();
    for seam in SEAMS {
        // \r as the last byte of a block, \n as the first of the next.
        let split = format!("{}\r\nnext,row\n", pad(seam - 1));
        assert_parity(&split, &d);
        // Bare \r at the seam (no \n following).
        let bare = format!("{}\rnext,row\n", pad(seam - 1));
        assert_parity(&bare, &d);
        // \r\n fully inside the previous block, record start at seam.
        let before = format!("{}\r\n{}", pad(seam - 2), "a,b\n");
        assert_parity(&before, &d);
    }
}

#[test]
fn multibyte_utf8_straddles_seams() {
    let d = Dialect::rfc4180();
    // é = 2 bytes, € = 3 bytes, 🙂 = 4 bytes. Position each so the seam
    // falls between its lead and continuation bytes, at every possible
    // interior split.
    for seam in SEAMS {
        for (ch, width) in [('\u{00E9}', 2), ('\u{20AC}', 3), ('\u{1F642}', 4)] {
            for split in 1..width {
                let text = format!("{}{ch},b\n", pad(seam - split));
                assert_parity(&text, &d);
                // Same, inside a quoted field.
                let quoted = format!("\"{}{ch}\",b\n", pad(seam - split - 1));
                assert_parity(&quoted, &d);
            }
        }
    }
}

#[test]
fn escape_consuming_across_seams() {
    let d = Dialect {
        delimiter: ',',
        quote: Some('"'),
        escape: Some('\\'),
    };
    for seam in SEAMS {
        // Escape as the last byte of a block: the escaped character is
        // the first byte of the next block.
        let escaped_delim = format!("{}\\,tail,z\n", pad(seam - 1));
        assert_parity(&escaped_delim, &d);
        // Escape whose escaped character is multi-byte and straddles.
        let escaped_wide = format!("{}\\\u{1F642},z\n", pad(seam - 1));
        assert_parity(&escaped_wide, &d);
        // Escape at seam inside quotes.
        let escaped_quoted = format!("\"{}\\\"x\",z\n", pad(seam - 2));
        assert_parity(&escaped_quoted, &d);
    }
}

#[test]
fn field_and_record_limits_across_seams() {
    // Limit crossings computed inside a run that spans multiple blocks
    // must report the same actual/max as the per-char legacy walk.
    let d = Dialect::rfc4180();
    for seam in SEAMS {
        let mut limits = Limits::unbounded();
        limits.max_line_bytes = Some(seam as u64);
        for width in [seam - 1, seam, seam + 1, seam + 17] {
            let text = format!("{}\nshort\n", pad(width));
            let legacy = strudel_dialect::legacy::try_parse_legacy(&text, &d, &limits);
            let fast = try_parse(&text, &d, &limits);
            match (legacy, fast) {
                (Ok(a), Ok(b)) => assert_eq!(b, a),
                (Err(a), Err(b)) => assert_eq!(format!("{b}"), format!("{a}")),
                (a, b) => panic!("outcome diverges at width {width}: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn dense_structural_runs_across_seams() {
    // Pathological all-structural input: every byte is an event, across
    // several blocks. Exercises the cached-mask bit consumption.
    let d = Dialect::rfc4180();
    for len in [63, 64, 65, 127, 128, 129, 200] {
        assert_parity(&",".repeat(len), &d);
        assert_parity(&"\"".repeat(len), &d);
        assert_parity(&"\n".repeat(len), &d);
        assert_parity(&"\r".repeat(len), &d);
        assert_parity(&"\r\n".repeat(len), &d);
        assert_parity(&",\"\n".repeat(len), &d);
    }
}
