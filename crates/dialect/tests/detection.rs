//! Integration tests of dialect detection on realistic verbose files,
//! plus property tests on the detector's invariants.

use proptest::prelude::*;
use strudel_dialect::{best_dialect, detect_dialect, parse, read_table, read_table_with, Dialect};

#[test]
fn single_quote_dialect_detected() {
    let text = "name,desc\n'Smith, J.',teacher\n'Lee, A.',doctor\n'Wu, B.',nurse\n'Nu, C.',pilot\n";
    let d = detect_dialect(text);
    assert_eq!(d.delimiter, ',');
    assert_eq!(d.quote, Some('\''));
}

#[test]
fn escape_character_dialect_detected() {
    // Backslash-escaped delimiters inside unquoted fields: the escape
    // candidate must win because it yields consistent 2-cell rows.
    let text = "key,value\na\\,x,1\nb\\,y,2\nc\\,z,3\nd\\,w,4\ne\\,v,5\n";
    let d = best_dialect(text);
    assert_eq!(d.dialect.delimiter, ',');
    assert_eq!(d.dialect.escape, Some('\\'));
    let table = read_table_with(text, &d.dialect);
    assert_eq!(table.n_cols(), 2);
    assert_eq!(table.cell(1, 0).raw(), "a,x");
}

#[test]
fn verbose_file_with_sparse_metadata_and_notes() {
    // Metadata and notes have no delimiters at all; the table body must
    // still dominate the decision.
    let text = "\
Annual energy report
reference period 2020

region;coal;gas;wind
north;12;30;44
south;8;22;51
east;15;28;33
west;11;25;48

Source: ministry of energy
";
    let d = detect_dialect(text);
    assert_eq!(d.delimiter, ';');
}

#[test]
fn decimal_commas_do_not_fool_semicolon_files() {
    let text = "a;b;c\n1,5;2,25;3,75\n4,5;5,25;6,75\n7,5;8,25;9,75\n";
    assert_eq!(detect_dialect(text).delimiter, ';');
}

#[test]
fn tab_separated_with_spaces_inside_cells() {
    let text = "first name\tlast name\tage\nJohn Paul\tSmith\t33\nMary Jane\tDoe\t28\n";
    assert_eq!(detect_dialect(text).delimiter, '\t');
}

#[test]
fn score_components_are_exposed() {
    let scored = best_dialect("a,b\nc,d\ne,f\n");
    assert!(scored.pattern_score > 0.0);
    assert!(scored.type_score > 0.0);
    assert!((scored.score - scored.pattern_score * scored.type_score).abs() < 1e-12);
}

#[test]
fn read_table_crops_nothing_by_itself() {
    let (table, _) = read_table("\n\na,b\n\n");
    assert_eq!(table.n_rows(), 4); // parse keeps the blank lines
    let cropped = table.cropped();
    assert_eq!(cropped.n_rows(), 1);
}

proptest! {
    /// Parsing is total: arbitrary bytes of printable text never panic
    /// and always yield rows under any candidate dialect.
    #[test]
    fn parse_is_total(text in "[ -~\t\r\n]{0,200}") {
        for delimiter in [',', ';', '\t'] {
            let d = Dialect { delimiter, quote: Some('"'), escape: Some('\\') };
            let _rows = parse(&text, &d);
        }
        let _ = detect_dialect(&text);
    }

    /// Joining fields with a delimiter they don't contain and parsing
    /// recovers them exactly.
    #[test]
    fn join_parse_roundtrip(
        fields in proptest::collection::vec("[a-z0-9 ]{0,8}", 1..6),
        rows in 1usize..6,
    ) {
        let line = fields.join(";");
        prop_assume!(!line.is_empty()); // an empty text parses to no records
        let text = (0..rows).map(|_| line.clone()).collect::<Vec<_>>().join("\n");
        let parsed = parse(&text, &Dialect::with_delimiter(';'));
        prop_assert_eq!(parsed.len(), rows);
        for row in parsed {
            prop_assert_eq!(&row, &fields);
        }
    }
}
