//! Regression tests for parser and detection edge cases that used to
//! panic, lose data, or blow the detection budget: unterminated quotes
//! at EOF, CR-only line endings, and literal quote characters inside
//! unquoted fields.

use strudel_dialect::{detect_dialect, parse, read_table, try_parse, Dialect, Limits};

fn rows(text: &str) -> Vec<Vec<String>> {
    parse(text, &Dialect::rfc4180())
}

fn owned(rows: &[&[&str]]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect()
}

#[test]
fn unterminated_quote_at_eof_keeps_all_content() {
    // The open quote swallows the rest of the file into one field; that
    // field must still be flushed at EOF, never dropped.
    assert_eq!(rows("a,\"bc"), owned(&[&["a", "bc"]]));
    assert_eq!(rows("a,\"b\nc,d"), owned(&[&["a", "b\nc,d"]]));
    // A lone quote is an empty unterminated field, not an empty file.
    assert_eq!(rows("\""), owned(&[&[""]]));
    // Closing quote as the very last byte: one empty quoted field.
    assert_eq!(rows("\"\""), owned(&[&[""]]));
    assert_eq!(rows("a,\"\""), owned(&[&["a", ""]]));
}

#[test]
fn unterminated_quote_roundtrips_through_the_full_reader() {
    let (table, _) = read_table("x,y\n1,\"open");
    assert_eq!(table.n_rows(), 2);
    assert_eq!(table.cell(1, 1).raw(), "open");
}

#[test]
fn cr_only_line_endings_separate_records() {
    assert_eq!(
        rows("a,b\rc,d\re,f"),
        owned(&[&["a", "b"], &["c", "d"], &["e", "f"]])
    );
    // Mixed endings in one file: each break yields exactly one record.
    assert_eq!(
        rows("a,b\r\nc,d\re,f\n"),
        owned(&[&["a", "b"], &["c", "d"], &["e", "f"]])
    );
}

#[test]
fn cr_only_file_detects_its_dialect() {
    // CR-only files previously defeated the detection line budget (the
    // sampler only counted `\n`), degrading detection to a full-file
    // scan per candidate. The result must match the `\n` twin.
    let lf = "name;score\nalice;3,5\nbob;2,25\ncarl;4,75\n";
    let cr = lf.replace('\n', "\r");
    assert_eq!(detect_dialect(&cr).delimiter, ';');
    assert_eq!(detect_dialect(&cr), detect_dialect(lf));
}

#[test]
fn cr_only_file_respects_parse_limits() {
    let cr = "a,b\r".repeat(100);
    let mut limits = Limits::unbounded();
    limits.max_rows = Some(10);
    assert!(try_parse(&cr, &Dialect::rfc4180(), &limits).is_err());
}

#[test]
fn quote_char_inside_unquoted_field_is_literal() {
    // RFC 4180 only gives `"` special meaning at the start of a field;
    // mid-field quotes are data.
    assert_eq!(rows("a\"b,c"), owned(&[&["a\"b", "c"]]));
    assert_eq!(rows("5\" disk,10"), owned(&[&["5\" disk", "10"]]));
    // Even a pair of them stays literal mid-field.
    assert_eq!(rows("it\"\"s,x"), owned(&[&["it\"\"s", "x"]]));
}

#[test]
fn quote_noise_does_not_derail_detection() {
    let text = "item,size\ndisk,5\" drive\ntape,9\" reel\ncable,3\" lead\n";
    assert_eq!(detect_dialect(text).delimiter, ',');
}
