//! Parallel ≡ serial parity: the chunked scanner against the serial
//! block scanner (which `tests/parity.rs` in turn holds equal to the
//! legacy reference walker).
//!
//! Layers:
//!
//! 1. **Deterministic chunked emulation** via
//!    [`try_scan_records_chunked`] — every seam-placement decision is
//!    reproducible, so proptests can sweep arbitrary chunk counts and
//!    pathological seams (quoted fields spanning chunks, CRLF pairs at
//!    seams, quote == delimiter dialects).
//! 2. **Limit parity**: under tight `Limits` the chunked scan must fail
//!    with the same kind/actual/max as the serial scan, or both succeed
//!    identically — splice replay and seam repair preserve the exact
//!    serial check order.
//! 3. **Real concurrency** via [`try_scan_records_threaded`] on inputs
//!    large enough to clear the parallel floor, at the thread count CI
//!    injects through `STRUDEL_THREADS` (2-thread and max-thread runs).
//! 4. **Deadline payload pinning**: a deadline trip inside a worker
//!    reports the identical `LimitKind::WallClock` payload as the
//!    serial scanner.

use proptest::prelude::*;
use std::time::Duration;
use strudel_dialect::{
    scan_records, try_scan_records, try_scan_records_chunked, try_scan_records_threaded, Deadline,
    Dialect, LimitKind, Limits, StrudelError,
};

/// Assert the chunked scan at `n_chunks` matches the serial scan on
/// records, spans (via materialised rows), and the copy-on-write count.
fn assert_chunk_parity(text: &str, dialect: &Dialect, n_chunks: usize) {
    let serial = scan_records(text, dialect);
    let chunked = try_scan_records_chunked(
        text,
        dialect,
        &Limits::unbounded(),
        Deadline::none(),
        n_chunks,
    )
    .expect("unbounded chunked scan cannot fail");
    assert_eq!(
        chunked.to_owned_rows(),
        serial.to_owned_rows(),
        "rows diverge on {text:?} under {dialect:?} with {n_chunks} chunks"
    );
    assert_eq!(chunked.n_records(), serial.n_records());
    assert_eq!(chunked.n_fields(), serial.n_fields());
    assert_eq!(
        chunked.n_cow_fields(),
        serial.n_cow_fields(),
        "cow spans diverge on {text:?} under {dialect:?} with {n_chunks} chunks"
    );
    assert!(chunked.n_chunks() >= 1);
}

/// Assert serial and chunked scans agree under `limits`: identical rows
/// on success, identical limit kind/actual/max on failure.
fn assert_chunk_limit_parity(text: &str, dialect: &Dialect, limits: &Limits, n_chunks: usize) {
    let serial = try_scan_records(text, dialect, limits).map(|r| r.to_owned_rows());
    let chunked = try_scan_records_chunked(text, dialect, limits, Deadline::none(), n_chunks)
        .map(|r| r.to_owned_rows());
    match (serial, chunked) {
        (Ok(a), Ok(b)) => assert_eq!(b, a, "rows diverge on {text:?} with {n_chunks} chunks"),
        (
            Err(StrudelError::LimitExceeded {
                limit: la,
                actual: aa,
                max: ma,
                ..
            }),
            Err(StrudelError::LimitExceeded {
                limit: lb,
                actual: ab,
                max: mb,
                ..
            }),
        ) => {
            assert_eq!(
                (lb, ab, mb),
                (la, aa, ma),
                "limit payload diverges on {text:?} under {dialect:?} with {n_chunks} chunks"
            );
        }
        (a, b) => panic!(
            "outcome diverges on {text:?} under {dialect:?} with {n_chunks} chunks: \
             serial {a:?}, chunked {b:?}"
        ),
    }
}

fn arb_dialect(idx: usize) -> Dialect {
    match idx % 6 {
        0 => Dialect::rfc4180(),
        1 => Dialect::with_delimiter(';'),
        2 => Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        3 => Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
        // Degenerate collision: quote == delimiter.
        4 => Dialect {
            delimiter: ',',
            quote: Some(','),
            escape: None,
        },
        _ => Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('"'),
        },
    }
}

/// Multi-line inputs with structural characters over-weighted so most
/// cases contain quotes, escapes, CRLF pairs, and short lines — lots of
/// candidate seams for any chunk count.
fn arb_input() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[-a-z0-9,\"\\\\\n\r ]{0,160}").expect("valid regex")
}

proptest! {
    /// Unbounded parity on arbitrary inputs × dialects × chunk counts.
    #[test]
    fn chunked_matches_serial(text in arb_input(), d_idx in 0usize..6, k in 1usize..9) {
        assert_chunk_parity(&text, &arb_dialect(d_idx), k);
    }

    /// Limit parity on arbitrary inputs × dialects × chunk counts ×
    /// tight bounds of every streaming kind.
    #[test]
    fn chunked_matches_serial_under_limits(
        text in arb_input(),
        d_idx in 0usize..6,
        k in 2usize..7,
        line in 1u64..12,
        quoted in 1u64..12,
        rows in 1u64..6,
        cols in 1u64..6,
        cells in 1u64..12,
    ) {
        let d = arb_dialect(d_idx);
        for limits in [
            {
                let mut l = Limits::unbounded();
                l.max_line_bytes = Some(line);
                l
            },
            {
                let mut l = Limits::unbounded();
                l.max_quoted_field_bytes = Some(quoted);
                l
            },
            {
                let mut l = Limits::unbounded();
                l.max_rows = Some(rows);
                l.max_cols = Some(cols);
                l.max_cells = Some(cells);
                l
            },
        ] {
            assert_chunk_limit_parity(&text, &d, &limits, k);
        }
    }

    /// Quoted fields engineered to span chunk boundaries: `\n` bytes
    /// inside quotes are exactly the split candidates the boundary
    /// picker chooses, so entry speculation is wrong and seam repair
    /// must recover.
    #[test]
    fn quoted_fields_spanning_chunks(
        pre_lines in 0usize..6,
        quoted_lines in 1usize..8,
        post_lines in 0usize..6,
        k in 2usize..9,
    ) {
        let mut text = String::new();
        for i in 0..pre_lines {
            text.push_str(&format!("p{i},x\n"));
        }
        text.push('"');
        for i in 0..quoted_lines {
            text.push_str(&format!("q{i} line\n"));
        }
        text.push_str("\",tail\n");
        for i in 0..post_lines {
            text.push_str(&format!("s{i},y\r\n"));
        }
        assert_chunk_parity(&text, &Dialect::rfc4180(), k);
        let mut l = Limits::unbounded();
        l.max_line_bytes = Some(6);
        assert_chunk_limit_parity(&text, &Dialect::rfc4180(), &l, k);
    }

    /// CRLF terminators at every seam: boundary derivation must never
    /// split a `\r\n` pair, and the `line_start` off-by-one of the
    /// post-CRLF entry state must be handled (splice when no line bound
    /// is set, repair when one is).
    #[test]
    fn crlf_heavy_inputs(lines in 1usize..24, k in 2usize..9, line_bound in 1u64..10) {
        let text: String = (0..lines).map(|i| format!("r{i},v{i}\r\n")).collect();
        assert_chunk_parity(&text, &Dialect::rfc4180(), k);
        let mut l = Limits::unbounded();
        l.max_line_bytes = Some(line_bound);
        assert_chunk_limit_parity(&text, &Dialect::rfc4180(), &l, k);
    }
}

/// Unterminated quote swallowing the rest of the file: every later
/// chunk's speculation is wrong and no sync point exists — the per-chunk
/// serial fallback must still reproduce the serial result.
#[test]
fn unterminated_quote_disables_all_later_chunks() {
    let mut text = String::from("a,b\nc,d\n\"open");
    for i in 0..200 {
        text.push_str(&format!("\nline{i},x"));
    }
    for k in [2, 3, 5, 8] {
        assert_chunk_parity(&text, &Dialect::rfc4180(), k);
    }
}

/// Escaped `\n` immediately before a chunk boundary: the escape consumes
/// the newline, so the boundary is mid-field and speculation is wrong.
#[test]
fn escaped_newline_at_seam() {
    let esc = Dialect {
        delimiter: ',',
        quote: Some('"'),
        escape: Some('\\'),
    };
    // Boundary targets land inside and after the escaped-newline runs.
    let text = "head,1\nval\\\nue,2\nnext\\\n\\\n,3\ntail,4\n";
    for k in 1..=text.len().min(12) {
        assert_chunk_parity(text, &esc, k);
    }
}

/// More chunks than lines, chunks than bytes, empty input, input
/// without any newline: degenerate splits must all fall back cleanly.
#[test]
fn degenerate_chunk_counts() {
    for (text, d) in [
        ("", Dialect::rfc4180()),
        ("no newline at all", Dialect::rfc4180()),
        ("a,b\n", Dialect::rfc4180()),
        ("\n\n\n\n", Dialect::rfc4180()),
        ("x\r\n", Dialect::rfc4180()),
    ] {
        for k in [1, 2, 3, 16, 64] {
            assert_chunk_parity(text, &d, k);
        }
    }
}

/// Thread count CI injects for the concurrency runs (defaults to 4).
fn ci_threads() -> usize {
    std::env::var("STRUDEL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4)
}

/// A large mixed workload (quoted multiline fields, CRLF, ragged rows)
/// scanned on a real worker pool must equal the serial scan.
#[test]
fn threaded_pool_matches_serial_on_large_input() {
    let mut text = String::with_capacity(300 << 10);
    let mut i = 0usize;
    while text.len() < 256 << 10 {
        match i % 5 {
            0 => text.push_str(&format!("row{i},alpha,\"quoted {i}\",12.5\n")),
            1 => text.push_str(&format!("row{i},\"multi\nline\nnote {i}\",x\r\n")),
            2 => text.push_str(&format!("row{i},plain,{i}\r\n")),
            3 => text.push_str(&format!("ragged{i}\n")),
            _ => text.push_str(&format!("row{i},\"say \"\"hi\"\" {i}\",end\n")),
        }
        i += 1;
    }
    let d = Dialect::rfc4180();
    let serial = scan_records(&text, &d);
    for threads in [2, ci_threads()] {
        let par =
            try_scan_records_threaded(&text, &d, &Limits::unbounded(), Deadline::none(), threads)
                .expect("unbounded scan cannot fail");
        assert_eq!(par.to_owned_rows(), serial.to_owned_rows());
        assert_eq!(par.n_cow_fields(), serial.n_cow_fields());
        assert!(par.n_chunks() >= 1);
    }
}

/// Threaded scan under streaming limits: the replayed global counters
/// must trip with the serial payload even when the trip happens deep in
/// a later chunk.
#[test]
fn threaded_pool_matches_serial_under_limits() {
    let text: String = (0..20_000).map(|i| format!("a{i},b{i},c{i}\n")).collect();
    let d = Dialect::rfc4180();
    let mut limits = Limits::unbounded();
    limits.max_rows = Some(17_500);
    let serial = try_scan_records(&text, &d, &limits).unwrap_err();
    let par =
        try_scan_records_threaded(&text, &d, &limits, Deadline::none(), ci_threads()).unwrap_err();
    match (serial, par) {
        (
            StrudelError::LimitExceeded {
                limit: la,
                actual: aa,
                max: ma,
                ..
            },
            StrudelError::LimitExceeded {
                limit: lb,
                actual: ab,
                max: mb,
                ..
            },
        ) => assert_eq!((lb, ab, mb), (la, aa, ma)),
        other => panic!("unexpected: {other:?}"),
    }
}

/// Satellite pin: a deadline trip observed inside a worker carries the
/// identical `LimitKind::WallClock` payload as the serial scanner
/// (`actual = budget_ms + 1`, `max = budget_ms`) — the parallel path
/// polls per chunk-local 64 KiB but the error construction is shared.
#[test]
fn deadline_trip_payload_matches_serial() {
    // Large enough that every chunk of a 4-way split crosses the 64 KiB
    // polling interval, so workers (not the entry checks) observe the
    // expired deadline.
    let text: String = (0..40_000).map(|i| format!("r{i},value{i}\n")).collect();
    assert!(text.len() > 512 << 10);
    let d = Dialect::rfc4180();
    let expired = Deadline::after(Duration::ZERO);
    let serial = strudel_dialect::try_scan_records_within(&text, &d, &Limits::unbounded(), expired)
        .unwrap_err();
    let par = try_scan_records_threaded(&text, &d, &Limits::unbounded(), expired, 4).unwrap_err();
    let chunked =
        try_scan_records_chunked(&text, &d, &Limits::unbounded(), expired, 4).unwrap_err();
    for err in [&serial, &par, &chunked] {
        match err {
            StrudelError::LimitExceeded {
                limit, actual, max, ..
            } => {
                assert_eq!(*limit, LimitKind::WallClock);
                assert_eq!(*actual, *max + 1, "deadline payload is budget-derived");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    let payload = |e: &StrudelError| match e {
        StrudelError::LimitExceeded {
            limit, actual, max, ..
        } => (*limit, *actual, *max),
        _ => unreachable!(),
    };
    assert_eq!(payload(&par), payload(&serial));
    assert_eq!(payload(&chunked), payload(&serial));
}
