//! Differential parity harness: the zero-copy block scanner against the
//! retained legacy char-walker.
//!
//! The legacy walker in `strudel_dialect::legacy` is the reference
//! formulation of the forgiving RFC 4180 semantics; the block scanner
//! must be indistinguishable from it. Three layers of evidence:
//!
//! 1. An **exhaustive** sweep of every input up to length 5 over a
//!    structural alphabet (delimiter, quote, escape, `\r`, `\n`, plain
//!    bytes) × every dialect shape — this catches state-machine holes
//!    that random generation hits only rarely.
//! 2. **Property tests** over arbitrary printable inputs (embedded
//!    newlines, bare `\r`, unterminated quotes at EOF, doubled quotes)
//!    and arbitrary dialects, including multi-byte structural characters
//!    that force the scalar fallback.
//! 3. **Limit parity**: under tight `Limits` both paths must fail with
//!    the same typed error — same [`LimitKind`], same `actual`, same
//!    `max` — or both succeed with identical rows.
//!
//! The fuzz crate adds a fourth layer (seeded mutations of realistic
//! corpora, run in CI via `scripts/fuzz.sh`).

use proptest::prelude::*;
use strudel_dialect::legacy::{parse_legacy, try_parse_legacy};
use strudel_dialect::{parse, scan_records, try_parse, Dialect, Limits, StrudelError};

/// Assert both parsers agree on `text` under `dialect`, and that the
/// borrowed records materialise to the same rows as the owned adapter.
fn assert_parity(text: &str, dialect: &Dialect) {
    let legacy = parse_legacy(text, dialect);
    let fast = parse(text, dialect);
    assert_eq!(
        fast, legacy,
        "scanner diverges from legacy on {text:?} under {dialect:?}"
    );
    let records = scan_records(text, dialect);
    assert_eq!(
        records.to_owned_rows(),
        legacy,
        "RecordsRef materialisation diverges on {text:?} under {dialect:?}"
    );
    assert_eq!(records.n_records(), legacy.len());
    assert_eq!(
        records.n_fields(),
        legacy.iter().map(Vec::len).sum::<usize>()
    );
}

/// Assert both guarded parsers agree on `text` under `dialect` and
/// `limits`: identical rows on success, identical limit kind/actual/max
/// on failure.
fn assert_limit_parity(text: &str, dialect: &Dialect, limits: &Limits) {
    let legacy = try_parse_legacy(text, dialect, limits);
    let fast = try_parse(text, dialect, limits);
    match (legacy, fast) {
        (Ok(a), Ok(b)) => assert_eq!(b, a, "rows diverge on {text:?} under {dialect:?}"),
        (
            Err(StrudelError::LimitExceeded {
                limit: la,
                actual: aa,
                max: ma,
                ..
            }),
            Err(StrudelError::LimitExceeded {
                limit: lb,
                actual: ab,
                max: mb,
                ..
            }),
        ) => {
            assert_eq!(lb, la, "limit kind diverges on {text:?} under {dialect:?}");
            assert_eq!(
                (ab, mb),
                (aa, ma),
                "limit values diverge on {text:?} under {dialect:?} ({la:?})"
            );
        }
        (a, b) => {
            panic!("outcome diverges on {text:?} under {dialect:?}: legacy {a:?}, fast {b:?}")
        }
    }
}

/// Every dialect shape over a comma delimiter, plus structural-character
/// collisions (quote == delimiter etc.) that the public `Dialect` type
/// can express.
fn dialect_shapes() -> Vec<Dialect> {
    vec![
        Dialect::rfc4180(),
        Dialect {
            delimiter: ',',
            quote: None,
            escape: None,
        },
        Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
        // Degenerate collisions: the parser's per-state dispatch order
        // decides what wins; both paths must agree.
        Dialect {
            delimiter: ',',
            quote: Some(','),
            escape: None,
        },
        Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('"'),
        },
        Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some(','),
        },
    ]
}

/// Exhaustive sweep: every string up to `max_len` over a small
/// structural alphabet, every dialect shape. ~7^5 × 7 ≈ 120k parses —
/// fast enough for the default test tier, and the single most effective
/// net for block-scanner state bugs.
#[test]
fn exhaustive_small_inputs_match_legacy() {
    let alphabet = [',', '"', '\\', '\n', '\r', 'a', ';'];
    let dialects = dialect_shapes();
    let max_len = 5usize;
    let mut buf = String::with_capacity(max_len);
    for len in 0..=max_len {
        let mut idx = vec![0usize; len];
        'strings: loop {
            buf.clear();
            buf.extend(idx.iter().map(|&i| alphabet[i]));
            for d in &dialects {
                assert_parity(&buf, d);
            }
            let mut i = 0;
            loop {
                if i == len {
                    break 'strings;
                }
                idx[i] += 1;
                if idx[i] < alphabet.len() {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

/// Exhaustive limit sweep over length-4 inputs: every single-bound limit
/// tight enough to trip mid-parse. Covers the interplay of line bounds
/// with `\r\n` accounting, escape skips, and quoted-field accounting.
#[test]
fn exhaustive_small_inputs_match_legacy_under_limits() {
    let alphabet = [',', '"', '\\', '\n', 'a'];
    let dialects = dialect_shapes();
    let mut limit_sets = Vec::new();
    for v in [1u64, 2] {
        for kind in 0..5 {
            let mut l = Limits::unbounded();
            match kind {
                0 => l.max_line_bytes = Some(v),
                1 => l.max_quoted_field_bytes = Some(v),
                2 => l.max_rows = Some(v),
                3 => l.max_cols = Some(v),
                _ => l.max_cells = Some(v),
            }
            limit_sets.push(l);
        }
    }
    let max_len = 4usize;
    let mut buf = String::with_capacity(max_len);
    for len in 0..=max_len {
        let mut idx = vec![0usize; len];
        'strings: loop {
            buf.clear();
            buf.extend(idx.iter().map(|&i| alphabet[i]));
            for d in &dialects {
                for l in &limit_sets {
                    assert_limit_parity(&buf, d, l);
                }
            }
            let mut i = 0;
            loop {
                if i == len {
                    break 'strings;
                }
                idx[i] += 1;
                if idx[i] < alphabet.len() {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }
}

/// Targeted regressions for the legacy walker's known quirks — each of
/// these is a behaviour the scanner must *replicate*, not fix.
#[test]
fn legacy_quirks_are_replicated() {
    let esc = Dialect {
        delimiter: ',',
        quote: Some('"'),
        escape: Some('\\'),
    };
    // A lone escape consumes nothing and flushes nothing: zero records.
    assert_parity("\\", &esc);
    // Escape at EOF after content.
    assert_parity("ab\\", &esc);
    assert_parity("\"ab\\", &esc);
    // Escaped newline is field content, and the escaped character
    // bypasses line accounting.
    assert_parity("a\\\nb,c\n", &esc);
    // Stray content after a closing quote, including a stray escape
    // char (pushed literally — the QuoteInQuoted arm knows no escapes).
    assert_parity("\"ab\"\\cd,e\n", &esc);
    assert_parity("\"ab\"cd,e\n", &Dialect::rfc4180());
    // Doubled quotes at every position.
    assert_parity("\"\"\"\"", &Dialect::rfc4180());
    assert_parity("\"a\"\"b\"\"\",x\n", &Dialect::rfc4180());
    // \r\n straddling record ends; bare \r; \r as final byte.
    assert_parity("a\r\nb\rc\r", &Dialect::rfc4180());
    // Quoted field spanning physical lines with CRLF inside.
    assert_parity("\"a\r\nb\",c\r\n", &Dialect::rfc4180());
    // BOM-adjacent multi-byte content (the scanner must not split
    // multi-byte sequences when computing limit crossings).
    assert_parity("é,€\n🙂🙂,b\n", &Dialect::rfc4180());
}

/// Arbitrary printable inputs with structural characters over-weighted,
/// so quotes/escapes/line breaks appear in most cases.
fn arb_input() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[-a-z0-9,;\"\\\\\t\n\r ']{0,64}").expect("valid regex")
}

fn arb_dialect(idx: usize) -> Dialect {
    // Includes multi-byte structural characters (§, «) that force the
    // scalar fallback, so both scanner paths face the property tests.
    match idx % 8 {
        0 => Dialect::rfc4180(),
        1 => Dialect::with_delimiter(';'),
        2 => Dialect::with_delimiter('\t'),
        3 => Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        4 => Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
        5 => Dialect {
            delimiter: ',',
            quote: Some('\''),
            escape: None,
        },
        6 => Dialect {
            delimiter: '\u{00A7}',
            quote: Some('"'),
            escape: None,
        },
        _ => Dialect {
            delimiter: ',',
            quote: Some('\u{00AB}'),
            escape: Some('\\'),
        },
    }
}

proptest! {
    /// Unbounded parity on arbitrary inputs × dialects.
    #[test]
    fn scanner_matches_legacy(text in arb_input(), d_idx in 0usize..8) {
        assert_parity(&text, &arb_dialect(d_idx));
    }

    /// Limit parity on arbitrary inputs × dialects × tight bounds.
    #[test]
    fn scanner_matches_legacy_under_limits(
        text in arb_input(),
        d_idx in 0usize..8,
        line in 1u64..12,
        quoted in 1u64..12,
        rows in 1u64..6,
        cols in 1u64..6,
        cells in 1u64..12,
    ) {
        let d = arb_dialect(d_idx);
        for limits in [
            {
                let mut l = Limits::unbounded();
                l.max_line_bytes = Some(line);
                l
            },
            {
                let mut l = Limits::unbounded();
                l.max_quoted_field_bytes = Some(quoted);
                l
            },
            {
                let mut l = Limits::unbounded();
                l.max_rows = Some(rows);
                l.max_cols = Some(cols);
                l.max_cells = Some(cells);
                l
            },
        ] {
            assert_limit_parity(&text, &d, &limits);
        }
    }

    /// Inputs engineered around block seams: a prefix of plain bytes of
    /// arbitrary length positions a structural cluster anywhere relative
    /// to the 64-byte block grid.
    #[test]
    fn seam_positions_match_legacy(
        pad in 0usize..130,
        cluster in "[,\"\n\r\\\\]{1,6}",
        d_idx in 0usize..8,
    ) {
        let text = format!("{}{}tail", "x".repeat(pad), cluster);
        assert_parity(&text, &arb_dialect(d_idx));
    }
}
