//! Property: writing records under a dialect and re-parsing them is the
//! identity, for arbitrary cell contents — embedded delimiters, quotes,
//! newlines, carriage returns, and escape characters included.

use proptest::prelude::*;
use strudel_dialect::{
    decode_utf8, parse, try_read_table, write_delimited, Deadline, Dialect, Limits,
};

/// Arbitrary cell content over the full printable-ASCII range (which
/// contains every structural character of the tested dialects) plus
/// embedded line breaks.
fn arb_cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n\r]{0,10}").expect("valid regex")
}

/// Arbitrary record lists; records have at least one field (a zero-field
/// record is unrepresentable in delimited text).
fn arb_rows() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec(arb_cell(), 1..5), 0..7)
}

/// The dialects under test: quoting dialects over three delimiters, a
/// quote+escape dialect, and an escape-only dialect.
fn dialect(idx: usize) -> Dialect {
    match idx {
        0 => Dialect::rfc4180(),
        1 => Dialect::with_delimiter(';'),
        2 => Dialect::with_delimiter('\t'),
        3 => Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        _ => Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
    }
}

proptest! {
    /// `parse(write(rows)) == rows` for every dialect that can express
    /// structural content (via quoting or escaping).
    #[test]
    fn write_then_read_is_identity(rows in arb_rows(), d_idx in 0usize..5) {
        let dialect = dialect(d_idx);
        let text = write_delimited(&rows, &dialect);
        let reparsed = parse(&text, &dialect);
        prop_assert_eq!(&reparsed, &rows, "dialect {:?}, text {:?}", dialect, text);
    }

    /// Writing is deterministic and parsing it back twice agrees.
    #[test]
    fn write_is_deterministic(rows in arb_rows()) {
        let d = Dialect::rfc4180();
        prop_assert_eq!(write_delimited(&rows, &d), write_delimited(&rows, &d));
    }

    /// Feeding *any* byte string through the guarded reader either
    /// produces a table or a typed error — never a panic. Invalid UTF-8
    /// is rejected as a parse error with a byte position.
    #[test]
    fn arbitrary_bytes_yield_table_or_typed_error(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        match decode_utf8(&bytes) {
            Err(e) => prop_assert_eq!(e.category(), "parse"),
            Ok(text) => {
                if let Err(e) = try_read_table(text, &Limits::standard(), Deadline::none()) {
                    prop_assert!(!e.category().is_empty());
                }
            }
        }
    }

    /// One parse→rejoin cycle over arbitrary text reaches a fixed point:
    /// re-parsing the rejoined text reproduces the records exactly, even
    /// when the original text was structurally malformed (unterminated
    /// quotes, ragged rows, stray carriage returns).
    #[test]
    fn parse_then_rejoin_is_a_fixed_point(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        d_idx in 0usize..5,
    ) {
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let d = dialect(d_idx);
            let rows = parse(text, &d);
            let rejoined = write_delimited(&rows, &d);
            prop_assert_eq!(
                parse(&rejoined, &d), rows,
                "dialect {:?}, rejoined {:?}", d, rejoined
            );
        }
    }
}
