//! Property: writing records under a dialect and re-parsing them is the
//! identity, for arbitrary cell contents — embedded delimiters, quotes,
//! newlines, carriage returns, and escape characters included.

use proptest::prelude::*;
use strudel_dialect::{parse, write_delimited, Dialect};

/// Arbitrary cell content over the full printable-ASCII range (which
/// contains every structural character of the tested dialects) plus
/// embedded line breaks.
fn arb_cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n\r]{0,10}").expect("valid regex")
}

/// Arbitrary record lists; records have at least one field (a zero-field
/// record is unrepresentable in delimited text).
fn arb_rows() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(proptest::collection::vec(arb_cell(), 1..5), 0..7)
}

/// The dialects under test: quoting dialects over three delimiters, a
/// quote+escape dialect, and an escape-only dialect.
fn dialect(idx: usize) -> Dialect {
    match idx {
        0 => Dialect::rfc4180(),
        1 => Dialect::with_delimiter(';'),
        2 => Dialect::with_delimiter('\t'),
        3 => Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        _ => Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
    }
}

proptest! {
    /// `parse(write(rows)) == rows` for every dialect that can express
    /// structural content (via quoting or escaping).
    #[test]
    fn write_then_read_is_identity(rows in arb_rows(), d_idx in 0usize..5) {
        let dialect = dialect(d_idx);
        let text = write_delimited(&rows, &dialect);
        let reparsed = parse(&text, &dialect);
        prop_assert_eq!(&reparsed, &rows, "dialect {:?}, text {:?}", dialect, text);
    }

    /// Writing is deterministic and parsing it back twice agrees.
    #[test]
    fn write_is_deterministic(rows in arb_rows()) {
        let d = Dialect::rfc4180();
        prop_assert_eq!(write_delimited(&rows, &d), write_delimited(&rows, &d));
    }
}
