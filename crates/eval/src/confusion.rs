//! Confusion matrices and ensemble voting (Figure 3).
//!
//! The paper builds per-dataset confusion matrices by concatenating the
//! predictions of all cross-validation repetitions per element, taking a
//! majority vote, and breaking ties toward the class with *fewer*
//! instances in the dataset. Rows are normalised by per-class instance
//! counts.

/// A square confusion matrix over `n_classes` classes; rows are gold,
/// columns predicted.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    n_classes: usize,
}

impl ConfusionMatrix {
    /// An all-zero matrix.
    pub fn new(n_classes: usize) -> ConfusionMatrix {
        ConfusionMatrix {
            counts: vec![0; n_classes * n_classes],
            n_classes,
        }
    }

    /// Record one (gold, predicted) pair.
    ///
    /// # Panics
    /// Panics on out-of-range labels.
    pub fn add(&mut self, gold: usize, pred: usize) {
        assert!(
            gold < self.n_classes && pred < self.n_classes,
            "label out of range"
        );
        self.counts[gold * self.n_classes + pred] += 1;
    }

    /// Raw count of gold `g` predicted as `p`.
    pub fn count(&self, gold: usize, pred: usize) -> usize {
        self.counts[gold * self.n_classes + pred]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Gold support of one class (row sum).
    pub fn support(&self, gold: usize) -> usize {
        (0..self.n_classes).map(|p| self.count(gold, p)).sum()
    }

    /// Row-normalised matrix (each row sums to 1; all-zero rows stay 0),
    /// the form shown in Figure 3.
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        (0..self.n_classes)
            .map(|g| {
                let total = self.support(g);
                (0..self.n_classes)
                    .map(|p| {
                        if total == 0 {
                            0.0
                        } else {
                            self.count(g, p) as f64 / total as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Majority vote over repeated predictions for one element, breaking ties
/// toward the class with the smallest `class_frequency` (the paper's
/// "the fewer instances of a class included in the dataset, the more
/// prior the class is").
///
/// # Panics
/// Panics when `votes` is empty or contains labels out of range.
pub fn majority_vote(votes: &[usize], class_frequency: &[usize]) -> usize {
    assert!(!votes.is_empty(), "need at least one vote");
    let n_classes = class_frequency.len();
    let mut counts = vec![0usize; n_classes];
    for &v in votes {
        assert!(v < n_classes, "vote out of range");
        counts[v] += 1;
    }
    let max = *counts.iter().max().expect("non-empty");
    (0..n_classes)
        .filter(|&c| counts[c] == max)
        .min_by_key(|&c| class_frequency[c])
        .expect("at least one class at max")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_normalisation() {
        let mut m = ConfusionMatrix::new(3);
        m.add(0, 0);
        m.add(0, 1);
        m.add(1, 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.support(0), 2);
        let n = m.normalized();
        assert!((n[0][0] - 0.5).abs() < 1e-12);
        assert!((n[1][1] - 1.0).abs() < 1e-12);
        assert_eq!(n[2][2], 0.0); // empty row
    }

    #[test]
    fn majority_vote_plain() {
        assert_eq!(majority_vote(&[1, 1, 0], &[100, 50]), 1);
    }

    #[test]
    fn tie_breaks_toward_rarer_class() {
        // Classes 0 and 1 tie; class 1 is rarer in the dataset.
        assert_eq!(majority_vote(&[0, 1], &[1000, 10]), 1);
        assert_eq!(majority_vote(&[0, 1], &[10, 1000]), 0);
    }

    #[test]
    fn single_vote_wins() {
        assert_eq!(majority_vote(&[2], &[5, 5, 5]), 2);
    }

    #[test]
    #[should_panic(expected = "need at least one vote")]
    fn empty_votes_panic() {
        let _ = majority_vote(&[], &[1]);
    }
}
