//! Repeated, file-grouped k-fold cross-validation (Section 6.1.2).
//!
//! The paper's protocol: 10-fold cross-validation where "all elements
//! from a single file appear in either the training or the test set",
//! repeated ten times with different fold splits; scores are averaged
//! over the repetitions, and the Figure 3 confusion matrices are built
//! from a per-element majority vote across repetitions.

use crate::confusion::{majority_vote, ConfusionMatrix};
use crate::metrics::Evaluation;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Cross-validation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CvConfig {
    /// Number of folds.
    pub k: usize,
    /// Number of repetitions (fresh splits each).
    pub repeats: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CvConfig {
    fn default() -> Self {
        CvConfig {
            k: 10,
            repeats: 10,
            seed: 0,
        }
    }
}

/// One scored element: a stable id (file, item) for vote aggregation plus
/// gold and predicted class indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Index of the file the element belongs to.
    pub file: usize,
    /// Element id within the file (line index, or a linearised cell id).
    pub item: usize,
    /// Gold class index.
    pub gold: usize,
    /// Predicted class index.
    pub pred: usize,
}

/// All predictions of a repeated cross-validation run, grouped by
/// repetition.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// `per_repeat[r]` holds every test-fold prediction of repetition `r`.
    pub per_repeat: Vec<Vec<Prediction>>,
}

/// Split `n_files` file indices into `k` disjoint folds of near-equal
/// size, shuffled by `seed`.
///
/// # Panics
/// Panics when `k == 0` or `k > n_files`.
pub fn grouped_k_folds(n_files: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "k must be positive");
    assert!(k <= n_files, "cannot make {k} folds from {n_files} files");
    let mut order: Vec<usize> = (0..n_files).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));
    let mut folds = vec![Vec::new(); k];
    for (i, file) in order.into_iter().enumerate() {
        folds[i % k].push(file);
    }
    folds
}

/// Run repeated k-fold cross-validation. For each fold of each
/// repetition, `run_fold(train_files, test_files)` fits on the training
/// files and returns predictions for the test files' elements.
pub fn run_cross_validation<F>(n_files: usize, config: &CvConfig, mut run_fold: F) -> CvOutcome
where
    F: FnMut(&[usize], &[usize]) -> Vec<Prediction>,
{
    let mut per_repeat = Vec::with_capacity(config.repeats);
    for rep in 0..config.repeats {
        let folds = grouped_k_folds(n_files, config.k, config.seed ^ (rep as u64 + 1));
        let mut predictions = Vec::new();
        for test_fold in 0..config.k {
            let test: &[usize] = &folds[test_fold];
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != test_fold)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            predictions.extend(run_fold(&train, test));
        }
        per_repeat.push(predictions);
    }
    CvOutcome { per_repeat }
}

impl CvOutcome {
    /// Score each repetition (pooling its folds) and return all
    /// evaluations; average them with [`Evaluation::mean`].
    pub fn evaluations(&self, n_classes: usize) -> Vec<Evaluation> {
        self.per_repeat
            .iter()
            .map(|preds| {
                let gold: Vec<usize> = preds.iter().map(|p| p.gold).collect();
                let pred: Vec<usize> = preds.iter().map(|p| p.pred).collect();
                Evaluation::compute(&gold, &pred, n_classes)
            })
            .collect()
    }

    /// The repetition-averaged evaluation (the numbers of Table 6).
    pub fn mean_evaluation(&self, n_classes: usize) -> Evaluation {
        Evaluation::mean(&self.evaluations(n_classes))
    }

    /// The Figure 3 confusion matrix: per element, concatenate the
    /// predictions of all repetitions, majority-vote with ties broken
    /// toward the rarer class (by corpus-wide gold frequency), and count
    /// the ensemble prediction against gold.
    pub fn ensemble_confusion(&self, n_classes: usize) -> ConfusionMatrix {
        // Gold frequency over unique elements.
        let mut gold_of: HashMap<(usize, usize), usize> = HashMap::new();
        let mut votes: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for preds in &self.per_repeat {
            for p in preds {
                gold_of.insert((p.file, p.item), p.gold);
                votes.entry((p.file, p.item)).or_default().push(p.pred);
            }
        }
        let mut frequency = vec![0usize; n_classes];
        for &g in gold_of.values() {
            frequency[g] += 1;
        }
        let mut matrix = ConfusionMatrix::new(n_classes);
        for (key, vs) in &votes {
            let ensemble = majority_vote(vs, &frequency);
            matrix.add(gold_of[key], ensemble);
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_are_disjoint_and_cover() {
        let folds = grouped_k_folds(23, 5, 9);
        let mut seen = [false; 23];
        for fold in &folds {
            for &f in fold {
                assert!(!seen[f], "file {f} in two folds");
                seen[f] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn different_seeds_give_different_splits() {
        assert_ne!(grouped_k_folds(20, 4, 1), grouped_k_folds(20, 4, 2));
        assert_eq!(grouped_k_folds(20, 4, 1), grouped_k_folds(20, 4, 1));
    }

    #[test]
    fn cv_visits_every_file_exactly_once_per_repeat() {
        let config = CvConfig {
            k: 3,
            repeats: 2,
            seed: 5,
        };
        let outcome = run_cross_validation(9, &config, |train, test| {
            assert_eq!(train.len() + test.len(), 9);
            test.iter()
                .map(|&f| Prediction {
                    file: f,
                    item: 0,
                    gold: 0,
                    pred: 0,
                })
                .collect()
        });
        for preds in &outcome.per_repeat {
            let mut files: Vec<usize> = preds.iter().map(|p| p.file).collect();
            files.sort_unstable();
            assert_eq!(files, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn evaluations_pool_folds_within_repeat() {
        let config = CvConfig {
            k: 2,
            repeats: 1,
            seed: 0,
        };
        let outcome = run_cross_validation(4, &config, |_, test| {
            test.iter()
                .map(|&f| Prediction {
                    file: f,
                    item: 0,
                    gold: f % 2,
                    pred: 0,
                })
                .collect()
        });
        let evals = outcome.evaluations(2);
        assert_eq!(evals.len(), 1);
        assert!((evals[0].accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ensemble_confusion_majority_votes_across_repeats() {
        // 3 repeats; element (0,0) is predicted 1,1,0 → ensemble 1.
        let mut rep = 0;
        let config = CvConfig {
            k: 1,
            repeats: 3,
            seed: 0,
        };
        let outcome = run_cross_validation(1, &config, |_, _| {
            rep += 1;
            vec![Prediction {
                file: 0,
                item: 0,
                gold: 1,
                pred: if rep <= 2 { 1 } else { 0 },
            }]
        });
        let m = outcome.ensemble_confusion(2);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.count(1, 0), 0);
    }
}
