//! Permutation feature importance (Section 6.3.5, Figure 4).
//!
//! The paper measures feature influence with permutation importance —
//! chosen over impurity-based importance because many Strudel features
//! are low-cardinality and impurity importance favours high-cardinality
//! features. A feature's importance is the drop in accuracy when its
//! column is randomly permuted, averaged over several permutations. The
//! multi-class problem is decomposed one-vs-rest: a binary model per
//! class yields per-class importances.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use strudel_ml::{Classifier, Dataset};

/// Mean accuracy drop per feature when that feature is permuted
/// (`n_repeats` permutations each, the paper uses five).
///
/// Negative values (permutation *helped*) are kept as-is; callers may
/// clamp for display.
pub fn permutation_importance(
    model: &dyn Classifier,
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(n_repeats > 0, "need at least one permutation repeat");
    assert!(!data.is_empty(), "cannot score an empty dataset");
    let baseline = model.accuracy(data);
    let n = data.n_samples();
    (0..data.n_features())
        .map(|j| {
            let mut drop_sum = 0.0;
            for rep in 0..n_repeats {
                let mut rng = SmallRng::seed_from_u64(seed ^ (j as u64) << 20 ^ rep as u64);
                let mut values: Vec<f64> = (0..n).map(|i| data.x(i, j)).collect();
                values.shuffle(&mut rng);
                let permuted = data.with_feature_replaced(j, &values);
                drop_sum += baseline - model.accuracy(&permuted);
            }
            drop_sum / n_repeats as f64
        })
        .collect()
}

/// One-vs-rest per-class permutation importance: for each class, fit a
/// binary model with `fit` on the binarised dataset and score it. Returns
/// `importances[class][feature]`.
pub fn per_class_importance<M, F>(
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
    mut fit: F,
) -> Vec<Vec<f64>>
where
    M: Classifier,
    F: FnMut(&Dataset) -> M,
{
    (0..data.n_classes())
        .map(|class| {
            let binary = data.one_vs_rest(class);
            let model = fit(&binary);
            permutation_importance(&model, &binary, n_repeats, seed ^ (class as u64) << 40)
        })
        .collect()
}

/// Normalise one class's importances into shares of their positive total
/// (the 100%-stacked-bar view of Figure 4). Negative importances are
/// clamped to zero first; an all-zero vector stays all-zero.
pub fn importance_shares(importances: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = importances.iter().map(|&v| v.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        return vec![0.0; importances.len()];
    }
    clamped.into_iter().map(|v| v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_ml::{ForestConfig, RandomForest};

    /// Feature 0 fully determines the class; feature 1 is noise.
    fn informative_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let class = i % 2;
            rows.push(vec![class as f64, (i % 7) as f64 / 7.0]);
            y.push(class);
        }
        Dataset::from_rows(&rows, &y, 2)
    }

    #[test]
    fn informative_feature_dominates() {
        let ds = informative_dataset();
        let model = RandomForest::fit(&ds, &ForestConfig::fast(10, 0));
        let imp = permutation_importance(&model, &ds, 5, 1);
        assert!(imp[0] > 0.2, "importance of decisive feature: {}", imp[0]);
        assert!(imp[0] > 10.0 * imp[1].abs().max(0.01));
    }

    #[test]
    fn shares_sum_to_one() {
        let shares = importance_shares(&[0.3, 0.1, -0.2, 0.6]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(shares[2], 0.0);
    }

    #[test]
    fn all_zero_importances_stay_zero() {
        assert_eq!(importance_shares(&[0.0, -0.1]), vec![0.0, 0.0]);
    }

    #[test]
    fn per_class_shape() {
        let ds = informative_dataset();
        let imp = per_class_importance(&ds, 2, 3, |binary| {
            RandomForest::fit(binary, &ForestConfig::fast(5, 0))
        });
        assert_eq!(imp.len(), 2);
        assert!(imp.iter().all(|row| row.len() == 2));
    }
}
