//! # strudel-eval
//!
//! The evaluation harness of the Strudel reproduction: exactly the
//! protocol of the paper's Section 6.
//!
//! - [`Evaluation`] — per-class F1, accuracy, macro average (Table 6–8);
//! - [`run_cross_validation`] — repeated, *file-grouped* k-fold CV
//!   (all elements of one file stay in the same fold);
//! - [`ConfusionMatrix`] + [`majority_vote`] — Figure 3's ensemble
//!   confusion matrices with minority-class tie-breaking;
//! - [`permutation_importance`] / [`per_class_importance`] — Figure 4's
//!   one-vs-rest permutation feature importance.
//!
//! ```
//! use strudel_eval::Evaluation;
//!
//! let e = Evaluation::compute(&[0, 1, 1, 2], &[0, 1, 0, 2], 3);
//! assert!((e.accuracy - 0.75).abs() < 1e-12);
//! assert!(e.macro_f1(&[]) > 0.7);
//! ```

#![warn(missing_docs)]

mod confusion;
mod cv;
mod importance;
mod metrics;
mod significance;

pub use confusion::{majority_vote, ConfusionMatrix};
pub use cv::{grouped_k_folds, run_cross_validation, CvConfig, CvOutcome, Prediction};
pub use importance::{importance_shares, per_class_importance, permutation_importance};
pub use metrics::Evaluation;
pub use significance::{
    bootstrap_macro_f1, paired_randomization_test, ConfidenceInterval, PairedTest,
};
