//! Classification metrics: per-class F1, accuracy, macro average.
//!
//! The paper scores every experiment with per-class F1 and compares
//! approaches on the macro average, "which does not weigh the average
//! score with the support of individual classes" (Section 6.2) — the
//! right choice for the heavily imbalanced class distribution of verbose
//! CSV files.

/// Per-class precision/recall/F1 plus overall accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Per-class precision.
    pub precision: Vec<f64>,
    /// Per-class recall.
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Per-class gold support.
    pub support: Vec<usize>,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl Evaluation {
    /// Score `pred` against `gold` over `n_classes` classes.
    ///
    /// A class with zero support *and* zero predictions scores F1 = 0 and
    /// is skipped by [`Evaluation::macro_f1`]'s `exclude` mechanism when
    /// the caller wants it out of the average.
    ///
    /// # Panics
    /// Panics when `gold` and `pred` differ in length or contain labels
    /// `>= n_classes`.
    pub fn compute(gold: &[usize], pred: &[usize], n_classes: usize) -> Evaluation {
        assert_eq!(gold.len(), pred.len(), "one prediction per gold label");
        let mut tp = vec![0usize; n_classes];
        let mut fp = vec![0usize; n_classes];
        let mut fn_ = vec![0usize; n_classes];
        let mut support = vec![0usize; n_classes];
        let mut correct = 0usize;
        for (&g, &p) in gold.iter().zip(pred) {
            assert!(g < n_classes && p < n_classes, "label out of range");
            support[g] += 1;
            if g == p {
                tp[g] += 1;
                correct += 1;
            } else {
                fp[p] += 1;
                fn_[g] += 1;
            }
        }
        let safe_div = |a: usize, b: usize| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        let precision: Vec<f64> = (0..n_classes)
            .map(|c| safe_div(tp[c], tp[c] + fp[c]))
            .collect();
        let recall: Vec<f64> = (0..n_classes)
            .map(|c| safe_div(tp[c], tp[c] + fn_[c]))
            .collect();
        let f1 = (0..n_classes)
            .map(|c| {
                let (p, r) = (precision[c], recall[c]);
                if p + r == 0.0 {
                    0.0
                } else {
                    2.0 * p * r / (p + r)
                }
            })
            .collect();
        Evaluation {
            precision,
            recall,
            f1,
            support,
            accuracy: safe_div(correct, gold.len()),
        }
    }

    /// Macro-average F1 over all classes except those in `exclude`
    /// (the paper leaves `derived` out when scoring Pytheas, which cannot
    /// predict it).
    pub fn macro_f1(&self, exclude: &[usize]) -> f64 {
        let kept: Vec<usize> = (0..self.f1.len())
            .filter(|c| !exclude.contains(c))
            .collect();
        if kept.is_empty() {
            return 0.0;
        }
        kept.iter().map(|&c| self.f1[c]).sum::<f64>() / kept.len() as f64
    }

    /// Element-wise mean of several evaluations (used to average the
    /// repeated cross-validation runs). Supports are summed.
    ///
    /// # Panics
    /// Panics when `evals` is empty or shapes differ.
    pub fn mean(evals: &[Evaluation]) -> Evaluation {
        assert!(!evals.is_empty(), "cannot average zero evaluations");
        let n_classes = evals[0].f1.len();
        let n = evals.len() as f64;
        let mut out = Evaluation {
            precision: vec![0.0; n_classes],
            recall: vec![0.0; n_classes],
            f1: vec![0.0; n_classes],
            support: vec![0; n_classes],
            accuracy: 0.0,
        };
        for e in evals {
            assert_eq!(e.f1.len(), n_classes, "shape mismatch");
            for c in 0..n_classes {
                out.precision[c] += e.precision[c];
                out.recall[c] += e.recall[c];
                out.f1[c] += e.f1[c];
                out.support[c] += e.support[c];
            }
            out.accuracy += e.accuracy;
        }
        for c in 0..n_classes {
            out.precision[c] /= n;
            out.recall[c] /= n;
            out.f1[c] /= n;
        }
        out.accuracy /= n;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let e = Evaluation::compute(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(e.f1, vec![1.0, 1.0, 1.0]);
        assert_eq!(e.accuracy, 1.0);
        assert_eq!(e.support, vec![1, 1, 1]);
    }

    #[test]
    fn known_f1_values() {
        // Class 0: tp=1 (idx0), fn=1 (idx1), fp=1 (idx3 predicted 0).
        let gold = [0, 0, 1, 1];
        let pred = [0, 1, 1, 0];
        let e = Evaluation::compute(&gold, &pred, 2);
        assert!((e.precision[0] - 0.5).abs() < 1e-12);
        assert!((e.recall[0] - 0.5).abs() < 1e-12);
        assert!((e.f1[0] - 0.5).abs() < 1e-12);
        assert!((e.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_scores_zero() {
        let e = Evaluation::compute(&[0, 0], &[0, 0], 3);
        assert_eq!(e.f1[1], 0.0);
        assert_eq!(e.f1[2], 0.0);
        assert_eq!(e.support[1], 0);
    }

    #[test]
    fn macro_f1_excludes_classes() {
        let e = Evaluation::compute(&[0, 1, 2], &[0, 1, 0], 3);
        let all = e.macro_f1(&[]);
        let without_2 = e.macro_f1(&[2]);
        assert!(without_2 > all);
        assert!((e.macro_f1(&[0, 1, 2]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn mean_averages_scores_and_sums_support() {
        let a = Evaluation::compute(&[0, 1], &[0, 1], 2);
        let b = Evaluation::compute(&[0, 1], &[1, 0], 2);
        let m = Evaluation::mean(&[a, b]);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert!((m.f1[0] - 0.5).abs() < 1e-12);
        assert_eq!(m.support, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "one prediction per gold label")]
    fn length_mismatch_panics() {
        let _ = Evaluation::compute(&[0], &[0, 1], 2);
    }
}
