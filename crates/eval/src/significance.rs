//! Statistical comparison of classifiers: bootstrap confidence
//! intervals for scores and a paired randomisation (approximate
//! permutation) test for the difference between two systems evaluated on
//! the same elements.
//!
//! The paper compares systems by repeated cross-validation averages;
//! these utilities add the error bars a careful replication wants when
//! deciding whether "A beats B" on a finite corpus is signal or noise.

use crate::metrics::Evaluation;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A two-sided bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Percentile-bootstrap confidence interval of the macro-F1 of a
/// prediction set (resampling elements with replacement).
///
/// # Panics
/// Panics when inputs are empty or mismatched, `level` is outside
/// (0, 1), or `n_resamples == 0`.
pub fn bootstrap_macro_f1(
    gold: &[usize],
    pred: &[usize],
    n_classes: usize,
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert_eq!(gold.len(), pred.len(), "one prediction per gold label");
    assert!(!gold.is_empty(), "cannot bootstrap an empty sample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "level in (0,1)");
    assert!(n_resamples > 0, "need at least one resample");

    let estimate = Evaluation::compute(gold, pred, n_classes).macro_f1(&[]);
    let n = gold.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scores: Vec<f64> = (0..n_resamples)
        .map(|_| {
            let mut g = Vec::with_capacity(n);
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                g.push(gold[i]);
                p.push(pred[i]);
            }
            Evaluation::compute(&g, &p, n_classes).macro_f1(&[])
        })
        .collect();
    scores.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| ((q * (n_resamples - 1) as f64).round() as usize).min(n_resamples - 1);
    ConfidenceInterval {
        estimate,
        lo: scores[idx(alpha)],
        hi: scores[idx(1.0 - alpha)],
    }
}

/// Result of a paired randomisation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTest {
    /// Accuracy difference `a − b` on the full sample.
    pub observed_diff: f64,
    /// Approximate two-sided p-value: the share of label-swap
    /// randomisations whose |difference| reaches the observed one.
    pub p_value: f64,
}

/// Paired randomisation test on accuracy: systems `a` and `b` predicted
/// the same `gold` elements; under the null hypothesis their outputs are
/// exchangeable per element, so random swaps give the null distribution
/// of the accuracy difference.
///
/// # Panics
/// Panics on empty or mismatched inputs or `n_rounds == 0`.
pub fn paired_randomization_test(
    gold: &[usize],
    a: &[usize],
    b: &[usize],
    n_rounds: usize,
    seed: u64,
) -> PairedTest {
    assert!(!gold.is_empty(), "cannot test an empty sample");
    assert!(
        gold.len() == a.len() && gold.len() == b.len(),
        "prediction sets must align with gold"
    );
    assert!(n_rounds > 0, "need at least one randomisation round");

    let n = gold.len() as f64;
    // Per-element correctness indicators; only elements where the two
    // systems disagree in correctness contribute to the difference.
    let correct_a: Vec<f64> = gold.iter().zip(a).map(|(g, p)| f64::from(g == p)).collect();
    let correct_b: Vec<f64> = gold.iter().zip(b).map(|(g, p)| f64::from(g == p)).collect();
    let observed: f64 = correct_a
        .iter()
        .zip(&correct_b)
        .map(|(ca, cb)| ca - cb)
        .sum::<f64>()
        / n;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut extreme = 0usize;
    for _ in 0..n_rounds {
        let mut diff = 0.0;
        for (ca, cb) in correct_a.iter().zip(&correct_b) {
            let d = ca - cb;
            diff += if rng.gen_bool(0.5) { d } else { -d };
        }
        if (diff / n).abs() >= observed.abs() - 1e-15 {
            extreme += 1;
        }
    }
    PairedTest {
        observed_diff: observed,
        // +1 smoothing keeps the estimate conservative and never zero.
        p_value: (extreme + 1) as f64 / (n_rounds + 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_contains_the_estimate_and_orders() {
        let gold: Vec<usize> = (0..200).map(|i| i % 3).collect();
        let pred: Vec<usize> = gold
            .iter()
            .enumerate()
            .map(|(i, &g)| if i % 10 == 0 { (g + 1) % 3 } else { g })
            .collect();
        let ci = bootstrap_macro_f1(&gold, &pred, 3, 200, 0.95, 1);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.hi - ci.lo < 0.2, "CI too wide: {ci:?}");
    }

    #[test]
    fn perfect_prediction_ci_is_degenerate() {
        let gold = vec![0usize, 1, 0, 1, 0, 1];
        let ci = bootstrap_macro_f1(&gold, &gold, 2, 100, 0.9, 2);
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn identical_systems_are_not_significant() {
        let gold: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let pred: Vec<usize> = gold.iter().map(|&g| 1 - g).collect();
        let t = paired_randomization_test(&gold, &pred, &pred, 500, 3);
        assert_eq!(t.observed_diff, 0.0);
        assert!(t.p_value > 0.9);
    }

    #[test]
    fn clearly_better_system_is_significant() {
        let gold: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let good = gold.clone(); // always right
        let bad: Vec<usize> = gold
            .iter()
            .enumerate()
            .map(|(i, &g)| if i % 3 == 0 { 1 - g } else { g })
            .collect();
        let t = paired_randomization_test(&gold, &good, &bad, 1000, 4);
        assert!(t.observed_diff > 0.3);
        assert!(t.p_value < 0.01, "p = {}", t.p_value);
    }

    #[test]
    #[should_panic(expected = "prediction sets must align")]
    fn mismatched_lengths_panic() {
        let _ = paired_randomization_test(&[0, 1], &[0], &[0, 1], 10, 0);
    }
}
