//! Deterministic adversarial fuzzing for the Strudel pipeline.
//!
//! The harness asserts the central contract of the typed-error refactor:
//! **every byte string fed to structure detection yields `Ok(Structure)`
//! or a typed [`StrudelError`] — never a panic.**
//!
//! Inputs come from a seeded mutation engine: well-formed verbose CSV
//! files (from `strudel-datagen`, rendered with several delimiters) and
//! a set of handcrafted pathological bases are corrupted by a random
//! stack of byte-level mutations — truncation (possibly mid-UTF-8
//! sequence), quote and escape corruption, delimiter injection, NUL /
//! BOM / invalid-UTF-8 splices, ragged rows, line-ending churn, chunk
//! duplication, and megabyte single lines.
//!
//! Everything is driven by a single `u64` seed, so any failure found in
//! a long soak ([`run`] via the `strudel-fuzz` binary or
//! `scripts/fuzz.sh`) replays exactly in a debugger, and the bounded
//! tier-1 smoke test is fully reproducible in CI.
//!
//! Since the zero-copy block-scanner rewrite the harness is also a
//! **differential** fuzzer: every input is additionally parsed by both
//! the production scanner and the retained legacy char-walker under a
//! panel of dialects, and any divergence — different rows, different
//! limit kind, different limit counts — is a failure in its own right,
//! tallied separately from panics ([`FuzzReport::divergences`]).
//!
//! The bounded-memory streaming classifier adds a third differential
//! dimension: every input is also classified through
//! [`strudel::StreamClassifier`] under the [`stream_panel`] of window
//! geometries. The huge-window geometry must reproduce the whole-file
//! [`Strudel::try_detect_structure_bytes`] output — structure JSON *and*
//! error payloads — exactly, and every geometry must be invariant to how
//! the byte stream is chunked. Any disagreement counts as a divergence
//! and fails the soak ([`check_stream_divergence`]).
//!
//! The packed container format adds a fourth dimension
//! ([`check_pack_roundtrip`]): every input that packs cleanly must
//! unpack byte-identically, and the container must fail *typed* at
//! every truncation prefix and under a spread of single-byte
//! corruptions — a panic or a silent wrong reconstruction anywhere in
//! the pack→unpack path fails the soak.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use strudel::{
    stream_to_json, StreamClassifier, StreamConfig, StreamSummary, Strudel, StrudelCellConfig,
    StrudelLineConfig,
};
use strudel_dialect::legacy::try_parse_legacy;
use strudel_dialect::{try_parse, try_scan_records_chunked, try_scan_records_within, Dialect};
use strudel_ml::ForestConfig;
use strudel_table::{Deadline, LimitKind, Limits, StrudelError};

/// Fit the small fixed model the fuzz targets run under. Inference is a
/// pure function of (model, input), so one cheap model exercises the
/// exact same parsing and classification code paths as a full-size one.
pub fn fuzz_model() -> Strudel {
    let corpus = strudel_datagen::saus(&strudel_datagen::GeneratorConfig {
        n_files: 8,
        seed: 7,
        scale: 0.2,
    });
    Strudel::fit(
        &corpus.files,
        &StrudelCellConfig {
            line: StrudelLineConfig {
                forest: ForestConfig::fast(6, 1),
                ..StrudelLineConfig::default()
            },
            forest: ForestConfig::fast(6, 2),
            ..StrudelCellConfig::default()
        },
    )
}

/// Well-formed and pathological base inputs the mutation engine starts
/// from. All deterministic: synthetic corpora under fixed seeds rendered
/// with several delimiters, plus handcrafted structural edge cases.
pub fn base_inputs() -> Vec<Vec<u8>> {
    let mut bases: Vec<Vec<u8>> = Vec::new();
    let cfg = strudel_datagen::GeneratorConfig {
        n_files: 3,
        seed: 11,
        scale: 0.2,
    };
    for name in ["saus", "deex", "govuk"] {
        let corpus = strudel_datagen::by_name(name, &cfg);
        for (i, file) in corpus.files.iter().enumerate() {
            let delimiter = [',', ';', '\t'][i % 3];
            bases.push(file.table.to_delimited(delimiter).into_bytes());
        }
    }
    for text in [
        "",
        "\n",
        "\u{FEFF}a,b\n1,2\n",
        "\"\"",
        "\"unterminated\nquote,runs\nto,eof",
        "a,b,c\n1\n1,2,3,4,5\n",
        "only one column\nno delimiter here\n",
        "\r\rcr,only\rline,endings\r",
        "x,\"quote \"\" inside\",y\n",
        "Notes: total includes \"estimates\", see appendix\na,b\n1,2\n",
    ] {
        bases.push(text.as_bytes().to_vec());
    }
    bases
}

/// Number of distinct mutation operators in [`mutate_once`].
pub const N_MUTATIONS: usize = 11;

/// Apply one random byte-level mutation to `data` in place.
pub fn mutate_once(data: &mut Vec<u8>, rng: &mut SmallRng) {
    // Positions are byte offsets, deliberately blind to UTF-8 boundaries:
    // splitting a multi-byte sequence is one of the adversarial cases.
    let pos = |data: &Vec<u8>, rng: &mut SmallRng| rng.gen_range(0..data.len().max(1));
    match rng.gen_range(0..N_MUTATIONS) {
        // Truncate at an arbitrary byte.
        0 => {
            let at = pos(data, rng);
            data.truncate(at);
        }
        // Flip one byte to an arbitrary value.
        1 => {
            if !data.is_empty() {
                let at = pos(data, rng);
                data[at] = rng.gen_range(0..=255u32) as u8;
            }
        }
        // Insert or delete a quote character.
        2 => {
            let at = pos(data, rng);
            if rng.gen_bool(0.5) || data.is_empty() {
                data.insert(at.min(data.len()), b'"');
            } else {
                data.remove(at);
            }
        }
        // Inject a delimiter or escape character.
        3 => {
            let ch = *[b',', b';', b'\t', b'|', b':', b'\\']
                .get(rng.gen_range(0..6))
                .unwrap();
            let at = pos(data, rng);
            data.insert(at.min(data.len()), ch);
        }
        // Splice NUL bytes (binary content).
        4 => {
            let at = pos(data, rng).min(data.len());
            for _ in 0..rng.gen_range(1..4usize) {
                data.insert(at, 0);
            }
        }
        // Splice a UTF-8 BOM, at the start or mid-stream.
        5 => {
            let at = if rng.gen_bool(0.5) {
                0
            } else {
                pos(data, rng).min(data.len())
            };
            for &b in [0xEF, 0xBB, 0xBF].iter().rev() {
                data.insert(at, b);
            }
        }
        // Splice invalid UTF-8 (lone continuation / impossible bytes).
        6 => {
            let at = pos(data, rng).min(data.len());
            let junk: &[u8] = match rng.gen_range(0..3) {
                0 => &[0xFF, 0xFE],
                1 => &[0x80, 0x80],
                _ => &[0xC3], // truncated 2-byte sequence
            };
            for &b in junk.iter().rev() {
                data.insert(at, b);
            }
        }
        // Make rows ragged: prepend delimiters to one line.
        7 => {
            let at = pos(data, rng).min(data.len());
            for _ in 0..rng.gen_range(1..5usize) {
                data.insert(at, b',');
            }
        }
        // Splice a very long single line (no newline inside).
        8 => {
            let at = pos(data, rng).min(data.len());
            let run = rng.gen_range(1_000..32_000usize);
            data.splice(at..at, std::iter::repeat_n(b'x', run));
        }
        // Line-ending churn: rewrite `\n` as `\r` or `\r\n`.
        9 => {
            let crlf = rng.gen_bool(0.5);
            let mut out = Vec::with_capacity(data.len() + 16);
            for &b in data.iter() {
                if b == b'\n' {
                    out.push(b'\r');
                    if crlf {
                        out.push(b'\n');
                    }
                } else {
                    out.push(b);
                }
            }
            *data = out;
        }
        // Duplicate a random chunk to a random position.
        _ => {
            if !data.is_empty() {
                let start = pos(data, rng);
                let end = (start + rng.gen_range(1..256usize)).min(data.len());
                let chunk: Vec<u8> = data[start..end].to_vec();
                let at = pos(data, rng).min(data.len());
                data.splice(at..at, chunk);
            }
        }
    }
}

/// Produce the `i`-th adversarial input for `seed`: a random base with a
/// random stack of 1–4 mutations applied.
pub fn mutated_input(bases: &[Vec<u8>], seed: u64, i: u64) -> Vec<u8> {
    // One RNG per input (keyed on seed and index) so any single failing
    // input replays without regenerating its predecessors.
    let mut rng = SmallRng::seed_from_u64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut data = bases[rng.gen_range(0..bases.len())].clone();
    for _ in 0..rng.gen_range(1..=4usize) {
        mutate_once(&mut data, &mut rng);
    }
    data
}

/// Tight limits for fuzzing: low enough that mutated inputs actually
/// trip every limit kind, high enough that most well-formed bases pass.
pub fn fuzz_limits() -> Limits {
    let mut limits = Limits::standard();
    limits.max_input_bytes = Some(512 * 1024);
    limits.max_line_bytes = Some(16 * 1024);
    limits.max_rows = Some(4_096);
    limits.max_cols = Some(256);
    limits.max_cells = Some(65_536);
    limits.max_quoted_field_bytes = Some(8 * 1024);
    limits.max_file_wall = Some(Duration::from_secs(10));
    limits
}

/// Outcome tally of a fuzz run.
#[derive(Debug, Default, Clone)]
pub struct FuzzReport {
    /// Inputs that produced a structure.
    pub ok: u64,
    /// Inputs that produced a typed error, tallied by category.
    pub errors: BTreeMap<&'static str, u64>,
    /// Inputs that panicked — must be zero; kept as a count (with the
    /// first offending index) so a soak reports all of them.
    pub panics: u64,
    /// Index of the first panicking input, for replay.
    pub first_panic: Option<u64>,
    /// Inputs on which any differential check disagreed — the block
    /// scanner vs the legacy char-walker, the chunked vs the serial
    /// scan, or the streaming panel vs the whole-file oracle — must be
    /// zero.
    pub divergences: u64,
    /// Index and description of the first divergence, for replay.
    pub first_divergence: Option<(u64, String)>,
}

impl FuzzReport {
    /// Total number of inputs processed.
    pub fn total(&self) -> u64 {
        self.ok + self.errors.values().sum::<u64>() + self.panics
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let errs: Vec<String> = self
            .errors
            .iter()
            .map(|(cat, n)| format!("{cat}: {n}"))
            .collect();
        format!(
            "{} inputs: {} ok, {} panics, {} parser divergences, errors {{{}}}",
            self.total(),
            self.ok,
            self.panics,
            self.divergences,
            errs.join(", ")
        )
    }
}

/// The dialect panel every fuzz input is differentially parsed under:
/// the common production dialects plus quote/escape combinations that
/// stress the scanner's copy-on-write and state-carry paths.
pub fn divergence_dialects() -> Vec<Dialect> {
    vec![
        Dialect::rfc4180(),
        Dialect::with_delimiter(';'),
        Dialect::with_delimiter('\t'),
        Dialect {
            delimiter: ',',
            quote: Some('"'),
            escape: Some('\\'),
        },
        Dialect {
            delimiter: ',',
            quote: None,
            escape: Some('\\'),
        },
        Dialect {
            delimiter: '|',
            quote: Some('\''),
            escape: None,
        },
    ]
}

/// Differentially parse one input with the block scanner and the legacy
/// char-walker under every panel dialect, both unbounded and under
/// `limits`. Returns a description of the first divergence, or `None`
/// when the two paths are indistinguishable on this input.
///
/// Inputs that are not valid UTF-8 are skipped: both parsers operate on
/// `&str`, so decoding rejects such inputs before either path runs.
pub fn check_divergence(input: &[u8], limits: &Limits) -> Option<String> {
    let text = match std::str::from_utf8(input) {
        Ok(t) => t,
        Err(_) => return None,
    };
    for dialect in divergence_dialects() {
        for (label, bounds) in [("unbounded", Limits::unbounded()), ("bounded", *limits)] {
            let legacy = try_parse_legacy(text, &dialect, &bounds);
            let fast = try_parse(text, &dialect, &bounds);
            let agree = match (&legacy, &fast) {
                (Ok(a), Ok(b)) => a == b,
                (
                    Err(StrudelError::LimitExceeded {
                        limit: la,
                        actual: aa,
                        max: ma,
                        ..
                    }),
                    Err(StrudelError::LimitExceeded {
                        limit: lb,
                        actual: ab,
                        max: mb,
                        ..
                    }),
                ) => la == lb && aa == ab && ma == mb,
                (Err(a), Err(b)) => a == b,
                _ => false,
            };
            if !agree {
                return Some(format!(
                    "{label} parse under {dialect:?}: legacy {legacy:?} vs scanner {fast:?}"
                ));
            }
            if let Some(desc) = check_chunk_divergence(text, &dialect, &bounds, label) {
                return Some(desc);
            }
        }
    }
    None
}

/// Chunk counts the chunk-parity dimension sweeps: a fixed panel of
/// small, awkward, and oversized counts, plus one count derived from the
/// input length so the seam positions vary with every mutated input.
fn chunk_panel(len: usize) -> [usize; 4] {
    [2, 5, 16, len % 11 + 2]
}

/// Compare the chunked scan against the serial scan at several chunk
/// counts: identical records (spans and unescaped values) on success,
/// identical limit payloads on failure. Any disagreement is a seam bug
/// in the chunk-parallel scanner.
fn check_chunk_divergence(
    text: &str,
    dialect: &Dialect,
    bounds: &Limits,
    label: &str,
) -> Option<String> {
    let serial = try_scan_records_within(text, dialect, bounds, Deadline::none());
    for k in chunk_panel(text.len()) {
        let chunked = try_scan_records_chunked(text, dialect, bounds, Deadline::none(), k);
        let agree = match (&serial, &chunked) {
            (Ok(a), Ok(b)) => a.to_owned_rows() == b.to_owned_rows(),
            (
                Err(StrudelError::LimitExceeded {
                    limit: la,
                    actual: aa,
                    max: ma,
                    ..
                }),
                Err(StrudelError::LimitExceeded {
                    limit: lb,
                    actual: ab,
                    max: mb,
                    ..
                }),
            ) => la == lb && aa == ab && ma == mb,
            (Err(a), Err(b)) => a == b,
            _ => false,
        };
        if !agree {
            return Some(format!(
                "{label} chunked scan ({k} chunks) under {dialect:?} diverges from serial"
            ));
        }
    }
    None
}

/// The window geometries every fuzz input is streamed under. One thread
/// each: the chunk-parallel scanner has its own parity dimension, and a
/// serial window keeps the per-input cost of the panel flat.
pub fn stream_panel() -> [StreamConfig; 3] {
    let serial = StreamConfig {
        n_threads: 1,
        ..StreamConfig::default()
    };
    [
        // A window far beyond any fuzz input: the stream always takes
        // the single-window whole-file path, so its output and error
        // payloads must match `try_detect_structure_bytes` exactly.
        StreamConfig {
            window_rows: 1 << 30,
            window_bytes: 1 << 30,
            prefix_bytes: 1 << 30,
            ..serial.clone()
        },
        // Row-driven windows with a tiny dialect-detection prefix.
        StreamConfig {
            window_rows: 8,
            window_bytes: 1 << 20,
            prefix_bytes: 32,
            ..serial.clone()
        },
        // Byte-driven windows: the 2x hard cap cuts mid-table, and the
        // oversized-record guard fires on long single lines.
        StreamConfig {
            window_rows: 1 << 16,
            window_bytes: 512,
            prefix_bytes: 16,
            ..serial
        },
    ]
}

/// Stream one input through [`StreamClassifier`] in `chunk`-byte pushes,
/// reducing the outcome to what the parity checks compare: the summary
/// and the assembled canonical JSON, or the first typed error.
fn run_stream(
    model: &Strudel,
    input: &[u8],
    config: &StreamConfig,
    chunk: usize,
) -> Result<(StreamSummary, String), StrudelError> {
    let mut classifier = StreamClassifier::new(model, config.clone());
    let mut windows = Vec::new();
    for piece in input.chunks(chunk.max(1)) {
        classifier.push(piece)?;
        windows.extend(classifier.drain_windows());
    }
    let summary = classifier.finish()?;
    windows.extend(classifier.drain_windows());
    Ok((summary, stream_to_json(&windows)))
}

/// Typed-error agreement for the streaming checks: `LimitExceeded`
/// payloads must match on (kind, actual, max) — the `file` tag differs
/// by entry point — and every other error must be exactly equal.
fn errors_agree(a: &StrudelError, b: &StrudelError) -> bool {
    match (a, b) {
        (
            StrudelError::LimitExceeded {
                limit: la,
                actual: aa,
                max: ma,
                ..
            },
            StrudelError::LimitExceeded {
                limit: lb,
                actual: ab,
                max: mb,
                ..
            },
        ) => la == lb && aa == ab && ma == mb,
        _ => a == b,
    }
}

/// The one documented error-order divergence of the streaming path: on
/// an input that is both oversized and invalid UTF-8, whole-file mode
/// checks the raw byte cap before decoding anything, while the
/// streaming path hits the invalid sequence while bytes are still
/// flowing in (errors arrive in stream-offset order).
fn phase_order_corner(whole: &StrudelError, stream: &StrudelError) -> bool {
    matches!(
        whole,
        StrudelError::LimitExceeded {
            limit: LimitKind::InputBytes,
            ..
        }
    ) && matches!(stream, StrudelError::Parse { reason, .. } if reason == "invalid UTF-8")
}

/// Differentially classify one input through the streaming panel.
/// Returns a description of the first divergence, or `None` when every
/// geometry is chunk-invariant and the huge-window geometry reproduces
/// the whole-file oracle.
pub fn check_stream_divergence(model: &Strudel, input: &[u8], limits: &Limits) -> Option<String> {
    let whole = model
        .try_detect_structure_bytes(input, limits)
        .map(|s| s.to_json());
    for (p, base) in stream_panel().into_iter().enumerate() {
        let config = StreamConfig {
            limits: *limits,
            ..base
        };
        // One push of everything, plus an input-length-derived chunking
        // so the seam positions vary with every mutated input.
        let chunkings = [input.len().max(1), input.len() % 53 + 7];
        let mut reference: Option<Result<(StreamSummary, String), StrudelError>> = None;
        for chunk in chunkings {
            let got = run_stream(model, input, &config, chunk);
            if p == 0 {
                let agree = match (&whole, &got) {
                    (Ok(a), Ok((_, b))) => a == b,
                    (Err(a), Err(b)) => errors_agree(a, b) || phase_order_corner(a, b),
                    _ => false,
                };
                if !agree {
                    fn show<T>(r: &Result<T, StrudelError>) -> String {
                        match r {
                            Ok(_) => "Ok(json)".to_string(),
                            Err(e) => format!("{e:?}"),
                        }
                    }
                    return Some(format!(
                        "stream (chunk {chunk}): whole-file {} vs stream {}",
                        show(&whole),
                        show(&got),
                    ));
                }
            }
            match &reference {
                None => reference = Some(got),
                Some(first) => {
                    let agree = match (first, &got) {
                        (Ok(a), Ok(b)) => a == b,
                        (Err(a), Err(b)) => errors_agree(a, b),
                        _ => false,
                    };
                    if !agree {
                        return Some(format!(
                            "stream config {p}: chunk size {chunk} diverges from single-push"
                        ));
                    }
                }
            }
        }
    }
    None
}

/// The window geometries every input is packed under: the default
/// single-window path and a tiny window that seals many block groups,
/// exercising the multi-group container layout.
pub fn pack_panel() -> [StreamConfig; 2] {
    let serial = StreamConfig {
        n_threads: 1,
        ..StreamConfig::default()
    };
    [
        serial.clone(),
        StreamConfig {
            window_rows: 8,
            window_bytes: 1 << 20,
            prefix_bytes: 32,
            ..serial
        },
    ]
}

/// Pack→unpack differential check: every input that packs cleanly must
/// unpack byte-identically under every panel geometry, and the
/// resulting container must fail *typed* — never panic, never
/// reconstruct different bytes — at every truncation prefix and under a
/// spread of single-byte corruptions. Inputs the packer rejects (binary
/// content, limit violations) are legitimate typed outcomes, not
/// divergences.
pub fn check_pack_roundtrip(model: &Strudel, input: &[u8], limits: &Limits) -> Option<String> {
    for (p, base) in pack_panel().into_iter().enumerate() {
        let config = StreamConfig {
            limits: *limits,
            ..base
        };
        let packed = match strudel_pack::pack_bytes(model, input, config) {
            Ok(packed) => packed,
            Err(_) => continue,
        };
        match strudel_pack::unpack_bytes(&packed.bytes) {
            Ok(bytes) if bytes == input => {}
            Ok(_) => {
                return Some(format!(
                    "pack config {p}: unpack is not byte-identical to the input"
                ))
            }
            Err(e) => {
                return Some(format!(
                    "pack config {p}: fresh container failed to unpack: {e}"
                ))
            }
        }
        // Truncation at every prefix: a cut container must never
        // silently reconstruct different bytes. (`open` fails fast on a
        // missing tail, so the sweep is linear in the container size.)
        for prefix in 0..packed.bytes.len() {
            if let Ok(mut reader) = strudel_pack::PackReader::open(&packed.bytes[..prefix]) {
                if let Ok(bytes) = reader.unpack() {
                    if bytes != input {
                        return Some(format!(
                            "pack config {p}: truncation at {prefix} unpacked different bytes"
                        ));
                    }
                }
            }
        }
        // Single-byte corruption spread: every region of the container
        // (blocks, directory, tail) is covered by a checksum or a
        // structural check, so a flipped byte must be rejected or — if
        // the flip never reaches a decoded path — reproduce the input.
        let step = (packed.bytes.len() / 16).max(1);
        for at in (0..packed.bytes.len()).step_by(step) {
            let mut corrupt = packed.bytes.clone();
            corrupt[at] ^= 0x41;
            if let Ok(mut reader) = strudel_pack::PackReader::open(&corrupt) {
                if let Ok(bytes) = reader.unpack() {
                    if bytes != input {
                        return Some(format!(
                            "pack config {p}: byte flip at {at} unpacked different bytes"
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Feed one input through guarded structure detection, recording the
/// outcome, then differentially parse it through both parser paths.
/// Panics are caught and tallied, never propagated — the soak keeps
/// going to find every offending input, not just the first.
pub fn run_one(model: &Strudel, input: &[u8], limits: &Limits, i: u64, report: &mut FuzzReport) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model.try_detect_structure_bytes(input, limits).map(|_| ())
    }));
    match result {
        Ok(Ok(())) => report.ok += 1,
        Ok(Err(e)) => *report.errors.entry(e.category()).or_insert(0) += 1,
        Err(_) => {
            report.panics += 1;
            report.first_panic.get_or_insert(i);
        }
    }
    for check in [
        catch_unwind(AssertUnwindSafe(|| check_divergence(input, limits))),
        catch_unwind(AssertUnwindSafe(|| {
            check_stream_divergence(model, input, limits)
        })),
        catch_unwind(AssertUnwindSafe(|| {
            check_pack_roundtrip(model, input, limits)
        })),
    ] {
        match check {
            Ok(None) => {}
            Ok(Some(desc)) => {
                report.divergences += 1;
                if report.first_divergence.is_none() {
                    report.first_divergence = Some((i, desc));
                }
            }
            Err(_) => {
                // A panic inside a differential path is both a panic
                // and, by definition, a divergence from the
                // non-panicking reference.
                report.panics += 1;
                report.first_panic.get_or_insert(i);
            }
        }
    }
}

/// Run `iterations` seeded adversarial inputs through the pipeline under
/// `limits` and tally the outcomes.
pub fn run(model: &Strudel, seed: u64, iterations: u64, limits: &Limits) -> FuzzReport {
    let bases = base_inputs();
    let mut report = FuzzReport::default();
    for i in 0..iterations {
        let input = mutated_input(&bases, seed, i);
        run_one(model, &input, limits, i, &mut report);
    }
    report
}

/// One probe input per [`LimitKind`]: a `(kind, limits, input)` triple
/// whose detection must fail with exactly `LimitExceeded { limit: kind }`.
/// The smoke test runs all of them so every configured limit is known to
/// actually fire, not just to exist.
pub fn limit_probes() -> Vec<(LimitKind, Limits, Vec<u8>)> {
    let base = Limits::unbounded;
    let csv = |rows: usize, cols: usize| -> Vec<u8> {
        let row = vec!["v"; cols].join(",");
        let mut out = String::new();
        for _ in 0..rows {
            out.push_str(&row);
            out.push('\n');
        }
        out.into_bytes()
    };
    vec![
        (
            LimitKind::InputBytes,
            {
                let mut l = base();
                l.max_input_bytes = Some(8);
                l
            },
            b"a,b\n1,2\n3,4\n".to_vec(),
        ),
        (
            LimitKind::LineBytes,
            {
                let mut l = base();
                l.max_line_bytes = Some(16);
                l
            },
            format!("a,b\n{},end\n", "x".repeat(64)).into_bytes(),
        ),
        (
            LimitKind::Rows,
            {
                let mut l = base();
                l.max_rows = Some(4);
                l
            },
            csv(10, 2),
        ),
        (
            LimitKind::Cols,
            {
                let mut l = base();
                l.max_cols = Some(4);
                l
            },
            csv(2, 10),
        ),
        (
            LimitKind::Cells,
            {
                let mut l = base();
                l.max_cells = Some(16);
                l
            },
            csv(10, 5),
        ),
        (
            LimitKind::QuotedFieldBytes,
            {
                let mut l = base();
                l.max_quoted_field_bytes = Some(16);
                l
            },
            format!("a,\"{}\"\n", "q".repeat(64)).into_bytes(),
        ),
        (
            LimitKind::WallClock,
            {
                let mut l = base();
                l.max_file_wall = Some(Duration::ZERO);
                l
            },
            csv(50, 3),
        ),
    ]
}

/// Assert that every limit probe fails with its own limit kind. Returns
/// the offending description on failure (used by both the smoke test and
/// the soak binary).
pub fn check_limit_probes(model: &Strudel) -> Result<(), String> {
    for (kind, limits, input) in limit_probes() {
        match model.try_detect_structure_bytes(&input, &limits) {
            Err(StrudelError::LimitExceeded { limit, .. }) if limit == kind => {}
            Err(e) => {
                return Err(format!(
                    "probe for {kind:?} failed with the wrong error: {e}"
                ))
            }
            Ok(_) => return Err(format!("probe for {kind:?} did not trip its limit")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutated_inputs_are_deterministic() {
        let bases = base_inputs();
        for i in 0..32 {
            assert_eq!(
                mutated_input(&bases, 99, i),
                mutated_input(&bases, 99, i),
                "input {i} not reproducible"
            );
        }
    }

    #[test]
    fn bases_are_nonempty_and_varied() {
        let bases = base_inputs();
        assert!(bases.len() > 12);
        assert!(bases.iter().any(|b| b.is_empty()));
        assert!(bases.iter().any(|b| b.len() > 200));
    }

    #[test]
    fn mutation_engine_visits_every_operator() {
        // With 500 draws, every operator index should have been chosen.
        let mut seen = [false; N_MUTATIONS];
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..500 {
            // Mirror the operator draw in mutate_once.
            seen[rng.gen_range(0..N_MUTATIONS)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
