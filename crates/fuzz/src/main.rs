//! `strudel-fuzz` — unbounded soak mode of the adversarial harness.
//!
//! ```text
//! strudel-fuzz [SEED] [ITERATIONS]
//! ```
//!
//! Runs seeded mutated inputs through guarded structure detection — and
//! differentially through the block scanner and the legacy char-walker —
//! until `ITERATIONS` is reached (default: run forever, reporting every
//! 10k inputs). Exits non-zero as soon as a panic, a parser divergence,
//! or a limit-probe failure is observed; the printed seed and input
//! index replay the failure deterministically.

use strudel_fuzz::{
    base_inputs, check_limit_probes, fuzz_limits, fuzz_model, mutated_input, run_one, FuzzReport,
};

fn main() -> std::process::ExitCode {
    let mut argv = std::env::args().skip(1);
    let seed: u64 = argv
        .next()
        .map(|s| s.parse().expect("SEED must be an integer"))
        .unwrap_or(0xC0FFEE);
    let iterations: Option<u64> = argv
        .next()
        .map(|s| s.parse().expect("ITERATIONS must be an integer"));

    eprintln!("fitting fuzz model ...");
    let model = fuzz_model();

    if let Err(msg) = check_limit_probes(&model) {
        eprintln!("limit probe failure: {msg}");
        return std::process::ExitCode::FAILURE;
    }
    eprintln!("limit probes ok; soaking with seed {seed} ...");

    // Panics are tallied by the harness; silence the default hook's
    // backtrace spam so the report stays readable.
    std::panic::set_hook(Box::new(|_| {}));

    let bases = base_inputs();
    let limits = fuzz_limits();
    let mut report = FuzzReport::default();
    let mut i: u64 = 0;
    loop {
        if iterations.is_some_and(|n| i >= n) {
            break;
        }
        let input = mutated_input(&bases, seed, i);
        run_one(&model, &input, &limits, i, &mut report);
        i += 1;
        if i.is_multiple_of(10_000) {
            eprintln!("{}", report.summary());
        }
        if report.panics > 0 || report.divergences > 0 {
            break;
        }
    }
    let _ = std::panic::take_hook();

    eprintln!("{}", report.summary());
    if report.panics > 0 {
        eprintln!(
            "PANIC on input {} (replay: strudel-fuzz {seed} and inspect \
             mutated_input(&bases, {seed}, {}))",
            report.first_panic.unwrap(),
            report.first_panic.unwrap(),
        );
        std::process::ExitCode::FAILURE
    } else if report.divergences > 0 {
        let (idx, desc) = report.first_divergence.as_ref().unwrap();
        eprintln!(
            "PARSER DIVERGENCE on input {idx} (replay: mutated_input(&bases, {seed}, {idx})):\n\
             {desc}"
        );
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
