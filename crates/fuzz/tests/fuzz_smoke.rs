//! Bounded, reproducible fuzz smoke test — part of tier-1.
//!
//! Fixed seed, a few thousand mutated inputs: guarded structure
//! detection must return `Ok` or a typed `StrudelError` for every one of
//! them, with zero panics — and the block scanner must agree with the
//! legacy char-walker on every input (zero divergences). `FUZZ_ITERS` scales the run up (CI sets
//! `FUZZ_SMOKE=1` with the default count; a nightly soak can use more,
//! or run the unbounded `strudel-fuzz` binary via `scripts/fuzz.sh`).

use strudel_fuzz::{check_limit_probes, fuzz_limits, fuzz_model, run};
use strudel_table::Limits;

const SEED: u64 = 0xC0FFEE;

#[test]
fn every_mutated_input_yields_ok_or_typed_error() {
    let iterations: u64 = std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_500);
    let model = fuzz_model();

    // Under the tight fuzz limits: inputs may be rejected, never panic.
    let bounded = run(&model, SEED, iterations, &fuzz_limits());
    assert_eq!(
        bounded.panics,
        0,
        "panic on input {:?}: {}",
        bounded.first_panic,
        bounded.summary()
    );
    assert_eq!(
        bounded.divergences,
        0,
        "parser divergence on input {:?}: {}",
        bounded.first_divergence,
        bounded.summary()
    );
    assert_eq!(bounded.total(), iterations);
    // The corpus must exercise both sides of the contract.
    assert!(bounded.ok > 0, "no input survived: {}", bounded.summary());
    assert!(
        !bounded.errors.is_empty(),
        "no input was rejected: {}",
        bounded.summary()
    );
    // Mutations splice NULs and invalid UTF-8 into most bases, so the
    // dialect (binary) and parse (UTF-8) categories must both appear.
    assert!(
        bounded.errors.contains_key("dialect"),
        "{}",
        bounded.summary()
    );
    assert!(
        bounded.errors.contains_key("parse"),
        "{}",
        bounded.summary()
    );
    assert!(
        bounded.errors.contains_key("limit"),
        "{}",
        bounded.summary()
    );

    // Unbounded (legacy-equivalent) limits: still no panics, and only
    // UTF-8 decoding may reject an input.
    let unbounded = run(&model, SEED, iterations.min(1_000), &Limits::unbounded());
    assert_eq!(
        unbounded.panics,
        0,
        "panic on input {:?}: {}",
        unbounded.first_panic,
        unbounded.summary()
    );
    assert_eq!(
        unbounded.divergences,
        0,
        "parser divergence on input {:?}: {}",
        unbounded.first_divergence,
        unbounded.summary()
    );
    assert!(
        unbounded.errors.keys().all(|&cat| cat == "parse"),
        "unbounded run must only reject invalid UTF-8: {}",
        unbounded.summary()
    );
}

#[test]
fn every_configured_limit_fires() {
    let model = fuzz_model();
    check_limit_probes(&model).unwrap();
}
