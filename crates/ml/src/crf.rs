//! Linear-chain sequence labelling for the CRF^L baseline.
//!
//! The CRF^L baseline (Adelfio & Samet, PVLDB 2013) labels the sequence of
//! lines of a file jointly, so that transitions such as *metadata → header
//! → data → notes* are part of the model. We implement a linear-chain
//! model with unigram (feature × label) and bigram (label × label) weights
//! decoded by Viterbi, trained with the **averaged structured perceptron**
//! — a standard max-margin surrogate for conditional-likelihood CRF
//! training that needs no gradient infrastructure and decodes identically
//! (see DESIGN.md, baseline notes).
//!
//! Features are *discrete*: each sequence position activates a set of
//! feature ids, which is exactly the shape produced by the logarithmic
//! feature binning of [2].

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One training sequence: per-position active feature ids plus gold labels.
#[derive(Debug, Clone)]
pub struct SequenceSample {
    /// `features[t]` lists the feature ids active at position `t`.
    pub features: Vec<Vec<u32>>,
    /// Gold label per position.
    pub labels: Vec<usize>,
}

/// Hyper-parameters for [`LinearChainCrf::fit`].
#[derive(Debug, Clone, Copy)]
pub struct CrfConfig {
    /// Number of distinct feature ids.
    pub n_features: usize,
    /// Number of labels.
    pub n_labels: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl CrfConfig {
    /// A configuration with sensible defaults (10 epochs).
    pub fn new(n_features: usize, n_labels: usize) -> CrfConfig {
        CrfConfig {
            n_features,
            n_labels,
            epochs: 10,
            seed: 0,
        }
    }
}

/// A fitted linear-chain sequence labeller.
pub struct LinearChainCrf {
    /// `n_features × n_labels` emission weights, row-major by feature.
    unigram: Vec<f64>,
    /// `n_labels × n_labels` transition weights (`from × to`).
    transition: Vec<f64>,
    /// Start-of-sequence weights per label.
    initial: Vec<f64>,
    n_labels: usize,
}

impl LinearChainCrf {
    /// Train with the averaged structured perceptron.
    ///
    /// # Panics
    /// Panics when `sequences` is empty, a sequence has mismatched
    /// feature/label lengths, or a feature id / label is out of range.
    pub fn fit(sequences: &[SequenceSample], config: &CrfConfig) -> LinearChainCrf {
        assert!(!sequences.is_empty(), "cannot fit on zero sequences");
        for seq in sequences {
            assert_eq!(
                seq.features.len(),
                seq.labels.len(),
                "sequence shape mismatch"
            );
            assert!(
                seq.labels.iter().all(|&l| l < config.n_labels),
                "label out of range"
            );
            assert!(
                seq.features
                    .iter()
                    .all(|f| f.iter().all(|&id| (id as usize) < config.n_features)),
                "feature id out of range"
            );
        }

        let l = config.n_labels;
        let mut model = LinearChainCrf {
            unigram: vec![0.0; config.n_features * l],
            transition: vec![0.0; l * l],
            initial: vec![0.0; l],
            n_labels: l,
        };
        // Averaging via accumulators + update timestamps.
        let mut acc_unigram = vec![0.0; config.n_features * l];
        let mut acc_transition = vec![0.0; l * l];
        let mut acc_initial = vec![0.0; l];
        let mut step = 1.0f64;

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..sequences.len()).collect();

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &si in &order {
                let seq = &sequences[si];
                if seq.labels.is_empty() {
                    continue;
                }
                let pred = model.viterbi(&seq.features);
                if pred != seq.labels {
                    // w += φ(gold) − φ(pred); acc accumulates step·δ so the
                    // final average is w − acc/steps.
                    for t in 0..seq.labels.len() {
                        let (gold, hyp) = (seq.labels[t], pred[t]);
                        if gold != hyp {
                            for &f in &seq.features[t] {
                                let g = f as usize * l + gold;
                                let h = f as usize * l + hyp;
                                model.unigram[g] += 1.0;
                                model.unigram[h] -= 1.0;
                                acc_unigram[g] += step;
                                acc_unigram[h] -= step;
                            }
                        }
                        if t == 0 {
                            if gold != hyp {
                                model.initial[gold] += 1.0;
                                model.initial[hyp] -= 1.0;
                                acc_initial[gold] += step;
                                acc_initial[hyp] -= step;
                            }
                        } else {
                            let gold_prev = seq.labels[t - 1];
                            let hyp_prev = pred[t - 1];
                            if gold != hyp || gold_prev != hyp_prev {
                                let g = gold_prev * l + gold;
                                let h = hyp_prev * l + hyp;
                                model.transition[g] += 1.0;
                                model.transition[h] -= 1.0;
                                acc_transition[g] += step;
                                acc_transition[h] -= step;
                            }
                        }
                    }
                }
                step += 1.0;
            }
        }

        // Average: w_avg = w − acc/step.
        for (w, a) in model.unigram.iter_mut().zip(&acc_unigram) {
            *w -= a / step;
        }
        for (w, a) in model.transition.iter_mut().zip(&acc_transition) {
            *w -= a / step;
        }
        for (w, a) in model.initial.iter_mut().zip(&acc_initial) {
            *w -= a / step;
        }
        model
    }

    /// Viterbi decoding: the highest-scoring label sequence.
    pub fn viterbi(&self, features: &[Vec<u32>]) -> Vec<usize> {
        let l = self.n_labels;
        let t_max = features.len();
        if t_max == 0 {
            return Vec::new();
        }
        let mut delta = vec![0.0f64; l];
        let mut backptr = vec![0usize; t_max * l];

        for (label, d) in delta.iter_mut().enumerate() {
            *d = self.initial[label] + self.emission(&features[0], label);
        }
        for t in 1..t_max {
            let mut next = vec![f64::NEG_INFINITY; l];
            for to in 0..l {
                let em = self.emission(&features[t], to);
                let mut best_from = 0;
                let mut best_score = f64::NEG_INFINITY;
                for (from, &d) in delta.iter().enumerate() {
                    let s = d + self.transition[from * l + to];
                    if s > best_score {
                        best_score = s;
                        best_from = from;
                    }
                }
                next[to] = best_score + em;
                backptr[t * l + to] = best_from;
            }
            delta = next;
        }

        let mut best = 0;
        for (label, &d) in delta.iter().enumerate() {
            if d > delta[best] {
                best = label;
            }
        }
        let mut path = vec![0usize; t_max];
        path[t_max - 1] = best;
        for t in (1..t_max).rev() {
            path[t - 1] = backptr[t * l + path[t]];
        }
        path
    }

    fn emission(&self, features: &[u32], label: usize) -> f64 {
        features
            .iter()
            .map(|&f| self.unigram[f as usize * self.n_labels + label])
            .sum()
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequences where the label is fully determined by the single active
    /// feature.
    fn emission_task() -> Vec<SequenceSample> {
        (0..20)
            .map(|i| {
                let labels = vec![i % 3, (i + 1) % 3, (i + 2) % 3];
                let features = labels.iter().map(|&l| vec![l as u32]).collect();
                SequenceSample { features, labels }
            })
            .collect()
    }

    #[test]
    fn learns_emissions() {
        let train = emission_task();
        let crf = LinearChainCrf::fit(&train, &CrfConfig::new(3, 3));
        for seq in &train {
            assert_eq!(crf.viterbi(&seq.features), seq.labels);
        }
    }

    #[test]
    fn learns_transitions_with_ambiguous_emissions() {
        // Feature 0 everywhere; label alternates 0,1,0,1... Only the
        // transition weights can encode this.
        let train: Vec<SequenceSample> = (0..10)
            .map(|_| SequenceSample {
                features: vec![vec![0]; 6],
                labels: vec![0, 1, 0, 1, 0, 1],
            })
            .collect();
        let crf = LinearChainCrf::fit(&train, &CrfConfig::new(1, 2));
        assert_eq!(crf.viterbi(&vec![vec![0]; 6]), vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn empty_feature_sequence_decodes_empty() {
        let crf = LinearChainCrf::fit(&emission_task(), &CrfConfig::new(3, 3));
        assert!(crf.viterbi(&[]).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let train = emission_task();
        let a = LinearChainCrf::fit(&train, &CrfConfig::new(3, 3));
        let b = LinearChainCrf::fit(&train, &CrfConfig::new(3, 3));
        let probe = vec![vec![2u32], vec![0], vec![1]];
        assert_eq!(a.viterbi(&probe), b.viterbi(&probe));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        let bad = vec![SequenceSample {
            features: vec![vec![0]],
            labels: vec![5],
        }];
        let _ = LinearChainCrf::fit(&bad, &CrfConfig::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "feature id out of range")]
    fn out_of_range_feature_panics() {
        let bad = vec![SequenceSample {
            features: vec![vec![9]],
            labels: vec![0],
        }];
        let _ = LinearChainCrf::fit(&bad, &CrfConfig::new(1, 2));
    }
}
