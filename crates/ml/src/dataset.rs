//! Dense feature matrices with integer class targets.

/// A dense, row-major supervised dataset: `n_samples × n_features` values
/// plus one class index per sample.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    x: Vec<f64>,
    y: Vec<usize>,
    n_features: usize,
    n_classes: usize,
}

impl Dataset {
    /// Create an empty dataset with the given shape metadata.
    pub fn new(n_features: usize, n_classes: usize) -> Dataset {
        Dataset {
            x: Vec::new(),
            y: Vec::new(),
            n_features,
            n_classes,
        }
    }

    /// Build a dataset from per-sample feature rows and targets.
    ///
    /// # Panics
    /// Panics when a row's length differs from `n_features` or a target is
    /// `>= n_classes`.
    pub fn from_rows(rows: &[Vec<f64>], y: &[usize], n_classes: usize) -> Dataset {
        assert_eq!(rows.len(), y.len(), "one target per row required");
        let n_features = rows.first().map_or(0, Vec::len);
        let mut ds = Dataset::new(n_features, n_classes);
        for (row, &target) in rows.iter().zip(y) {
            ds.push(row, target);
        }
        ds
    }

    /// Append one sample.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range target.
    pub fn push(&mut self, features: &[f64], target: usize) {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature row length mismatch"
        );
        assert!(target < self.n_classes, "target out of range");
        self.x.extend_from_slice(features);
        self.y.push(target);
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.y.len()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature value of sample `i`, feature `j`.
    #[inline]
    pub fn x(&self, i: usize, j: usize) -> f64 {
        self.x[i * self.n_features + j]
    }

    /// Feature row of sample `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Target of sample `i`.
    #[inline]
    pub fn target(&self, i: usize) -> usize {
        self.y[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[usize] {
        &self.y
    }

    /// A copy restricted to the given sample indices (used by
    /// cross-validation splits and permutation importance).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features, self.n_classes);
        for &i in indices {
            out.push(self.row(i), self.target(i));
        }
        out
    }

    /// A copy with the values of feature `j` replaced by `values[i]` for
    /// each sample `i` (used by permutation importance).
    ///
    /// # Panics
    /// Panics when `values.len() != n_samples()`.
    pub fn with_feature_replaced(&self, j: usize, values: &[f64]) -> Dataset {
        assert_eq!(values.len(), self.n_samples());
        let mut out = self.clone();
        for (i, &v) in values.iter().enumerate() {
            out.x[i * out.n_features + j] = v;
        }
        out
    }

    /// A copy with targets remapped to `positive vs rest` (1 vs 0), used
    /// to train one-vs-rest models for permutation feature importance.
    pub fn one_vs_rest(&self, positive: usize) -> Dataset {
        let mut out = Dataset::new(self.n_features, 2);
        for i in 0..self.n_samples() {
            out.push(self.row(i), usize::from(self.target(i) == positive));
        }
        out
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &t in &self.y {
            counts[t] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            &[0, 1, 0],
            2,
        )
    }

    #[test]
    fn shape_accessors() {
        let ds = small();
        assert_eq!(ds.n_samples(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.x(1, 0), 3.0);
        assert_eq!(ds.row(2), &[5.0, 6.0]);
        assert_eq!(ds.target(1), 1);
    }

    #[test]
    fn subset_preserves_order() {
        let ds = small().subset(&[2, 0]);
        assert_eq!(ds.row(0), &[5.0, 6.0]);
        assert_eq!(ds.target(1), 0);
    }

    #[test]
    fn one_vs_rest_binarises() {
        let ovr = small().one_vs_rest(1);
        assert_eq!(ovr.targets(), &[0, 1, 0]);
        assert_eq!(ovr.n_classes(), 2);
    }

    #[test]
    fn feature_replacement() {
        let ds = small().with_feature_replaced(1, &[9.0, 8.0, 7.0]);
        assert_eq!(ds.x(0, 1), 9.0);
        assert_eq!(ds.x(2, 1), 7.0);
        assert_eq!(ds.x(0, 0), 1.0);
    }

    #[test]
    fn class_counts() {
        assert_eq!(small().class_counts(), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "feature row length mismatch")]
    fn bad_row_panics() {
        small().push(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn bad_target_panics() {
        small().push(&[1.0, 2.0], 5);
    }
}
