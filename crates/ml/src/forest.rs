//! Random forests: bootstrap-aggregated CART trees.
//!
//! The backbone classifier of both `Strudel^L` and `Strudel^C`
//! (Sections 4–5). Defaults mirror scikit-learn's
//! `RandomForestClassifier` defaults the paper relies on: 100 trees,
//! unlimited depth, `√d` feature subsampling, bootstrap sampling, and
//! probability prediction by averaging per-tree leaf distributions.
//! Trees train in parallel across OS threads (`std::thread::scope`).

use crate::dataset::Dataset;
use crate::traits::Classifier;
use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a random forest.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. The default uses `√d` feature subsampling.
    pub tree: TreeConfig,
    /// Whether each tree trains on a bootstrap resample (true) or on the
    /// full training set (false).
    pub bootstrap: bool,
    /// Master RNG seed; tree `t` derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads; `0` picks the available parallelism.
    pub n_threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            tree: TreeConfig {
                max_features: MaxFeatures::Sqrt,
                ..TreeConfig::default()
            },
            bootstrap: true,
            seed: 0,
            n_threads: 0,
        }
    }
}

impl ForestConfig {
    /// A smaller forest for unit tests and quick experiments.
    pub fn fast(n_trees: usize, seed: u64) -> ForestConfig {
        ForestConfig {
            n_trees,
            seed,
            ..ForestConfig::default()
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

/// A fitted forest together with its out-of-bag (OOB) accuracy estimate:
/// each sample is scored only by the trees whose bootstrap resample did
/// not contain it — an unbiased generalisation estimate without a
/// held-out set (Breiman 2001, cited as \[3\] in the paper).
pub struct OobFit {
    /// The fitted forest.
    pub forest: RandomForest,
    /// OOB accuracy over the training samples that were out of bag for
    /// at least one tree.
    pub oob_accuracy: f64,
    /// Number of samples that were never out of bag (excluded from the
    /// estimate; shrinks quickly as trees are added).
    pub never_oob: usize,
}

impl RandomForest {
    /// Fit a forest on `data`.
    ///
    /// # Panics
    /// Panics when `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &Dataset, config: &ForestConfig) -> RandomForest {
        Self::fit_impl(data, config, false)
    }

    /// Fit with the retained pre-columnar splitter
    /// ([`DecisionTree::fit_reference`]). Bit-identical to
    /// [`fit`](Self::fit) for any configuration — kept as a correctness
    /// oracle for the equivalence tests and as the baseline the training
    /// bench measures the columnar splitter against.
    pub fn fit_reference(data: &Dataset, config: &ForestConfig) -> RandomForest {
        Self::fit_impl(data, config, true)
    }

    fn fit_impl(data: &Dataset, config: &ForestConfig, reference: bool) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "n_trees must be positive");

        let threads = if config.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.n_threads
        }
        .min(config.n_trees);

        let mut trees: Vec<Option<DecisionTree>> = Vec::new();
        trees.resize_with(config.n_trees, || None);

        // Deal tree ids round-robin to worker threads; each tree derives
        // its RNG from (seed, tree id) so results are independent of the
        // thread count.
        std::thread::scope(|scope| {
            let chunks = split_round_robin(config.n_trees, threads);
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|ids| {
                    scope.spawn(move || {
                        ids.into_iter()
                            .map(|t| {
                                let mut rng = SmallRng::seed_from_u64(
                                    config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                                );
                                let indices: Vec<u32> = if config.bootstrap {
                                    let n = data.n_samples();
                                    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
                                } else {
                                    (0..data.n_samples() as u32).collect()
                                };
                                let tree = if reference {
                                    DecisionTree::fit_on_indices_reference(
                                        data,
                                        &indices,
                                        &config.tree,
                                        &mut rng,
                                    )
                                } else {
                                    DecisionTree::fit_on_indices(
                                        data,
                                        &indices,
                                        &config.tree,
                                        &mut rng,
                                    )
                                };
                                (t, tree)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (t, tree) in handle.join().expect("tree training panicked") {
                    trees[t] = Some(tree);
                }
            }
        });

        RandomForest {
            trees: trees
                .into_iter()
                .map(|t| t.expect("all trees trained"))
                .collect(),
            n_classes: data.n_classes(),
        }
    }

    /// Fit with out-of-bag scoring. Requires `bootstrap = true`
    /// (without resampling there is no out-of-bag sample).
    ///
    /// # Panics
    /// Panics when `config.bootstrap` is false or on an empty dataset.
    pub fn fit_with_oob(data: &Dataset, config: &ForestConfig) -> OobFit {
        assert!(
            config.bootstrap,
            "OOB scoring requires bootstrap resampling"
        );
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        let n = data.n_samples();
        // Reproduce each tree's bootstrap draw (same seed derivation as
        // fit) to build the in-bag masks, then fit normally.
        let forest = RandomForest::fit(data, config);
        let mut votes = vec![vec![0.0f64; data.n_classes()]; n];
        let mut voted = vec![false; n];
        for t in 0..config.n_trees {
            let mut rng = SmallRng::seed_from_u64(
                config.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut in_bag = vec![false; n];
            for _ in 0..n {
                in_bag[rng.gen_range(0..n)] = true;
            }
            let tree = &forest.trees[t];
            for i in 0..n {
                if !in_bag[i] {
                    tree.accumulate_proba(data.row(i), &mut votes[i]);
                    voted[i] = true;
                }
            }
        }
        let mut correct = 0usize;
        let mut scored = 0usize;
        for i in 0..n {
            if voted[i] {
                scored += 1;
                if crate::traits::argmax(&votes[i]) == data.target(i) {
                    correct += 1;
                }
            }
        }
        OobFit {
            forest,
            oob_accuracy: if scored == 0 {
                0.0
            } else {
                correct as f64 / scored as f64
            },
            never_oob: n - scored,
        }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, exposed for serialization.
    pub fn trees_raw(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Class count in storage form.
    pub fn n_classes_raw(&self) -> usize {
        self.n_classes
    }

    /// Highest feature index referenced by any split node across all
    /// trees, or `None` for a forest of pure leaves. Deserialized models
    /// are validated against the feature arity of their pipeline stage
    /// with this; an out-of-range index would panic at predict time.
    pub fn max_feature_index(&self) -> Option<usize> {
        self.trees
            .iter()
            .flat_map(|t| t.raw_parts().0)
            .filter_map(|node| match node {
                crate::tree::RawNode::Split { feature, .. } => Some(*feature),
                crate::tree::RawNode::Leaf { .. } => None,
            })
            .max()
    }

    /// Per-feature mean decrease in impurity averaged over trees,
    /// normalised to sum 1 — scikit-learn's `feature_importances_`.
    /// `None` when any tree was rebuilt from serialized form (training
    /// statistics are not persisted). The paper prefers *permutation*
    /// importance over this measure because impurity importance favours
    /// high-cardinality features (Section 6.3.5); exposing both lets the
    /// `figure4` experiment demonstrate that bias.
    pub fn impurity_importances(&self) -> Option<Vec<f64>> {
        let per_tree: Option<Vec<Vec<f64>>> = self
            .trees
            .iter()
            .map(DecisionTree::impurity_importances)
            .collect();
        let per_tree = per_tree?;
        let d = per_tree.first().map_or(0, Vec::len);
        let mut mean = vec![0.0; d];
        for imps in &per_tree {
            for (m, v) in mean.iter_mut().zip(imps) {
                *m += v;
            }
        }
        let total: f64 = mean.iter().sum();
        if total > 0.0 {
            for m in &mut mean {
                *m /= total;
            }
        }
        Some(mean)
    }

    /// Probability vectors for a batch of samples, computed across
    /// `n_threads` worker threads (`0` picks the available parallelism).
    ///
    /// Prediction is a pure function of (forest, sample), so the output
    /// is byte-identical for every thread count — each sample's vector
    /// lands at its input position. Small batches fall back to the
    /// serial path: below [`PARALLEL_PREDICT_THRESHOLD`] samples the
    /// thread spawn overhead outweighs the tree walks.
    pub fn predict_proba_batch(&self, rows: &[&[f64]], n_threads: usize) -> Vec<Vec<f64>> {
        let threads = if n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            n_threads
        }
        .min(rows.len().max(1));
        if threads <= 1 || rows.len() < PARALLEL_PREDICT_THRESHOLD {
            return rows.iter().map(|r| self.predict_proba(r)).collect();
        }
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); rows.len()];
        let chunk = rows.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (row_chunk, out_chunk) in rows.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (row, slot) in row_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = self.predict_proba(row);
                    }
                });
            }
        });
        out
    }

    /// Write the ensemble-averaged probability vector for one sample
    /// into `out` (length `n_classes`) without allocating: each tree
    /// walk borrows its leaf distribution and accumulates element-wise.
    pub fn predict_proba_into(&self, features: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|a| *a = 0.0);
        for tree in &self.trees {
            tree.accumulate_proba(features, out);
        }
        let n = self.trees.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    /// Rebuild a forest from deserialized trees.
    pub fn from_raw_parts(
        trees: Vec<DecisionTree>,
        n_classes: usize,
    ) -> Result<RandomForest, &'static str> {
        if trees.is_empty() {
            return Err("a forest needs at least one tree");
        }
        if trees.iter().any(|t| t.raw_parts().1 != n_classes) {
            return Err("tree class-count mismatch");
        }
        Ok(RandomForest { trees, n_classes })
    }
}

/// Minimum batch size before [`RandomForest::predict_proba_batch`]
/// spawns worker threads; smaller batches run serially.
pub const PARALLEL_PREDICT_THRESHOLD: usize = 64;

/// Assign `n` items to `k` buckets round-robin.
fn split_round_robin(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); k.max(1)];
    for i in 0..n {
        out[i % k.max(1)].push(i);
    }
    out.retain(|v| !v.is_empty());
    out
}

impl Classifier for RandomForest {
    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        self.predict_proba_into(features, &mut acc);
        acc
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(seed: u64, n_per_class: usize) -> Dataset {
        // Two well-separated Gaussian-ish blobs.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for class in 0..2 {
            let center = class as f64 * 4.0;
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    center + rng.gen_range(-1.0..1.0),
                ]);
                y.push(class);
            }
        }
        Dataset::from_rows(&rows, &y, 2)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let ds = blobs(1, 50);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(10, 0));
        assert!(forest.accuracy(&ds) > 0.99);
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = blobs(2, 30);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(5, 0));
        let p = forest.predict_proba(&[2.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let ds = blobs(3, 40);
        let mut config = ForestConfig::fast(8, 42);
        config.n_threads = 1;
        let a = RandomForest::fit(&ds, &config);
        config.n_threads = 4;
        let b = RandomForest::fit(&ds, &config);
        for i in 0..ds.n_samples() {
            assert_eq!(a.predict_proba(ds.row(i)), b.predict_proba(ds.row(i)));
        }
    }

    #[test]
    fn batch_prediction_matches_serial_and_is_thread_invariant() {
        let ds = blobs(11, 60);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(10, 7));
        let rows: Vec<&[f64]> = (0..ds.n_samples()).map(|i| ds.row(i)).collect();
        assert!(rows.len() >= PARALLEL_PREDICT_THRESHOLD);
        let serial: Vec<Vec<f64>> = rows.iter().map(|r| forest.predict_proba(r)).collect();
        let one = forest.predict_proba_batch(&rows, 1);
        let four = forest.predict_proba_batch(&rows, 4);
        let auto = forest.predict_proba_batch(&rows, 0);
        assert_eq!(serial, one);
        assert_eq!(one, four);
        assert_eq!(one, auto);
    }

    #[test]
    fn batch_prediction_of_empty_and_tiny_inputs() {
        let ds = blobs(12, 20);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(5, 3));
        assert!(forest.predict_proba_batch(&[], 4).is_empty());
        let row = ds.row(0);
        let out = forest.predict_proba_batch(&[row], 4);
        assert_eq!(out, vec![forest.predict_proba(row)]);
    }

    #[test]
    fn no_bootstrap_trains_on_full_data() {
        let ds = blobs(4, 25);
        let config = ForestConfig {
            bootstrap: false,
            ..ForestConfig::fast(3, 0)
        };
        let forest = RandomForest::fit(&ds, &config);
        assert!(forest.accuracy(&ds) > 0.99);
    }

    #[test]
    fn n_trees_reported() {
        let ds = blobs(5, 10);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(7, 0));
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn oob_accuracy_tracks_generalisation() {
        let train = blobs(7, 60);
        let test = blobs(8, 60);
        let fit = RandomForest::fit_with_oob(&train, &ForestConfig::fast(30, 2));
        let test_acc = fit.forest.accuracy(&test);
        // OOB is an estimate of held-out accuracy: within a few points.
        assert!(
            (fit.oob_accuracy - test_acc).abs() < 0.08,
            "oob {} vs test {}",
            fit.oob_accuracy,
            test_acc
        );
        assert!(fit.never_oob < train.n_samples() / 10);
    }

    #[test]
    fn oob_forest_matches_plain_fit() {
        let ds = blobs(9, 30);
        let config = ForestConfig::fast(6, 4);
        let plain = RandomForest::fit(&ds, &config);
        let oob = RandomForest::fit_with_oob(&ds, &config);
        for i in 0..ds.n_samples() {
            assert_eq!(
                plain.predict_proba(ds.row(i)),
                oob.forest.predict_proba(ds.row(i))
            );
        }
    }

    #[test]
    #[should_panic(expected = "OOB scoring requires bootstrap")]
    fn oob_without_bootstrap_panics() {
        let ds = blobs(10, 10);
        let config = ForestConfig {
            bootstrap: false,
            ..ForestConfig::fast(3, 0)
        };
        let _ = RandomForest::fit_with_oob(&ds, &config);
    }

    #[test]
    fn columnar_fit_matches_reference_splitter() {
        let ds = blobs(13, 40);
        for bootstrap in [true, false] {
            let config = ForestConfig {
                bootstrap,
                ..ForestConfig::fast(8, 21)
            };
            let fast = RandomForest::fit(&ds, &config);
            let slow = RandomForest::fit_reference(&ds, &config);
            for (a, b) in fast.trees_raw().iter().zip(slow.trees_raw()) {
                assert_eq!(a.raw_parts().0, b.raw_parts().0);
            }
        }
    }

    #[test]
    fn predict_proba_into_matches_allocating_path() {
        let ds = blobs(14, 30);
        let forest = RandomForest::fit(&ds, &ForestConfig::fast(9, 5));
        let mut buf = vec![9.0; 2];
        for i in 0..ds.n_samples() {
            forest.predict_proba_into(ds.row(i), &mut buf);
            assert_eq!(buf, forest.predict_proba(ds.row(i)));
        }
    }

    #[test]
    #[should_panic(expected = "n_trees must be positive")]
    fn zero_trees_panics() {
        let ds = blobs(6, 5);
        let config = ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        };
        let _ = RandomForest::fit(&ds, &config);
    }
}
