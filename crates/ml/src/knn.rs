//! k-nearest-neighbour classification.
//!
//! Another candidate backbone from the paper's classifier comparison
//! (Section 6.1.2). Brute-force Euclidean search with a bounded
//! max-heap; adequate for the corpus scales of the experiments.

use crate::dataset::Dataset;
use crate::traits::Classifier;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A fitted (memorised) k-NN model.
pub struct Knn {
    data: Dataset,
    k: usize,
}

/// Heap entry ordered by distance (max-heap keeps the k closest).
struct HeapItem {
    dist: f64,
    target: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist)
    }
}

impl Knn {
    /// Memorise the training data. `k` is clamped to the sample count.
    ///
    /// # Panics
    /// Panics when `data` is empty or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Knn {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(k > 0, "k must be positive");
        Knn {
            k: k.min(data.n_samples()),
            data: data.clone(),
        }
    }
}

impl Classifier for Knn {
    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(self.k + 1);
        for i in 0..self.data.n_samples() {
            let row = self.data.row(i);
            let mut dist = 0.0;
            for (a, b) in row.iter().zip(features) {
                let d = a - b;
                dist += d * d;
            }
            if heap.len() < self.k {
                heap.push(HeapItem {
                    dist,
                    target: self.data.target(i),
                });
            } else if dist < heap.peek().expect("heap non-empty").dist {
                heap.pop();
                heap.push(HeapItem {
                    dist,
                    target: self.data.target(i),
                });
            }
        }
        let mut votes = vec![0.0; self.data.n_classes()];
        let n = heap.len() as f64;
        for item in heap {
            votes[item.target] += 1.0 / n;
        }
        votes
    }

    fn n_classes(&self) -> usize {
        self.data.n_classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        Dataset::from_rows(
            &[
                vec![0.0, 0.0],
                vec![0.1, 0.1],
                vec![0.2, 0.0],
                vec![5.0, 5.0],
                vec![5.1, 5.1],
                vec![5.2, 5.0],
            ],
            &[0, 0, 0, 1, 1, 1],
            2,
        )
    }

    #[test]
    fn nearest_cluster_wins() {
        let knn = Knn::fit(&grid(), 3);
        assert_eq!(knn.predict(&[0.05, 0.05]), 0);
        assert_eq!(knn.predict(&[5.05, 5.05]), 1);
    }

    #[test]
    fn votes_are_normalised() {
        let knn = Knn::fit(&grid(), 3);
        let p = knn.predict_proba(&[2.5, 2.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let ds = grid();
        let knn = Knn::fit(&ds, 1);
        assert!((knn.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_to_sample_count() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0, 1], 2);
        let knn = Knn::fit(&ds, 50);
        let p = knn.predict_proba(&[0.5]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mixed_neighbourhood_gives_fractional_votes() {
        let knn = Knn::fit(&grid(), 6);
        let p = knn.predict_proba(&[0.0, 0.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }
}
