//! # strudel-ml
//!
//! The machine-learning substrate of the Strudel reproduction. Everything
//! is implemented from scratch on `std` + `rand`:
//!
//! - [`RandomForest`] — the backbone of `Strudel^L`/`Strudel^C`
//!   (bootstrap-aggregated CART trees, scikit-learn-like defaults);
//! - [`DecisionTree`] — single CART tree with Gini impurity;
//! - [`GaussianNb`], [`Knn`], [`LogisticRegression`] — the candidate
//!   backbones of the paper's classifier comparison (Section 6.1.2);
//! - [`LinearChainCrf`] — sequence labeller behind the CRF^L baseline;
//! - [`Mlp`] — neural classifier behind the RNN^C baseline stand-in.
//!
//! All learners expose the [`Classifier`] trait (probability prediction +
//! argmax classification) so the evaluation harness treats them uniformly.
//!
//! ```
//! use strudel_ml::{Classifier, Dataset, ForestConfig, RandomForest};
//!
//! let data = Dataset::from_rows(
//!     &[vec![0.0], vec![0.2], vec![5.0], vec![5.3]],
//!     &[0, 0, 1, 1],
//!     2,
//! );
//! let forest = RandomForest::fit(&data, &ForestConfig::fast(10, 42));
//! assert_eq!(forest.predict(&[0.1]), 0);
//! assert_eq!(forest.predict(&[5.1]), 1);
//! ```

#![warn(missing_docs)]

mod crf;
mod dataset;
mod forest;
mod knn;
mod logistic;
mod mlp;
mod naive_bayes;
mod serialize;
mod traits;
mod tree;

pub use crf::{CrfConfig, LinearChainCrf, SequenceSample};
pub use dataset::Dataset;
pub use forest::{ForestConfig, OobFit, RandomForest, PARALLEL_PREDICT_THRESHOLD};
pub use knn::Knn;
pub use logistic::{LogisticConfig, LogisticRegression};
pub use mlp::{Mlp, MlpConfig};
pub use naive_bayes::GaussianNb;
pub use serialize::{ModelReader, ModelWriter, MAGIC, VERSION};
pub use traits::{argmax, Classifier};
pub use tree::{DecisionTree, MaxFeatures, RawNode, TreeConfig};
