//! Multinomial logistic regression trained by mini-batch SGD.
//!
//! Stands in for the linear-kernel SVM of the paper's backbone comparison
//! (see DESIGN.md, substitution 1): a linear decision boundary trained on
//! the same features, completing the Naive Bayes / kNN / linear /
//! random-forest ablation of Section 6.1.2.

use crate::dataset::Dataset;
use crate::naive_bayes::softmax_from_log;
use crate::traits::Classifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate (decayed as `lr / (1 + epoch)`).
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 50,
            learning_rate: 0.5,
            l2: 1e-4,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// A fitted multinomial logistic regression model.
pub struct LogisticRegression {
    /// `n_classes × n_features` weight matrix, row-major.
    weights: Vec<f64>,
    bias: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl LogisticRegression {
    /// Fit with mini-batch SGD on the softmax cross-entropy loss.
    pub fn fit(data: &Dataset, config: &LogisticConfig) -> LogisticRegression {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (c, d, n) = (data.n_classes(), data.n_features(), data.n_samples());
        let mut model = LogisticRegression {
            weights: vec![0.0; c * d],
            bias: vec![0.0; c],
            n_features: d,
            n_classes: c,
        };
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let batch = config.batch_size.max(1);

        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + epoch as f64 * 0.1);
            for chunk in order.chunks(batch) {
                let mut grad_w = vec![0.0; c * d];
                let mut grad_b = vec![0.0; c];
                for &i in chunk {
                    let row = data.row(i);
                    let p = model.scores(row);
                    let p = softmax_from_log(&p);
                    for class in 0..c {
                        let err = p[class] - f64::from(data.target(i) == class);
                        grad_b[class] += err;
                        let base = class * d;
                        for (j, &x) in row.iter().enumerate() {
                            grad_w[base + j] += err * x;
                        }
                    }
                }
                let scale = lr / chunk.len() as f64;
                for (w, g) in model.weights.iter_mut().zip(&grad_w) {
                    *w -= scale * (g + config.l2 * *w);
                }
                for (b, g) in model.bias.iter_mut().zip(&grad_b) {
                    *b -= scale * g;
                }
            }
        }
        model
    }

    fn scores(&self, features: &[f64]) -> Vec<f64> {
        (0..self.n_classes)
            .map(|class| {
                let base = class * self.n_features;
                self.bias[class]
                    + features
                        .iter()
                        .enumerate()
                        .map(|(j, &x)| self.weights[base + j] * x)
                        .sum::<f64>()
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        softmax_from_log(&self.scores(features))
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let off = (i % 10) as f64 * 0.05;
            rows.push(vec![-1.0 - off, 0.3 + off]);
            y.push(0);
            rows.push(vec![1.0 + off, -0.3 - off]);
            y.push(1);
        }
        Dataset::from_rows(&rows, &y, 2)
    }

    #[test]
    fn learns_linear_boundary() {
        let ds = linearly_separable();
        let lr = LogisticRegression::fit(&ds, &LogisticConfig::default());
        assert!(lr.accuracy(&ds) > 0.97);
    }

    #[test]
    fn proba_normalised() {
        let lr = LogisticRegression::fit(&linearly_separable(), &LogisticConfig::default());
        let p = lr.predict_proba(&[0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_class_one_hot() {
        let ds = Dataset::from_rows(
            &[
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            &[0, 1, 2, 0, 1, 2],
            3,
        );
        let lr = LogisticRegression::fit(
            &ds,
            &LogisticConfig {
                epochs: 200,
                ..LogisticConfig::default()
            },
        );
        assert!((lr.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = linearly_separable();
        let a = LogisticRegression::fit(&ds, &LogisticConfig::default());
        let b = LogisticRegression::fit(&ds, &LogisticConfig::default());
        assert_eq!(a.predict_proba(ds.row(0)), b.predict_proba(ds.row(0)));
    }
}
