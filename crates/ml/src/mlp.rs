//! A single-hidden-layer feed-forward network (MLP).
//!
//! Substrate of the RNN^C baseline stand-in (see DESIGN.md, substitution
//! 2): the original RNN^C of Ghasemi-Gol et al. (ICDM 2019) classifies a
//! cell from a pre-trained embedding plus its neighbourhood context; we
//! reproduce that decision function with a hand-built embedding fed into
//! this network. ReLU hidden layer, softmax output, mini-batch SGD with
//! momentum, seeded He initialisation.

use crate::dataset::Dataset;
use crate::naive_bayes::softmax_from_log;
use crate::traits::Classifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`Mlp::fit`].
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 32,
            epochs: 60,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// A fitted MLP.
pub struct Mlp {
    w1: Vec<f64>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<f64>, // classes × hidden
    b2: Vec<f64>,
    n_input: usize,
    n_hidden: usize,
    n_classes: usize,
}

impl Mlp {
    /// Train the network with mini-batch SGD on softmax cross-entropy.
    pub fn fit(data: &Dataset, config: &MlpConfig) -> Mlp {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (d, h, c) = (data.n_features(), config.hidden.max(1), data.n_classes());
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let he1 = (2.0 / d.max(1) as f64).sqrt();
        let he2 = (2.0 / h as f64).sqrt();
        let mut net = Mlp {
            w1: (0..h * d).map(|_| rng.gen_range(-he1..he1)).collect(),
            b1: vec![0.0; h],
            w2: (0..c * h).map(|_| rng.gen_range(-he2..he2)).collect(),
            b2: vec![0.0; c],
            n_input: d,
            n_hidden: h,
            n_classes: c,
        };

        let mut vel_w1 = vec![0.0; h * d];
        let mut vel_b1 = vec![0.0; h];
        let mut vel_w2 = vec![0.0; c * h];
        let mut vel_b2 = vec![0.0; c];

        let mut order: Vec<usize> = (0..data.n_samples()).collect();
        let batch = config.batch_size.max(1);

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(batch) {
                let mut g_w1 = vec![0.0; h * d];
                let mut g_b1 = vec![0.0; h];
                let mut g_w2 = vec![0.0; c * h];
                let mut g_b2 = vec![0.0; c];

                for &i in chunk {
                    let x = data.row(i);
                    let (hidden, probs) = net.forward(x);
                    // Output layer gradient: p − one_hot(target).
                    let mut delta_out = probs;
                    delta_out[data.target(i)] -= 1.0;
                    for class in 0..c {
                        g_b2[class] += delta_out[class];
                        let base = class * h;
                        for (j, &hv) in hidden.iter().enumerate() {
                            g_w2[base + j] += delta_out[class] * hv;
                        }
                    }
                    // Hidden layer gradient through ReLU.
                    for j in 0..h {
                        if hidden[j] <= 0.0 {
                            continue;
                        }
                        let mut delta_h = 0.0;
                        for (class, &d_out) in delta_out.iter().enumerate() {
                            delta_h += d_out * net.w2[class * h + j];
                        }
                        g_b1[j] += delta_h;
                        let base = j * d;
                        for (k, &xv) in x.iter().enumerate() {
                            g_w1[base + k] += delta_h * xv;
                        }
                    }
                }

                let scale = config.learning_rate / chunk.len() as f64;
                update(&mut net.w1, &mut vel_w1, &g_w1, scale, config.momentum);
                update(&mut net.b1, &mut vel_b1, &g_b1, scale, config.momentum);
                update(&mut net.w2, &mut vel_w2, &g_w2, scale, config.momentum);
                update(&mut net.b2, &mut vel_b2, &g_b2, scale, config.momentum);
            }
        }
        net
    }

    /// Forward pass returning (hidden activations, output probabilities).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let (d, h, c) = (self.n_input, self.n_hidden, self.n_classes);
        let mut hidden = vec![0.0; h];
        for (j, hv) in hidden.iter_mut().enumerate() {
            let base = j * d;
            let mut s = self.b1[j];
            for (k, &xv) in x.iter().enumerate() {
                s += self.w1[base + k] * xv;
            }
            *hv = s.max(0.0);
        }
        let mut out = vec![0.0; c];
        for (class, o) in out.iter_mut().enumerate() {
            let base = class * h;
            let mut s = self.b2[class];
            for (j, &hv) in hidden.iter().enumerate() {
                s += self.w2[base + j] * hv;
            }
            *o = s;
        }
        let probs = softmax_from_log(&out);
        (hidden, probs)
    }
}

fn update(weights: &mut [f64], velocity: &mut [f64], grad: &[f64], scale: f64, momentum: f64) {
    for ((w, v), g) in weights.iter_mut().zip(velocity.iter_mut()).zip(grad) {
        *v = momentum * *v - scale * g;
        *w += *v;
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        self.forward(features).1
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for j in 0..8 {
                let eps = j as f64 * 0.01;
                rows.push(vec![a + eps, b - eps]);
                y.push(((a as i32) ^ (b as i32)) as usize);
            }
        }
        Dataset::from_rows(&rows, &y, 2)
    }

    #[test]
    fn learns_xor() {
        let ds = xor();
        let config = MlpConfig {
            epochs: 400,
            hidden: 16,
            ..MlpConfig::default()
        };
        let net = Mlp::fit(&ds, &config);
        assert!(net.accuracy(&ds) > 0.95, "accuracy {}", net.accuracy(&ds));
    }

    #[test]
    fn proba_normalised() {
        let net = Mlp::fit(&xor(), &MlpConfig::default());
        let p = net.predict_proba(&[0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = xor();
        let a = Mlp::fit(&ds, &MlpConfig::default());
        let b = Mlp::fit(&ds, &MlpConfig::default());
        assert_eq!(a.predict_proba(ds.row(0)), b.predict_proba(ds.row(0)));
    }

    #[test]
    fn three_class_problem() {
        let ds = Dataset::from_rows(
            &(0..30)
                .map(|i| vec![(i / 10) as f64 * 3.0 + (i % 10) as f64 * 0.05])
                .collect::<Vec<_>>(),
            &(0..30).map(|i| i / 10).collect::<Vec<_>>(),
            3,
        );
        let net = Mlp::fit(
            &ds,
            &MlpConfig {
                epochs: 300,
                ..MlpConfig::default()
            },
        );
        assert!(net.accuracy(&ds) > 0.9);
    }
}
