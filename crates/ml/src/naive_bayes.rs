//! Gaussian Naive Bayes.
//!
//! One of the candidate backbone classifiers the paper evaluated before
//! settling on random forests (Section 6.1.2). Per class and feature, the
//! model fits a univariate Gaussian; prediction multiplies per-feature
//! likelihoods with the class prior (in log space).

use crate::dataset::Dataset;
use crate::traits::Classifier;

/// A fitted Gaussian Naive Bayes model.
pub struct GaussianNb {
    /// `log P(class)`.
    log_priors: Vec<f64>,
    /// Per class, per feature mean.
    means: Vec<Vec<f64>>,
    /// Per class, per feature variance (smoothed).
    variances: Vec<Vec<f64>>,
    n_classes: usize,
}

/// Variance smoothing: scikit-learn adds `1e-9 × max feature variance`;
/// we use a fixed epsilon on normalised features, which behaves the same.
const VAR_SMOOTHING: f64 = 1e-9;

impl GaussianNb {
    /// Fit the model. Classes absent from the training data keep a
    /// `-inf` log-prior and never win prediction.
    pub fn fit(data: &Dataset) -> GaussianNb {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let (c, d, n) = (data.n_classes(), data.n_features(), data.n_samples());
        let counts = data.class_counts();

        let mut means = vec![vec![0.0; d]; c];
        let mut variances = vec![vec![0.0; d]; c];
        for i in 0..n {
            let t = data.target(i);
            for (j, m) in means[t].iter_mut().enumerate() {
                *m += data.x(i, j);
            }
        }
        for (class, count) in counts.iter().enumerate() {
            if *count > 0 {
                for m in &mut means[class] {
                    *m /= *count as f64;
                }
            }
        }
        for i in 0..n {
            let t = data.target(i);
            for j in 0..d {
                let delta = data.x(i, j) - means[t][j];
                variances[t][j] += delta * delta;
            }
        }
        // Global variance floor keeps degenerate (constant) features from
        // producing infinite densities.
        let mut max_var: f64 = 0.0;
        for (class, count) in counts.iter().enumerate() {
            if *count > 0 {
                for v in &mut variances[class] {
                    *v /= *count as f64;
                    max_var = max_var.max(*v);
                }
            }
        }
        let floor = VAR_SMOOTHING * max_var.max(1.0);
        for class_vars in &mut variances {
            for v in class_vars {
                *v += floor;
            }
        }

        let log_priors = counts
            .iter()
            .map(|&cnt| {
                if cnt == 0 {
                    f64::NEG_INFINITY
                } else {
                    (cnt as f64 / n as f64).ln()
                }
            })
            .collect();

        GaussianNb {
            log_priors,
            means,
            variances,
            n_classes: c,
        }
    }
}

impl Classifier for GaussianNb {
    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut log_post = vec![0.0; self.n_classes];
        for (class, slot) in log_post.iter_mut().enumerate() {
            let mut lp = self.log_priors[class];
            if lp.is_finite() {
                for (j, &x) in features.iter().enumerate() {
                    let var = self.variances[class][j];
                    let delta = x - self.means[class][j];
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + delta * delta / var);
                }
            }
            *slot = lp;
        }
        softmax_from_log(&log_post)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Normalise log-scores into probabilities with the log-sum-exp trick.
pub(crate) fn softmax_from_log(log_scores: &[f64]) -> Vec<f64> {
    let max = log_scores
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        // No class scored: uniform.
        return vec![1.0 / log_scores.len() as f64; log_scores.len()];
    }
    let exps: Vec<f64> = log_scores.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let eps = (i % 5) as f64 * 0.1;
            rows.push(vec![0.0 + eps, 0.0 - eps]);
            y.push(0);
            rows.push(vec![5.0 + eps, 5.0 - eps]);
            y.push(1);
        }
        Dataset::from_rows(&rows, &y, 2)
    }

    #[test]
    fn learns_separated_blobs() {
        let ds = blobs();
        let nb = GaussianNb::fit(&ds);
        assert!((nb.accuracy(&ds) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proba_is_normalised() {
        let nb = GaussianNb::fit(&blobs());
        let p = nb.predict_proba(&[2.5, 2.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_class_never_wins() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0, 0], 3);
        let nb = GaussianNb::fit(&ds);
        assert_eq!(nb.predict(&[0.5]), 0);
        let p = nb.predict_proba(&[0.5]);
        assert_eq!(p[1], 0.0);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let ds = Dataset::from_rows(
            &[
                vec![1.0, 0.0],
                vec![1.0, 1.0],
                vec![1.0, 10.0],
                vec![1.0, 11.0],
            ],
            &[0, 0, 1, 1],
            2,
        );
        let nb = GaussianNb::fit(&ds);
        let p = nb.predict_proba(&[1.0, 10.5]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&[1.0, 10.5]), 1);
    }

    #[test]
    fn softmax_handles_all_neg_infinity() {
        let p = softmax_from_log(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
