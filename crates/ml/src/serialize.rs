//! Compact binary serialization for fitted models.
//!
//! Training a Strudel model over a large corpus takes seconds to
//! minutes; classifying a file takes milliseconds. Persistence lets a
//! model be trained once and shipped, which the CLI relies on. The
//! format is a small hand-rolled little-endian binary encoding — no
//! external serialization dependency — with a magic header and version
//! byte for forward compatibility.

use crate::forest::RandomForest;
use crate::tree::DecisionTree;
use std::io::{self, Read, Write};

/// Magic bytes opening every serialized model.
pub const MAGIC: &[u8; 8] = b"STRUDELM";
/// Current format version.
pub const VERSION: u8 = 1;

/// Binary writer with little-endian primitives.
pub struct ModelWriter<W: Write> {
    inner: W,
}

impl<W: Write> ModelWriter<W> {
    /// Wrap a writer and emit the format header.
    pub fn new(mut inner: W) -> io::Result<ModelWriter<W>> {
        inner.write_all(MAGIC)?;
        inner.write_all(&[VERSION])?;
        Ok(ModelWriter { inner })
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) -> io::Result<()> {
        self.u64(v as u64)
    }

    /// Write an `f64`.
    pub fn f64(&mut self, v: f64) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> io::Result<()> {
        self.inner.write_all(&[u8::from(v)])
    }

    /// Write a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, vs: &[f64]) -> io::Result<()> {
        self.usize(vs.len())?;
        for &v in vs {
            self.f64(v)?;
        }
        Ok(())
    }

    /// Finish writing, returning the underlying writer.
    pub fn finish(self) -> W {
        self.inner
    }
}

/// Binary reader mirroring [`ModelWriter`].
pub struct ModelReader<R: Read> {
    inner: R,
}

/// Error helper: corrupt/unsupported input.
fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl<R: Read> ModelReader<R> {
    /// Wrap a reader and validate the format header.
    pub fn new(mut inner: R) -> io::Result<ModelReader<R>> {
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a Strudel model file"));
        }
        let mut version = [0u8; 1];
        inner.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(bad("unsupported model format version"));
        }
        Ok(ModelReader { inner })
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Read a `usize`, rejecting values that overflow the platform.
    pub fn usize(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("length overflows usize"))
    }

    /// Read a bounded `usize` (defence against corrupt huge lengths).
    pub fn usize_bounded(&mut self, max: usize) -> io::Result<usize> {
        let v = self.usize()?;
        if v > max {
            return Err(bad("length exceeds sanity bound"));
        }
        Ok(v)
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> io::Result<f64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }

    /// Read a `bool`.
    pub fn bool(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 1];
        self.inner.read_exact(&mut buf)?;
        match buf[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad("invalid boolean")),
        }
    }

    /// Read a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> io::Result<Vec<f64>> {
        let n = self.usize_bounded(1 << 28)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

impl DecisionTree {
    /// Serialize the tree body (no header).
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        let (nodes, n_classes) = self.raw_parts();
        w.usize(n_classes)?;
        w.usize(nodes.len())?;
        for node in nodes {
            match node {
                crate::tree::RawNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.bool(false)?;
                    w.usize(*feature)?;
                    w.f64(*threshold)?;
                    w.usize(*left)?;
                    w.usize(*right)?;
                }
                crate::tree::RawNode::Leaf { proba } => {
                    w.bool(true)?;
                    w.f64_slice(proba)?;
                }
            }
        }
        Ok(())
    }

    /// Deserialize a tree body written by [`DecisionTree::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> io::Result<DecisionTree> {
        let n_classes = r.usize_bounded(1 << 16)?;
        let n_nodes = r.usize_bounded(1 << 28)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let is_leaf = r.bool()?;
            if is_leaf {
                let proba = r.f64_vec()?;
                if proba.len() != n_classes {
                    return Err(bad("leaf probability arity mismatch"));
                }
                nodes.push(crate::tree::RawNode::Leaf { proba });
            } else {
                let feature = r.usize()?;
                let threshold = r.f64()?;
                let left = r.usize_bounded(n_nodes)?;
                let right = r.usize_bounded(n_nodes)?;
                nodes.push(crate::tree::RawNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                });
            }
        }
        DecisionTree::from_raw_parts(nodes, n_classes).map_err(bad)
    }
}

impl RandomForest {
    /// Serialize the forest body (no header).
    pub fn write_to<W: Write>(&self, w: &mut ModelWriter<W>) -> io::Result<()> {
        w.usize(self.n_classes_raw())?;
        w.usize(self.trees_raw().len())?;
        for tree in self.trees_raw() {
            tree.write_to(w)?;
        }
        Ok(())
    }

    /// Deserialize a forest body written by [`RandomForest::write_to`].
    pub fn read_from<R: Read>(r: &mut ModelReader<R>) -> io::Result<RandomForest> {
        let n_classes = r.usize_bounded(1 << 16)?;
        let n_trees = r.usize_bounded(1 << 20)?;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            trees.push(DecisionTree::read_from(r)?);
        }
        RandomForest::from_raw_parts(trees, n_classes).map_err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestConfig;
    use crate::traits::Classifier;

    fn sample_forest() -> (RandomForest, Dataset) {
        let data = Dataset::from_rows(
            &[
                vec![0.0, 1.0],
                vec![0.2, 0.8],
                vec![5.0, -1.0],
                vec![5.5, -0.5],
                vec![10.0, 3.0],
                vec![10.5, 3.5],
            ],
            &[0, 0, 1, 1, 2, 2],
            3,
        );
        let forest = RandomForest::fit(&data, &ForestConfig::fast(7, 3));
        (forest, data)
    }

    #[test]
    fn forest_roundtrip_preserves_predictions() {
        let (forest, data) = sample_forest();
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        forest.write_to(&mut w).unwrap();
        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        let loaded = RandomForest::read_from(&mut r).unwrap();
        assert_eq!(loaded.n_trees(), forest.n_trees());
        for i in 0..data.n_samples() {
            assert_eq!(
                loaded.predict_proba(data.row(i)),
                forest.predict_proba(data.row(i))
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = match ModelReader::new(&b"NOTMAGIC\x01rest"[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = MAGIC.to_vec();
        buf.push(99);
        let err = match ModelReader::new(buf.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("bad version accepted"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_rejected() {
        let (forest, _) = sample_forest();
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        forest.write_to(&mut w).unwrap();
        buf.truncate(buf.len() / 2);
        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        assert!(RandomForest::read_from(&mut r).is_err());
    }

    #[test]
    fn primitive_roundtrip() {
        let mut buf = Vec::new();
        let mut w = ModelWriter::new(&mut buf).unwrap();
        w.u64(42).unwrap();
        w.f64(-1.5).unwrap();
        w.bool(true).unwrap();
        w.f64_slice(&[1.0, 2.0]).unwrap();
        let mut r = ModelReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -1.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64_vec().unwrap(), vec![1.0, 2.0]);
    }
}
