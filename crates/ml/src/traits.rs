//! The classifier abstraction shared by every learner in this crate.

use crate::dataset::Dataset;

/// A trained multi-class probabilistic classifier.
///
/// Implementations are *fitted* models: construction happens through each
/// learner's `fit` associated function, after which the model is immutable
/// and cheap to share across threads.
pub trait Classifier: Send + Sync {
    /// Class probability vector for one feature row. The returned vector
    /// has `n_classes` entries summing to 1 (up to rounding).
    fn predict_proba(&self, features: &[f64]) -> Vec<f64>;

    /// Number of classes the model predicts over.
    fn n_classes(&self) -> usize;

    /// Most probable class for one feature row. Ties break toward the
    /// lower class index, matching `argmax` conventions elsewhere.
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.predict_proba(features))
    }

    /// Predict classes for every sample of a dataset.
    fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        (0..data.n_samples())
            .map(|i| self.predict(data.row(i)))
            .collect()
    }

    /// Accuracy over a labeled dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.n_samples())
            .filter(|&i| self.predict(data.row(i)) == data.target(i))
            .count();
        correct as f64 / data.n_samples() as f64
    }
}

/// Index of the largest value; ties break toward the lower index.
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl Classifier for Fixed {
        fn predict_proba(&self, _features: &[f64]) -> Vec<f64> {
            self.0.clone()
        }
        fn n_classes(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn default_predict_uses_argmax() {
        let c = Fixed(vec![0.2, 0.5, 0.3]);
        assert_eq!(c.predict(&[]), 1);
    }

    #[test]
    fn accuracy_over_dataset() {
        let c = Fixed(vec![0.9, 0.1]);
        let ds = Dataset::from_rows(&[vec![0.0], vec![0.0]], &[0, 1], 2);
        assert!((c.accuracy(&ds) - 0.5).abs() < 1e-12);
    }
}
